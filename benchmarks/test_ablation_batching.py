"""Ablation — signature batching (§VI-A).

The paper: "we use one signature per batch of 256 payments.  With this
batch size, Astro II's performance is only limited by available
bandwidth."  The ablation sweeps the batch size and asserts that
amortizing signatures is what keeps crypto off the critical path.
"""

from repro.bench.ablations import run_batching_ablation


def test_ablation_batching(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_batching_ablation(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.table())

    peaks = dict(zip(result.batch_sizes, result.peaks))
    # Throughput grows monotonically-ish with batch size; the paper's 256
    # configuration beats unbatched by a wide margin.
    assert peaks[256] > 4.0 * peaks[1], (
        f"batching should dominate unbatched broadcast: {peaks}"
    )
    assert peaks[256] >= peaks[16]
