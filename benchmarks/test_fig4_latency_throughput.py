"""Fig. 4 — latency vs throughput at the largest size (§VI-C1).

Asserts the paper's qualitative claims: Astro II exhibits the lowest
latency at comparable load, and every system's latency grows toward its
saturation point.
"""


from repro.bench.fig4 import run_fig4


def test_fig4_latency_throughput(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig4(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.table())

    for name, curve in result.curves.items():
        assert curve, f"no latency points measured for {name}"
        for throughput, mean, p95 in curve:
            assert throughput > 0
            assert 0 < mean <= p95 < 60.0

    # Latency rises toward saturation: the last point of each curve is
    # slower than the first (curves are sampled from low to peak load).
    for name, curve in result.curves.items():
        if len(curve) >= 2:
            assert curve[-1][2] >= curve[0][2] * 0.8, (
                f"{name}: tail latency should not improve at saturation"
            )

    # Astro II beats Astro I at comparable (low) load.
    first_p95 = {name: curve[0][2] for name, curve in result.curves.items()}
    assert first_p95["astro2"] <= first_p95["astro1"]

    # The headline Fig. 4 claim: Astro II's curve extends to far higher
    # throughput than the baseline's while staying inside the latency
    # envelope (the paper's curves end at ~5K vs ~334 pps).
    max_throughput = {
        name: max(point[0] for point in curve)
        for name, curve in result.curves.items()
    }
    assert max_throughput["astro2"] > 2.0 * max_throughput["bft"]
    assert max_throughput["astro1"] > max_throughput["bft"]
