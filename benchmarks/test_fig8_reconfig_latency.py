"""Fig. 8 — reconfiguration (join) latency vs system size (Appendix A-B).

Sequential joins grow a quiescent system; asserts the paper's claims:
Astro II joins complete in fractions of a second, stay roughly flat with
system size, and beat the consensus-ordered reconfiguration of the
baseline by an order of magnitude.
"""

from repro.bench.fig8 import run_fig8


def test_fig8_reconfig_latency(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig8(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.table())

    astro = result.astro_latencies
    bft = result.bft_latencies

    # Astro II joins are sub-second at every size.
    assert all(latency < 1.0 for latency in astro), astro

    # BFT-SMaRt-style reconfiguration is an order of magnitude slower.
    for size, astro_latency, bft_latency in zip(result.sizes, astro, bft):
        assert bft_latency > 5.0 * astro_latency, (
            f"expected order-of-magnitude gap at N={size}: "
            f"astro={astro_latency:.3f}s bft={bft_latency:.3f}s"
        )

    # First join pays connection establishment (elevated first point).
    if len(astro) >= 2:
        assert astro[0] > astro[1]
