"""Fig. 5 — throughput robustness under crash-stop failures (§VI-D).

Regenerates the three timelines and asserts the paper's claims:

* crashing the consensus **leader** zeroes throughput until the view
  change completes, after which it recovers;
* crashing a **random** consensus replica leaves throughput essentially
  intact;
* crashing a random Astro replica costs only the share of clients it
  represented (~1 of 10 closed-loop clients).
"""

def test_fig5_crash_robustness(scale, robustness_suite):
    # Measured via the pooled Figs. 5-7 scheduler (see conftest);
    # identical to run_crash_robustness(scale=scale) cell for cell.
    result, _fig6, _fig7 = robustness_suite
    print()
    print(result.table())
    print(result.series_dump())

    leader = result.timelines["Consensus-Leader"]
    random_bft = result.timelines["Consensus-Random"]
    broadcast = result.timelines["Broadcast-Random"]

    # Leader crash: throughput hits zero during the view change...
    assert leader.min_after_fault() == 0.0
    # ...then recovers to a meaningful share of the pre-fault level.
    recovery = leader.series[-3:]
    assert max(recovery) > 0.3 * leader.before_fault(), (
        f"no recovery after view change: {leader.series}"
    )

    # Random-replica crash: consensus keeps the quorum, no outage.
    assert random_bft.after_fault() > 0.6 * random_bft.before_fault()

    # Astro: loses about one client in ten; never stalls.
    assert broadcast.min_after_fault() > 0.0
    assert broadcast.after_fault() > 0.7 * broadcast.before_fault()
    assert broadcast.after_fault() < 1.05 * broadcast.before_fault()
