"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (DESIGN.md §3
maps experiment ids to modules).  ``REPRO_BENCH_SCALE`` ∈ {smoke, quick,
full} controls problem sizes; the default (quick) finishes on a laptop.

Benchmarks print the reproduced rows/series to stdout — run with ``-s``
(or read the captured output) to see the paper-style tables.
"""

import pytest

from repro.bench.scale import current_scale


@pytest.fixture(scope="session")
def scale():
    active = current_scale()
    print(f"\n[repro] benchmark scale: {active.name}")
    return active
