"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper (DESIGN.md §3
maps experiment ids to modules).  ``REPRO_BENCH_SCALE`` ∈ {smoke, quick,
full} controls problem sizes; the default (quick) finishes on a laptop.
``REPRO_BENCH_JOBS`` selects the sweep execution backend (serial by
default; an integer > 1 fans independent scenario jobs across a process
pool with byte-identical results).

Benchmarks print the reproduced rows/series to stdout — run with ``-s``
(or read the captured output) to see the paper-style tables.

At session end the per-sweep wall-clock log collected by
``repro.bench.parallel`` is written to ``BENCH_sweeps.json`` (override
with ``REPRO_SWEEPS_JSON``) and, when ``BENCH_perf.json`` exists, merged
into it under ``"sweeps"`` — the harness's own speed is part of the
tracked perf trajectory.
"""

import json
import os
import time

import pytest

from repro.bench.parallel import resolve_jobs, sweep_report
from repro.bench.scale import current_scale

_session_started_at = 0.0


@pytest.fixture(scope="session")
def scale():
    active = current_scale()
    print(f"\n[repro] benchmark scale: {active.name}, "
          f"jobs: {resolve_jobs()}")
    return active


@pytest.fixture(scope="session")
def robustness_suite(scale):
    """Figs. 5–7 measured through the pooled suite scheduler.

    One ``run_robustness_suite`` call serves all three figure tests: the
    11 fault timelines run as a single job pool (the dominant large-N
    cells overlap the cheap ones instead of each figure waiting on its
    slowest member), and the per-figure results are byte-identical to
    the individual entry points — same descriptors, same per-cell seeds.
    """
    from repro.bench.robustness import run_robustness_suite

    return run_robustness_suite(scale=scale)


def pytest_sessionstart(session):
    global _session_started_at
    _session_started_at = time.time()


def pytest_sessionfinish(session, exitstatus):
    sweeps = sweep_report()
    if not sweeps:
        return
    report = {
        "bench_scale": current_scale().name,
        "jobs": resolve_jobs(),
        "total_sweep_seconds": round(sum(s["seconds"] for s in sweeps), 3),
        "sweeps": sweeps,
    }
    path = os.environ.get("REPRO_SWEEPS_JSON", "BENCH_sweeps.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    perf_path = os.environ.get("REPRO_PERF_JSON", "BENCH_perf.json")
    try:
        # Merge only into a perf report written by *this* session: a stale
        # BENCH_perf.json from an earlier run (the perf test may have been
        # deselected) must not be paired with today's sweep timings.
        if os.path.getmtime(perf_path) < _session_started_at:
            return
        with open(perf_path) as fh:
            perf = json.load(fh)
    except (OSError, ValueError):
        return
    perf["sweeps"] = report
    with open(perf_path, "w") as fh:
        json.dump(perf, fh, indent=2)
        fh.write("\n")
