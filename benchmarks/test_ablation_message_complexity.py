"""Ablation — BRB message complexity (§IV-A).

Astro I's Bracha broadcast is O(N²) messages; Astro II's signed broadcast
is O(N).  Counts actual wire messages per settled payment and asserts the
asymptotic gap widens with the system size.
"""

from repro.bench.ablations import run_message_complexity_ablation


def test_ablation_message_complexity(benchmark, scale):
    sizes = (4, 10, 22) if scale.name == "smoke" else (4, 10, 22, 46)
    result = benchmark.pedantic(
        lambda: run_message_complexity_ablation(sizes=sizes),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())

    astro1 = result.messages_per_payment["astro1"]
    astro2 = result.messages_per_payment["astro2"]

    # Astro I sends strictly more messages per payment at every size.
    for index, size in enumerate(result.sizes):
        assert astro1[index] > astro2[index], (
            f"O(N^2) vs O(N) violated at N={size}"
        )

    # The ratio grows with N (quadratic vs linear).
    ratios = [a1 / a2 for a1, a2 in zip(astro1, astro2)]
    assert ratios[-1] > ratios[0], f"complexity gap should widen: {ratios}"
