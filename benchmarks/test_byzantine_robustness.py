"""Byzantine robustness — throughput under attack with live monitoring.

Runs one §VI-D-shaped timeline per (system × attack) cell at the paper's
f = ⌊(N−1)/3⌋ adversary bound: f Byzantine replicas arm a quarter into
the observation window while an invariant monitor samples the correct
replicas throughout.  Asserts the safety claim — every monitor verdict
clean — plus coarse liveness (settlement never stops), and writes the
full per-second curves and verdicts to ``BENCH_byzantine.json``
(override the path with ``REPRO_BYZANTINE_JSON``).
"""

import json
import os

from repro.bench.adversary import applicable_attacks, run_byzantine_robustness


def test_byzantine_robustness(scale):
    suite = run_byzantine_robustness(scale=scale)
    print()
    print(suite.table())

    expected = {
        (system, attack)
        for system in ("astro1", "astro2")
        for attack in applicable_attacks(
            system,
            os.environ.get("REPRO_ADVERSARY_ATTACKS", "").split(",")
            if os.environ.get("REPRO_ADVERSARY_ATTACKS") else None,
        )
    }
    assert set(suite.cells) == expected

    for (system, attack), cell in sorted(suite.cells.items()):
        verdict = cell["verdict"]
        # Safety: all five invariants held at every correct replica, at
        # every sample, under every attack.
        assert verdict["ok"], (
            f"{system}/{attack} violated safety: {verdict['violations']}"
        )
        assert verdict["samples"] >= suite.window  # ~1 Hz cadence
        # The attack actually ran and the run actually settled payments.
        assert cell["tampered"] > 0, f"{system}/{attack} never fired"
        assert cell["completed"] > 0
        # Liveness under f Byzantine replicas: settlement continues after
        # the attack arms (Astro's f < N/3 bound).
        assert cell["after_pps"] > 0, (
            f"{system}/{attack} halted settlement: {cell['series']}"
        )

    path = os.environ.get("REPRO_BYZANTINE_JSON", "BENCH_byzantine.json")
    with open(path, "w") as fh:
        json.dump(suite.report(), fh, indent=2)
        fh.write("\n")
    print(f"[repro] wrote {path} ({len(suite.cells)} cells)")
