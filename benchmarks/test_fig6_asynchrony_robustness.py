"""Fig. 6 — throughput robustness under asynchrony (§VI-D).

A 100 ms egress delay hits one replica mid-run.  Asserts the paper's
claims: a slowed consensus leader degrades the whole system (timeline A)
unless an aggressive timeout deposes it (timeline B, which recovers); a
slowed random replica barely matters; a slowed Astro replica affects only
its own clients.
"""

def test_fig6_asynchrony_robustness(scale, robustness_suite):
    # Measured via the pooled Figs. 5-7 scheduler (see conftest);
    # identical to run_asynchrony_robustness(scale=scale) cell for cell.
    _fig5, result, _fig7 = robustness_suite
    print()
    print(result.table())
    print(result.series_dump())

    patient = result.timelines["Consensus-Leader-A"]
    aggressive = result.timelines["Consensus-Leader-B"]
    random_bft = result.timelines["Consensus-Random"]
    broadcast = result.timelines["Broadcast-Random"]

    # Timeline A: the slowed leader stays; steady-state degradation.
    assert patient.after_fault() < 0.7 * patient.before_fault(), (
        f"slowed leader should degrade throughput: {patient.series}"
    )
    assert patient.after_fault() > 0.0  # degraded, not dead

    # Timeline B: view change deposes the slow leader; throughput
    # recovers above timeline A's degraded steady state.
    tail_b = sum(aggressive.series[-4:]) / 4
    tail_a = sum(patient.series[-4:]) / 4
    assert tail_b > tail_a, (
        f"view change should beat limping leader: B={aggressive.series} "
        f"A={patient.series}"
    )

    # A slowed random replica does not materially affect consensus.
    assert random_bft.after_fault() > 0.6 * random_bft.before_fault()

    # Astro under asynchrony behaves like Astro under crash: only the
    # affected replica's clients slow down.
    assert broadcast.after_fault() > 0.7 * broadcast.before_fault()
