"""Fig. 7 — robustness at large scale (§VI-D, paper N=100).

Both fault kinds hit the consensus leader / a random Astro replica.
Asserts the paper's claims: the leader crash stalls consensus through a
long view change; leader asynchrony causes persistent degradation; Astro
merely sheds the affected replica's clients in both cases.
"""

def test_fig7_robustness_large(scale, robustness_suite):
    # Measured via the pooled Figs. 5-7 scheduler (see conftest);
    # identical to run_large_scale_robustness(scale=scale) cell for cell.
    _fig5, _fig6, result = robustness_suite
    print()
    print(result.table())
    print(result.series_dump())

    cons_fail = result.timelines["Consensus-Fail"]
    cons_async = result.timelines["Consensus-Async"]
    bcast_fail = result.timelines["Broadcast-Fail"]
    bcast_async = result.timelines["Broadcast-Async"]

    # Leader crash: a real outage window (zero throughput).
    assert cons_fail.min_after_fault() == 0.0

    # Leader asynchrony: degraded but nonzero.
    assert cons_async.after_fault() < 0.7 * cons_async.before_fault()

    # Astro sheds at most the failed replica's clients under both faults.
    for timeline in (bcast_fail, bcast_async):
        assert timeline.after_fault() > 0.7 * timeline.before_fault()
        assert timeline.min_after_fault() > 0.0
