"""Workload sweep: throughput + certificate traffic per demand shape.

Runs the standard Astro II cell under each registered workload
(``uniform`` / ``zipf`` / ``merchant``) via the same ``REPRO_WORKLOAD``
resolution path production runs use — genesis regime and demand
distribution switch together — and records per-workload achieved pps,
settled counts, and Astro II certificate traffic into
``BENCH_perf.json`` under ``"workloads"``.

The merchant cell doubles as the end-to-end credit-funding check: tight
merchant genesis forces payouts to wait for settled purchase income, so
the run must mint dependency certificates (f+1 CREDITs, Listing 7) and
settle payments carrying non-empty ``deps``.
"""

from __future__ import annotations

from repro.bench.report import merge_perf_report, print_table
from repro.bench.runner import run_open_loop
from repro.bench.systems import build_astro2
from repro.workloads import WORKLOAD_NAMES

NUM_REPLICAS = 4
RATE = 400.0
DURATION = 2.0
WARMUP = 0.5
SEED = 0


def _deps_settled(system) -> int:
    """Settled payments carrying dependency certificates (replica 0)."""
    replica = system.replicas[0]
    return sum(
        1
        for xlog in replica.state.xlogs.values()
        for payment in xlog
        if payment.deps
    )


def test_workload_sweep(scale, monkeypatch):
    report = {}
    for name in WORKLOAD_NAMES:
        monkeypatch.setenv("REPRO_WORKLOAD", name)
        system = build_astro2(NUM_REPLICAS, seed=SEED)
        result = run_open_loop(
            system, rate=RATE, duration=DURATION, warmup=WARMUP, seed=SEED
        )
        system.settle_all()
        report[name] = {
            "achieved_pps": round(result.achieved, 1),
            "injected": result.injected,
            "confirmed": result.confirmed,
            "settled_at_replica0": system.replicas[0].settled_count,
            "minted_subbatches": sum(
                r._collector.minted_subbatches for r in system.replicas
            ),
            "deps_settled": _deps_settled(system),
            "rejected": sum(len(r.rejected) for r in system.replicas),
        }

    path = merge_perf_report({
        "workloads": {
            "scenario": {
                "system": "astro2",
                "num_replicas": NUM_REPLICAS,
                "rate": RATE,
                "duration": DURATION,
                "warmup": WARMUP,
                "seed": SEED,
            },
            "results": report,
        }
    })
    print_table(
        ["workload", "pps", "confirmed", "subbatch certs", "deps settled"],
        [
            [
                name,
                cell["achieved_pps"],
                cell["confirmed"],
                cell["minted_subbatches"],
                cell["deps_settled"],
            ]
            for name, cell in report.items()
        ],
        title=f"Workload sweep (astro2 N={NUM_REPLICAS}; report: {path})",
    )

    # Every workload must actually move payments.
    for name, cell in report.items():
        assert cell["confirmed"] > 0, f"workload {name!r} confirmed nothing"
    # The tight-balance merchant regime must exercise the credit path
    # end to end: dependency certificates minted AND settled spends
    # carrying them.
    assert report["merchant"]["minted_subbatches"] > 0
    assert report["merchant"]["deps_settled"] > 0
