"""Size-major vs warm-start pipeline A/B — the estimator accuracy guard.

The size-major strategy replaces Fig. 3's warm-start carry with
analytically estimated, anchor-calibrated search brackets.  This test is
the accuracy contract behind that swap: at quick scale, every (system,
size) cell's cold-start peak must agree with the legacy warm-start
pipeline within the peak search's own granularity, and the estimator
must not pay for independence with a fatter probe bill.

Peak-search granularity sets the tolerance floor: both strategies stop
refining after two bisections, so each reports a rate within ~15–20% of
the true saturation boundary, and short probe windows add batch-wave
quantization noise on top.  Agreement within 35% per cell is therefore
"the same answer" at this scale; the qualitative claims the figure
exists for (order-of-magnitude separations between systems) sit far
outside it.

Runs at quick scale regardless of ``REPRO_BENCH_SCALE`` so the contract
is stable across CI tiers.
"""

from repro.bench.fig3 import run_fig3
from repro.bench.scale import _SCALES

#: Per-cell relative disagreement allowed between the two strategies.
TOLERANCE = 0.35

#: The size-major run (anchor probes included) may spend at most this
#: multiple of the pipeline's total probes.
PROBE_BUDGET_RATIO = 1.2


def test_size_major_matches_pipeline_within_tolerance(benchmark, scale):
    quick = _SCALES["quick"]
    pipeline = benchmark.pedantic(
        lambda: run_fig3(scale=quick, seed=0, strategy="pipeline"),
        rounds=1, iterations=1,
    )
    size_major = run_fig3(scale=quick, seed=0, strategy="size-major")

    assert size_major.sizes == pipeline.sizes
    assert list(size_major.peaks) == list(pipeline.peaks)
    print()
    print(pipeline.table())
    print(size_major.table())
    for name in pipeline.peaks:
        for index, size in enumerate(pipeline.sizes):
            warm = pipeline.peaks[name][index]
            cold = size_major.peaks[name][index]
            disagreement = abs(cold - warm) / warm
            assert disagreement <= TOLERANCE, (
                f"{name} N={size}: size-major {cold:.0f} vs "
                f"pipeline {warm:.0f} pps ({disagreement:.0%} apart)"
            )

    # Probe-budget regression guard: estimated brackets must keep the
    # cold-start searches competitive with warm starts.
    assert size_major.anchor_probes > 0
    assert size_major.total_probes <= PROBE_BUDGET_RATIO * pipeline.total_probes, (
        f"size-major spent {size_major.total_probes} probes "
        f"(incl. {size_major.anchor_probes} anchors) vs pipeline "
        f"{pipeline.total_probes}"
    )
