"""Fig. 3 — peak throughput vs system size (§VI-C1).

Regenerates the paper's log-scale throughput curves for the three
systems and asserts the qualitative claims:

* both Astro variants beat the consensus baseline at every size;
* Astro II beats Astro I at every size;
* throughput decays as the system grows (quorum systems).
"""

from repro.bench.fig3 import run_fig3


def test_fig3_throughput_vs_size(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig3(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.table())

    bft = result.peaks["bft"]
    astro1 = result.peaks["astro1"]
    astro2 = result.peaks["astro2"]
    for index, size in enumerate(result.sizes):
        assert astro1[index] > bft[index], (
            f"Astro I must outperform consensus at N={size}: "
            f"{astro1[index]:.0f} vs {bft[index]:.0f}"
        )
        assert astro2[index] > bft[index], (
            f"Astro II must outperform consensus at N={size}: "
            f"{astro2[index]:.0f} vs {bft[index]:.0f}"
        )
        assert astro2[index] > astro1[index], (
            f"Astro II must outperform Astro I at N={size}: "
            f"{astro2[index]:.0f} vs {astro1[index]:.0f}"
        )
    # Decay with system size: smallest size beats largest for each system.
    for name, series in result.peaks.items():
        assert series[0] > series[-1], (
            f"{name} throughput should decay with system size: {series}"
        )
    # Order-of-magnitude check at the largest size: the paper reports a
    # >=6x Astro I and >=16x Astro II advantage at N=100; require >=3x.
    assert astro2[-1] / bft[-1] >= 3.0
