"""Fig. 3 — peak throughput vs system size (§VI-C1).

Regenerates the paper's log-scale throughput curves for the three
systems and asserts the qualitative claims:

* both Astro variants beat the consensus baseline at every size;
* Astro II beats Astro I at every size;
* throughput decays as the system grows (quorum systems).

With cross-delivery CREDIT coalescing on (``REPRO_CREDIT_COALESCE``,
CI's coalesce matrix cell), Astro II's decay assertion is skipped at
benchmark sizes: the per-delivery CREDIT fan-out is exactly the term
whose growth drove the decay between the smoke sizes (N=4 vs 22), so the
coalesced curve stays flat there and only decays at larger N where the
COMMIT-certificate quorum verification takes over.  The paper's decay
claim is about the uncoalesced protocol; the ordering claims (and the
other systems' decay) must hold either way.
"""

from repro.bench.fig3 import run_fig3
from repro.bench.systems import resolve_credit_coalesce


def test_fig3_throughput_vs_size(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_fig3(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.table())

    bft = result.peaks["bft"]
    astro1 = result.peaks["astro1"]
    astro2 = result.peaks["astro2"]
    for index, size in enumerate(result.sizes):
        assert astro1[index] > bft[index], (
            f"Astro I must outperform consensus at N={size}: "
            f"{astro1[index]:.0f} vs {bft[index]:.0f}"
        )
        assert astro2[index] > bft[index], (
            f"Astro II must outperform consensus at N={size}: "
            f"{astro2[index]:.0f} vs {bft[index]:.0f}"
        )
        assert astro2[index] > astro1[index], (
            f"Astro II must outperform Astro I at N={size}: "
            f"{astro2[index]:.0f} vs {astro1[index]:.0f}"
        )
    # Decay with system size: smallest size beats largest for each system.
    coalesced = resolve_credit_coalesce(max(result.sizes)) > 0
    for name, series in result.peaks.items():
        if name == "astro2" and coalesced:
            continue  # see module docstring: coalescing defers the decay
        assert series[0] > series[-1], (
            f"{name} throughput should decay with system size: {series}"
        )
    # Order-of-magnitude check at the largest size: the paper reports a
    # >=6x Astro I and >=16x Astro II advantage at N=100; require >=3x.
    assert astro2[-1] / bft[-1] >= 3.0
