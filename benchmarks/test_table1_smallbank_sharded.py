"""Table I — Smallbank sharded benchmark (§VI-C2).

Regenerates the paper's table: per-shard and total throughput plus
average/p95 latency for 2/3/4 shards, with and without the extra 20 ms
inter-replica delay; the BFT-SMaRt column is the same optimistic
single-shard upper bound the paper uses.
"""

from repro.bench.table1 import run_table1


def test_table1_smallbank_sharded(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_table1(scale=scale), rounds=1, iterations=1
    )
    print()
    print(result.table())

    rows = result.rows
    by_key = {(row.shards, row.tc_delay_ms): row for row in rows}
    shard_counts = sorted({row.shards for row in rows})

    # Total throughput scales with the number of shards (near-linear).
    for delay in (0.0, 20.0):
        totals = [by_key[(s, delay)].total_kpps for s in shard_counts
                  if (s, delay) in by_key]
        for earlier, later in zip(totals, totals[1:]):
            assert later > earlier, (
                f"total throughput must grow with shards (tc={delay}): {totals}"
            )

    # The 20 ms delay hurts latency at every shard count.
    for shards in shard_counts:
        if (shards, 0.0) in by_key and (shards, 20.0) in by_key:
            assert (
                by_key[(shards, 20.0)].latency_avg_ms
                > by_key[(shards, 0.0)].latency_avg_ms
            )

    # Astro II's totals dominate the consensus upper bound (paper: ~5x).
    for row in rows:
        assert row.total_kpps > row.bft_total_kpps, (
            f"Astro II should beat the BFT upper bound: {row}"
        )
