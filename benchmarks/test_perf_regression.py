"""Perf regression guard: simulated payments per wall-clock second.

Runs the standard Astro II measurement scenario (see
``repro.bench.profile``) and compares the achieved
simulated-payments-per-wall-clock-second against the recorded **seed
baseline** — the unoptimized engine this repository started from.

Cross-machine comparability: the seed baseline was measured on one
machine, CI runs on another, so the baseline is rescaled by a small
pure-Python calibration kernel (interpreter-bound, like the simulator
itself) timed on both machines.  The asserted floor is deliberately set
below the locally measured speedup to absorb CI timer noise; the exact
multiple achieved is printed and written to ``BENCH_perf.json``.

``test_parallel_sweep_speedup`` guards the other axis of harness speed:
scenario-level parallelism (``repro.bench.parallel``).  It runs the same
independent peak-search jobs on the serial backend and on a two-worker
process pool, asserts byte-identical results, and asserts the pool is
measurably faster wall-clock (skipped on single-core machines, where a
process pool cannot beat serial execution).

Override knobs (environment):

* ``REPRO_PERF_MIN_SPEEDUP`` — assertion floor (default 1.6).
* ``REPRO_PERF_JSON`` — output path (default ``BENCH_perf.json``).
* ``REPRO_PAR_MIN_SPEEDUP`` — parallel-sweep floor (default 1.25).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench.parallel import ScenarioJob, derive_seed, execute, usable_cpus
from repro.bench.profile import (
    DEFAULT_DURATION,
    DEFAULT_NUM_REPLICAS,
    DEFAULT_RATE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
    standard_run,
)

# ---------------------------------------------------------------------------
# Recorded on the seed machine (same host that measured SEED_BASELINE_PPS).
# ---------------------------------------------------------------------------

#: Best-of-3 simulated-payments/wall-clock-second of the *seed* engine on
#: the standard scenario (astro2, N=4, 16k pay/s offered, 2.0s window).
SEED_BASELINE_PPS = 37_066.0

#: Seconds the calibration kernel took on the machine that measured the
#: seed baseline (best of 5).
SEED_CALIBRATION_SECONDS = 0.0589

TRIALS = 3


def _calibration_seconds() -> float:
    """Time a deterministic interpreter-bound kernel (best of 5).

    Dict stores, tuple hashing, and branchy integer arithmetic — the same
    operation mix that dominates the simulator — so the ratio against
    :data:`SEED_CALIBRATION_SECONDS` tracks how fast *this* machine runs
    the engine, largely independent of absolute CPU speed.
    """
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        acc = 0
        d = {}
        for i in range(200_000):
            d[i & 1023] = i
            acc += hash((i, "cal"))
            if acc & 7:
                acc ^= d[i & 1023]
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_regression(scale):
    calibration = _calibration_seconds()
    machine_factor = SEED_CALIBRATION_SECONDS / calibration
    expected_seed_pps = SEED_BASELINE_PPS * machine_factor

    best_pps = 0.0
    best_result = None
    for _ in range(TRIALS):
        result, wall = standard_run()
        pps = result.confirmed / wall
        if best_result is None or pps > best_pps:
            best_pps, best_result = pps, result
    speedup = best_pps / expected_seed_pps

    report = {
        "scenario": {
            "system": "astro2",
            "num_replicas": DEFAULT_NUM_REPLICAS,
            "rate": DEFAULT_RATE,
            "duration": DEFAULT_DURATION,
            "warmup": DEFAULT_WARMUP,
            "seed": DEFAULT_SEED,
            "trials": TRIALS,
        },
        "payments_per_wall_second": round(best_pps),
        "confirmed_per_trial": best_result.confirmed,
        "seed_baseline_pps": SEED_BASELINE_PPS,
        "calibration_seconds": calibration,
        "seed_calibration_seconds": SEED_CALIBRATION_SECONDS,
        "machine_factor": machine_factor,
        "speedup_vs_seed": round(speedup, 3),
        "bench_scale": scale.name,
    }
    path = os.environ.get("REPRO_PERF_JSON", "BENCH_perf.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print()
    print(
        f"[perf] {best_pps:,.0f} simulated payments / wall-clock second "
        f"({speedup:.2f}x the seed engine, machine-calibrated; "
        f"report: {path})"
    )

    min_speedup = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "1.6"))
    assert speedup >= min_speedup, (
        f"simulator perf regressed: {best_pps:,.0f} pay/wall-sec is only "
        f"{speedup:.2f}x the calibrated seed baseline "
        f"({expected_seed_pps:,.0f}); floor is {min_speedup}x"
    )
    # The engine must also beat the seed on this machine in absolute terms.
    assert best_pps > expected_seed_pps


def test_parallel_sweep_speedup(scale):
    """The process-pool backend must beat serial on >= 2 cores — with
    byte-identical results (the determinism guarantee of the job model)."""
    cores = usable_cpus()
    if cores < 2:
        pytest.skip(f"needs >= 2 cores for a parallel speedup (have {cores})")

    # Four independent peak searches — the shape of one Fig. 3 sweep
    # column — with per-job seeds spawned from the jobs' identity keys.
    units = [
        ScenarioJob(
            kind="find_peak",
            params=dict(
                system="astro2", size=4, start_rate=4000.0,
                duration=0.5, warmup=0.3, refine_steps=1,
                payment_budget=8000, max_probes=4, reuse_state=True,
            ),
            seed=derive_seed(DEFAULT_SEED, "parallel-speedup", index),
            tag=index,
        )
        for index in range(4)
    ]

    start = time.perf_counter()
    serial = execute(units, jobs=1, label="speedup-check-serial")
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = execute(units, jobs=2, label="speedup-check-parallel")
    parallel_seconds = time.perf_counter() - start

    # Determinism first: worker count must not change a single bit.
    assert [r.peak_pps for r in serial] == [r.peak_pps for r in parallel]
    assert [repr(p) for r in serial for p in r.probes] == [
        repr(p) for r in parallel for p in r.probes
    ]

    speedup = serial_seconds / parallel_seconds
    print(
        f"\n[perf] parallel sweep: serial {serial_seconds:.2f}s vs "
        f"2-worker pool {parallel_seconds:.2f}s = {speedup:.2f}x "
        f"({cores} cores)"
    )
    # Calibrated floor: 2 workers on >= 2 cores should approach 2x; the
    # default floor absorbs pool startup and CI scheduling noise.
    min_speedup = float(os.environ.get("REPRO_PAR_MIN_SPEEDUP", "1.25"))
    assert speedup >= min_speedup, (
        f"parallel sweep not faster: serial {serial_seconds:.2f}s, "
        f"parallel {parallel_seconds:.2f}s ({speedup:.2f}x < {min_speedup}x)"
    )
