"""Perf regression guard: simulated payments per wall-clock second.

Runs the standard Astro II measurement scenario (see
``repro.bench.profile``) and compares the achieved
simulated-payments-per-wall-clock-second against the recorded **seed
baseline** — the unoptimized engine this repository started from.

Cross-machine comparability: the seed baseline was measured on one
machine, CI runs on another, so the baseline is rescaled by a small
pure-Python calibration kernel (interpreter-bound, like the simulator
itself) timed on both machines.  The asserted floor is deliberately set
below the locally measured speedup to absorb CI timer noise; the exact
multiple achieved is printed and written to ``BENCH_perf.json``.

``test_parallel_sweep_speedup`` guards the other axis of harness speed:
scenario-level parallelism (``repro.bench.parallel``).  It runs the same
independent peak-search jobs on the serial backend and on a two-worker
process pool, asserts byte-identical results, and asserts the pool is
measurably faster wall-clock (skipped on single-core machines, where a
process pool cannot beat serial execution).

Three further scenarios track the *large-N* engine speed (PR 4):

* ``test_large_cell_perf`` — one giant single cell (astro2, N=32,
  saturating open-loop rate): the wall-clock shape of a full-scale
  Fig. 3 probe, compared against the recorded pre-PR4 engine baseline
  with the same machine calibration (floor: a no-regression guard set
  below 1.0 to absorb run-to-run noise; the exact multiple is tracked);
* ``test_arrival_train_speedup`` — direct A/B of the arrival-train
  broadcast path against the per-copy path on the all-to-all system
  (astro1, N=32), asserting byte-identical histories and a measurable
  single-core win;
* ``test_sharded_cell_speedup`` — the intra-simulation sharded engine
  (``repro.sim.shard``) against the serial engine on the large cell,
  asserting byte-identical results and ≥ 1.4x wall-clock on ≥ 2 cores
  (skipped on single-core machines).

``test_credit_coalescing_speedup`` (PR 5) A/Bs the cross-delivery CREDIT
coalescer (``AstroConfig.credit_coalesce_delay``) against the default
per-delivery flush on the same large cell.  The off arm *is* the
pre-coalescer engine (the knob's default path is pinned byte-identical
by the golden-history tests), so the comparison needs no recorded
baseline or machine calibration.  It asserts the CREDIT message count
drops ≥ 5x (a deterministic count, asserted on any machine) and that
simulated-pps improves ≥ 1.15x (wall-clock, asserted on ≥ 2 cores only —
1-vCPU shared runners stall unpredictably mid-measurement).

Override knobs (environment):

* ``REPRO_PERF_MIN_SPEEDUP`` — assertion floor (default 1.6).
* ``REPRO_PERF_JSON`` — output path (default ``BENCH_perf.json``).
* ``REPRO_PAR_MIN_SPEEDUP`` — parallel-sweep floor (default 1.25).
* ``REPRO_PERF_LARGE_MIN_SPEEDUP`` — large-cell floor (default 0.85).
* ``REPRO_TRAIN_MIN_SPEEDUP`` — arrival-train floor (default 1.02).
* ``REPRO_SHARD_MIN_SPEEDUP`` — sharded-engine floor (default 1.4).
* ``REPRO_SHARD_SCALING_MIN`` — 8-vs-4-shard scaling floor (default 1.25).
* ``REPRO_COALESCE_MIN_SPEEDUP`` — coalescing pps floor (default 1.15).
* ``REPRO_COALESCE_MIN_CREDIT_DROP`` — CREDIT count floor (default 5.0).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.parallel import ScenarioJob, derive_seed, execute, usable_cpus
from repro.bench.profile import (
    DEFAULT_DURATION,
    DEFAULT_NUM_REPLICAS,
    DEFAULT_RATE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
    standard_run,
)
from repro.bench.runner import run_open_loop
from repro.bench.systems import SYSTEM_BUILDERS, build_astro2, scaled_batch_delay
from repro.sim.network import Network
from repro.sim.shard import ShardedOpenLoop, state_fingerprints

# ---------------------------------------------------------------------------
# Recorded on the seed machine (same host that measured SEED_BASELINE_PPS).
# ---------------------------------------------------------------------------

#: Best-of-3 simulated-payments/wall-clock-second of the *seed* engine on
#: the standard scenario (astro2, N=4, 16k pay/s offered, 2.0s window).
SEED_BASELINE_PPS = 37_066.0

#: Seconds the calibration kernel took on the machine that measured the
#: seed baseline (best of 5).
SEED_CALIBRATION_SECONDS = 0.0589

TRIALS = 3

# ---------------------------------------------------------------------------
# Large-cell scenario (PR 4): astro2, N=32, saturating open-loop probe —
# the wall-clock shape of one full-scale Fig. 3 cell.  Baseline recorded
# against the pre-PR4 engine (commit 1c3e755) on the machine whose
# calibration kernel took LARGE_CALIBRATION_SECONDS.
# ---------------------------------------------------------------------------

LARGE_SYSTEM = "astro2"
LARGE_N = 32
LARGE_RATE = 8_000.0
LARGE_DURATION = 2.0
LARGE_WARMUP = 0.5
LARGE_SEED = 2
LARGE_TRIALS = 2

#: Best-of-5 pps of the pre-PR4 engine on the large-cell scenario
#: (interleaved A/B against the PR4 engine on the same host; this cell
#: is CREDIT-unicast-bound, so the arrival train leaves it neutral —
#: the train's win is asserted by test_arrival_train_speedup on the
#: all-to-all system, and the sharded engine by test_sharded_cell_speedup).
LARGE_BASELINE_PPS = 2_332.7
LARGE_CALIBRATION_SECONDS = 0.0580


def _large_cell_run(system=LARGE_SYSTEM, n=LARGE_N, rate=LARGE_RATE,
                    duration=LARGE_DURATION, warmup=LARGE_WARMUP,
                    seed=LARGE_SEED):
    built = SYSTEM_BUILDERS[system](n, seed=seed)
    start = time.perf_counter()
    result = run_open_loop(
        built, rate=rate, duration=duration, warmup=warmup, seed=seed
    )
    return built, result, time.perf_counter() - start


def _merge_perf_report(updates):
    """Merge keys into BENCH_perf.json (create if absent).

    Every scenario in this file writes through
    :func:`repro.bench.report.merge_perf_report`, so tests never
    truncate each other's sections regardless of execution order.
    """
    from repro.bench.report import merge_perf_report

    return merge_perf_report(updates)


def _update_perf_report(key, payload):
    """Merge one scenario section into BENCH_perf.json."""
    return _merge_perf_report({key: payload})


def _result_fingerprint(result):
    return (
        result.offered,
        result.achieved,
        result.injected,
        result.confirmed,
        result.latency.count,
        result.latency.mean.hex() if result.latency.count else None,
        result.latency.p95.hex() if result.latency.count else None,
    )


def _calibration_seconds() -> float:
    """Time a deterministic interpreter-bound kernel (best of 5).

    Dict stores, tuple hashing, and branchy integer arithmetic — the same
    operation mix that dominates the simulator — so the ratio against
    :data:`SEED_CALIBRATION_SECONDS` tracks how fast *this* machine runs
    the engine, largely independent of absolute CPU speed.
    """
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        acc = 0
        d = {}
        for i in range(200_000):
            d[i & 1023] = i
            acc += hash((i, "cal"))
            if acc & 7:
                acc ^= d[i & 1023]
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_regression(scale):
    calibration = _calibration_seconds()
    machine_factor = SEED_CALIBRATION_SECONDS / calibration
    expected_seed_pps = SEED_BASELINE_PPS * machine_factor

    best_pps = 0.0
    best_result = None
    for _ in range(TRIALS):
        result, wall, _system = standard_run()
        pps = result.confirmed / wall
        if best_result is None or pps > best_pps:
            best_pps, best_result = pps, result
    speedup = best_pps / expected_seed_pps

    report = {
        "scenario": {
            "system": "astro2",
            "num_replicas": DEFAULT_NUM_REPLICAS,
            "rate": DEFAULT_RATE,
            "duration": DEFAULT_DURATION,
            "warmup": DEFAULT_WARMUP,
            "seed": DEFAULT_SEED,
            "trials": TRIALS,
        },
        "payments_per_wall_second": round(best_pps),
        "confirmed_per_trial": best_result.confirmed,
        "seed_baseline_pps": SEED_BASELINE_PPS,
        "calibration_seconds": calibration,
        "seed_calibration_seconds": SEED_CALIBRATION_SECONDS,
        "machine_factor": machine_factor,
        "speedup_vs_seed": round(speedup, 3),
        "bench_scale": scale.name,
    }
    path = _merge_perf_report(report)

    print()
    print(
        f"[perf] {best_pps:,.0f} simulated payments / wall-clock second "
        f"({speedup:.2f}x the seed engine, machine-calibrated; "
        f"report: {path})"
    )

    min_speedup = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "1.6"))
    assert speedup >= min_speedup, (
        f"simulator perf regressed: {best_pps:,.0f} pay/wall-sec is only "
        f"{speedup:.2f}x the calibrated seed baseline "
        f"({expected_seed_pps:,.0f}); floor is {min_speedup}x"
    )
    # The engine must also beat the seed on this machine in absolute terms.
    assert best_pps > expected_seed_pps


def test_parallel_sweep_speedup(scale):
    """The process-pool backend must beat serial on >= 2 cores — with
    byte-identical results (the determinism guarantee of the job model)."""
    cores = usable_cpus()
    if cores < 2:
        pytest.skip(f"needs >= 2 cores for a parallel speedup (have {cores})")

    # Four independent peak searches — the shape of one Fig. 3 sweep
    # column — with per-job seeds spawned from the jobs' identity keys.
    units = [
        ScenarioJob(
            kind="find_peak",
            params=dict(
                system="astro2", size=4, start_rate=4000.0,
                duration=0.5, warmup=0.3, refine_steps=1,
                payment_budget=8000, max_probes=4, reuse_state=True,
                # Pin the serial engine: this test times pool-vs-serial,
                # and a REPRO_SIM_SHARDS env (the CI shard-matrix job)
                # must not switch the serial arm onto the sharded engine
                # while the daemonic pool arm silently cannot follow.
                sim_shards=1,
            ),
            seed=derive_seed(DEFAULT_SEED, "parallel-speedup", index),
            tag=index,
        )
        for index in range(4)
    ]

    start = time.perf_counter()
    serial = execute(units, jobs=1, label="speedup-check-serial")
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = execute(units, jobs=2, label="speedup-check-parallel")
    parallel_seconds = time.perf_counter() - start

    # Determinism first: worker count must not change a single bit.
    assert [r.peak_pps for r in serial] == [r.peak_pps for r in parallel]
    assert [repr(p) for r in serial for p in r.probes] == [
        repr(p) for r in parallel for p in r.probes
    ]

    speedup = serial_seconds / parallel_seconds
    print(
        f"\n[perf] parallel sweep: serial {serial_seconds:.2f}s vs "
        f"2-worker pool {parallel_seconds:.2f}s = {speedup:.2f}x "
        f"({cores} cores)"
    )
    # Calibrated floor: 2 workers on >= 2 cores should approach 2x; the
    # default floor absorbs pool startup and CI scheduling noise.
    min_speedup = float(os.environ.get("REPRO_PAR_MIN_SPEEDUP", "1.25"))
    assert speedup >= min_speedup, (
        f"parallel sweep not faster: serial {serial_seconds:.2f}s, "
        f"parallel {parallel_seconds:.2f}s ({speedup:.2f}x < {min_speedup}x)"
    )


def test_large_cell_perf(scale):
    """One giant single cell must not regress vs the pre-PR4 engine."""
    calibration = _calibration_seconds()
    machine_factor = LARGE_CALIBRATION_SECONDS / calibration
    expected_baseline_pps = LARGE_BASELINE_PPS * machine_factor

    best_pps = 0.0
    best = None
    for _ in range(LARGE_TRIALS):
        _built, result, wall = _large_cell_run()
        pps = result.confirmed / wall
        if best is None or pps > best_pps:
            best_pps, best = pps, result
    speedup = best_pps / expected_baseline_pps

    path = _update_perf_report("large_cell", {
        "scenario": {
            "system": LARGE_SYSTEM, "num_replicas": LARGE_N,
            "rate": LARGE_RATE, "duration": LARGE_DURATION,
            "warmup": LARGE_WARMUP, "seed": LARGE_SEED,
            "trials": LARGE_TRIALS,
        },
        "payments_per_wall_second": round(best_pps, 1),
        "confirmed_per_trial": best.confirmed,
        "baseline_pps": LARGE_BASELINE_PPS,
        "machine_factor": machine_factor,
        "speedup_vs_pre_pr4": round(speedup, 3),
    })
    print(f"\n[perf] large cell ({LARGE_SYSTEM} N={LARGE_N}): "
          f"{best_pps:,.0f} pay/wall-sec = {speedup:.2f}x the pre-PR4 "
          f"engine (report: {path})")

    # A no-regression guard, set below 1.0 to absorb the ±10% run-to-run
    # noise this interpreter-bound scenario shows on shared vCPUs; the
    # exact multiple is what the report tracks.
    floor = float(os.environ.get("REPRO_PERF_LARGE_MIN_SPEEDUP", "0.85"))
    assert speedup >= floor, (
        f"large-cell perf regressed: {best_pps:,.0f} pay/wall-sec is "
        f"{speedup:.2f}x the calibrated pre-PR4 baseline "
        f"({expected_baseline_pps:,.0f}); floor is {floor}x"
    )


def test_arrival_train_speedup(scale):
    """The arrival-train broadcast must beat the per-copy path on the
    all-to-all system at large N — with a byte-identical history."""
    original = Network.TRAIN_MIN

    def run_once(train_min):
        Network.TRAIN_MIN = train_min
        try:
            built, result, wall = _large_cell_run(
                system="astro1", n=32, rate=3_000.0, duration=1.5, warmup=0.4
            )
        finally:
            Network.TRAIN_MIN = original
        return result, wall, state_fingerprints(built)

    train_result, train_wall, train_state = run_once(original)
    percopy_result, percopy_wall, percopy_state = run_once(10**9)
    # First the determinism claim: same history, bit for bit.
    assert _result_fingerprint(train_result) == _result_fingerprint(percopy_result)
    assert train_state == percopy_state
    # Best-of-2 walls to absorb timer noise.
    train_result2, train_wall2, _ = run_once(original)
    percopy_result2, percopy_wall2, _ = run_once(10**9)
    assert _result_fingerprint(train_result2) == _result_fingerprint(percopy_result2)
    speedup = min(percopy_wall, percopy_wall2) / min(train_wall, train_wall2)

    path = _update_perf_report("arrival_train", {
        "scenario": {"system": "astro1", "num_replicas": 32,
                     "rate": 3_000.0, "duration": 1.5, "warmup": 0.4,
                     "seed": LARGE_SEED},
        "train_wall_seconds": round(min(train_wall, train_wall2), 3),
        "per_copy_wall_seconds": round(min(percopy_wall, percopy_wall2), 3),
        "speedup": round(speedup, 3),
    })
    print(f"\n[perf] arrival train (astro1 N=32): {speedup:.3f}x vs "
          f"per-copy broadcast (report: {path})")

    floor = float(os.environ.get("REPRO_TRAIN_MIN_SPEEDUP", "1.02"))
    assert speedup >= floor, (
        f"arrival-train broadcast not faster: {speedup:.3f}x < {floor}x "
        f"(train {min(train_wall, train_wall2):.2f}s vs per-copy "
        f"{min(percopy_wall, percopy_wall2):.2f}s)"
    )


def test_credit_coalescing_speedup(scale):
    """Cross-delivery CREDIT coalescing on the large credit-bound cell:
    ≥ 5x fewer CREDIT transport messages, ≥ 1.15x simulated-pps — against
    the per-delivery flush, which is byte-identical to the pre-coalescer
    engine (so the off arm IS the pre-PR baseline, no calibration).

    Throughput equivalence alone cannot detect a coalescer that silently
    stops minting dependency certificates (uniform_genesis balances are
    large enough that the measured window never needs credits), so the
    certificate pipeline is asserted directly: the coalesced arm must
    mint the same sub-batches under the same pair-varying europe_wan
    latency the builders always use, and strand nothing."""
    cores = usable_cpus()
    window = scaled_batch_delay(LARGE_N)  # REPRO_CREDIT_COALESCE=auto

    def run_once(delay):
        built = build_astro2(
            LARGE_N, seed=LARGE_SEED, credit_coalesce_delay=delay,
            track_kinds=True,
        )
        start = time.perf_counter()
        result = run_open_loop(
            built, rate=LARGE_RATE, duration=LARGE_DURATION,
            warmup=LARGE_WARMUP, seed=LARGE_SEED,
        )
        wall = time.perf_counter() - start
        by_kind = built.network.stats.by_kind
        credits = by_kind.get("CreditMessage", 0) + by_kind.get("CreditBundle", 0)
        minted = sum(r._collector.minted_subbatches for r in built.replicas)
        pending = sum(r._collector.pending_subbatches for r in built.replicas)
        return result, wall, credits, minted, pending

    # Interleaved A/B, best-of-2 walls to absorb timer noise.
    off_result, off_wall, off_credits, off_minted, off_pending = run_once(0.0)
    on_result, on_wall, on_credits, on_minted, on_pending = run_once(window)
    _off2, off_wall2, _c, _m, _p = run_once(0.0)
    _on2, on_wall2, _c, _m, _p = run_once(window)
    off_pps = off_result.confirmed / min(off_wall, off_wall2)
    on_pps = on_result.confirmed / min(on_wall, on_wall2)

    assert on_credits > 0 and off_credits > 0
    credit_drop = off_credits / on_credits
    speedup = on_pps / off_pps
    path = _update_perf_report("credit_coalescing", {
        "scenario": {"system": LARGE_SYSTEM, "num_replicas": LARGE_N,
                     "rate": LARGE_RATE, "duration": LARGE_DURATION,
                     "warmup": LARGE_WARMUP, "seed": LARGE_SEED,
                     "coalesce_window": window},
        "credit_messages_off": off_credits,
        "credit_messages_on": on_credits,
        "credit_message_drop": round(credit_drop, 2),
        "minted_subbatches_off": off_minted,
        "minted_subbatches_on": on_minted,
        "pending_subbatches_off": off_pending,
        "pending_subbatches_on": on_pending,
        "pps_off": round(off_pps),
        "pps_on": round(on_pps),
        "speedup": round(speedup, 3),
        "achieved_off": off_result.achieved,
        "achieved_on": on_result.achieved,
        "cores": cores,
    })
    print(f"\n[perf] credit coalescing ({LARGE_SYSTEM} N={LARGE_N}, "
          f"window={window:.3f}s): CREDIT messages {off_credits} -> "
          f"{on_credits} ({credit_drop:.1f}x fewer), certificates "
          f"{off_minted} -> {on_minted}, stranded {off_pending} -> "
          f"{on_pending}, {off_pps:,.0f} -> {on_pps:,.0f} pay/wall-sec "
          f"({speedup:.2f}x; report: {path})")

    # The certificate pipeline must not degrade: sub-batches are cut per
    # delivery in both arms, so minted counts may differ only by windows
    # still in flight at the run's cutoff (regression guard for the
    # stranded-credit collapse, where this dropped ~35x).
    assert off_minted > 0
    assert on_minted >= 0.90 * off_minted, (
        f"coalescing degraded certificate minting: {off_minted} -> "
        f"{on_minted} sub-batches"
    )
    assert on_pending <= max(64, off_pending * 2 + LARGE_N), (
        f"coalescing strands sub-batches short of f+1 CREDITs: "
        f"{on_pending} pending (off arm: {off_pending})"
    )
    # The message-count drop is a deterministic count: assert everywhere.
    drop_floor = float(os.environ.get("REPRO_COALESCE_MIN_CREDIT_DROP", "5.0"))
    assert credit_drop >= drop_floor, (
        f"CREDIT coalescing ineffective: {off_credits} -> {on_credits} "
        f"messages is only {credit_drop:.2f}x (floor {drop_floor}x)"
    )
    # Coalescing must not cost simulated throughput in the measured window.
    assert on_result.achieved >= off_result.achieved * 0.95
    # Wall-clock is only trustworthy with a core to spare.
    if cores < 2:
        pytest.skip(f"wall-clock floor needs >= 2 cores (have {cores}); "
                    f"measured {speedup:.2f}x")
    floor = float(os.environ.get("REPRO_COALESCE_MIN_SPEEDUP", "1.15"))
    assert speedup >= floor, (
        f"coalescing speedup too small: {on_pps:,.0f} vs {off_pps:,.0f} "
        f"pay/wall-sec ({speedup:.2f}x < {floor}x)"
    )


def test_sharded_cell_speedup(scale):
    """REPRO_SIM_SHARDS=2 must beat the serial engine on the large cell
    on >= 2 cores — with byte-identical merged results."""
    cores = usable_cpus()
    if cores < 2:
        pytest.skip(f"needs >= 2 cores for a sharded speedup (have {cores})")

    built, serial_result, serial_wall = _large_cell_run()
    serial_state = state_fingerprints(built)

    spec = dict(system=LARGE_SYSTEM, size=LARGE_N, seed=LARGE_SEED,
                builder_kwargs=None)
    with ShardedOpenLoop(spec, shards=2) as cluster:
        # Build outside the timed window, exactly like the serial
        # measurement (the factory call happens before its clock starts).
        cluster.prepare()
        start = time.perf_counter()
        sharded_result = cluster.probe(
            rate=LARGE_RATE, duration=LARGE_DURATION, warmup=LARGE_WARMUP,
            fresh=False, seed=LARGE_SEED,
        )
        sharded_wall = time.perf_counter() - start
        sharded_state = cluster.fingerprint()["state"]

    # Determinism first: the sharded engine must not change a single bit.
    assert _result_fingerprint(sharded_result) == _result_fingerprint(serial_result)
    assert sharded_state == serial_state

    speedup = serial_wall / sharded_wall
    path = _update_perf_report("sharded_cell", {
        "scenario": {"system": LARGE_SYSTEM, "num_replicas": LARGE_N,
                     "rate": LARGE_RATE, "duration": LARGE_DURATION,
                     "warmup": LARGE_WARMUP, "seed": LARGE_SEED,
                     "shards": 2},
        "serial_wall_seconds": round(serial_wall, 3),
        "sharded_wall_seconds": round(sharded_wall, 3),
        "speedup": round(speedup, 3),
        "cores": cores,
    })
    print(f"\n[perf] sharded cell ({LARGE_SYSTEM} N={LARGE_N}, shards=2): "
          f"serial {serial_wall:.2f}s vs sharded {sharded_wall:.2f}s = "
          f"{speedup:.2f}x on {cores} cores (report: {path})")

    floor = float(os.environ.get("REPRO_SHARD_MIN_SPEEDUP", "1.4"))
    assert speedup >= floor, (
        f"sharded engine not fast enough: serial {serial_wall:.2f}s vs "
        f"sharded {sharded_wall:.2f}s ({speedup:.2f}x < {floor}x)"
    )


def test_async_shard_scaling(scale):
    """Per-channel pacing must keep scaling past one shard per region:
    8 shards (region sub-splitting) must beat 4 (one per region) on the
    large cell when 8 cores exist — with byte-identical merged results.

    This is the property the windowed-barrier engine could not deliver:
    splitting a region used to collapse the single global window to the
    intra-region floor.  Under CMB null-message pacing only the sibling
    sub-shard channels are that narrow; inter-region channels keep their
    wide floors, so the extra parallelism has to show up as wall-clock.
    """
    cores = usable_cpus()
    if cores < 8:
        pytest.skip(f"needs >= 8 cores for an 8-shard speedup (have {cores})")

    spec = dict(system=LARGE_SYSTEM, size=LARGE_N, seed=LARGE_SEED,
                builder_kwargs=None)
    walls = {}
    fingerprints = {}
    for shards in (4, 8):
        with ShardedOpenLoop(spec, shards=shards) as cluster:
            cluster.prepare()
            start = time.perf_counter()
            result = cluster.probe(
                rate=LARGE_RATE, duration=LARGE_DURATION,
                warmup=LARGE_WARMUP, fresh=False, seed=LARGE_SEED,
            )
            walls[shards] = time.perf_counter() - start
            fingerprints[shards] = (
                _result_fingerprint(result), cluster.fingerprint()["state"]
            )

    # Identity across shard counts before any speed claim.
    assert fingerprints[8] == fingerprints[4]

    speedup = walls[4] / walls[8]
    path = _update_perf_report("async_shard_scaling", {
        "scenario": {"system": LARGE_SYSTEM, "num_replicas": LARGE_N,
                     "rate": LARGE_RATE, "duration": LARGE_DURATION,
                     "warmup": LARGE_WARMUP, "seed": LARGE_SEED},
        "wall_seconds_4_shards": round(walls[4], 3),
        "wall_seconds_8_shards": round(walls[8], 3),
        "speedup_8_over_4": round(speedup, 3),
        "cores": cores,
    })
    print(f"\n[perf] async shard scaling ({LARGE_SYSTEM} N={LARGE_N}): "
          f"4 shards {walls[4]:.2f}s vs 8 shards {walls[8]:.2f}s = "
          f"{speedup:.2f}x on {cores} cores (report: {path})")

    floor = float(os.environ.get("REPRO_SHARD_SCALING_MIN", "1.25"))
    assert speedup >= floor, (
        f"8 shards not faster than 4: {walls[8]:.2f}s vs {walls[4]:.2f}s "
        f"({speedup:.2f}x < {floor}x)"
    )
