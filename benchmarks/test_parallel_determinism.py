"""Backend determinism: the process pool must not change a single bit.

Runs the smoke-scale Fig. 3 sweep twice — once on the serial backend,
once on a two-worker process pool — and asserts the results are
byte-identical (`repr` equality, which for floats means exact bit
equality).  This is the guarantee that makes ``REPRO_BENCH_JOBS`` safe to
set anywhere: parallelism changes wall-clock time, never results.

Runs at smoke scale regardless of ``REPRO_BENCH_SCALE`` so its cost stays
bounded inside the quick/full suites.
"""

from repro.bench.fig3 import run_fig3
from repro.bench.scale import _SCALES


def test_fig3_parallel_backend_is_byte_identical(benchmark, scale):
    smoke = _SCALES["smoke"]
    serial = benchmark.pedantic(
        lambda: run_fig3(scale=smoke, seed=0, jobs=1), rounds=1, iterations=1
    )
    parallel = run_fig3(scale=smoke, seed=0, jobs=2)

    assert serial.sizes == parallel.sizes
    assert list(serial.peaks) == list(parallel.peaks)
    for name in serial.peaks:
        assert serial.peaks[name] == parallel.peaks[name], (
            f"{name}: serial {serial.peaks[name]} != "
            f"parallel {parallel.peaks[name]}"
        )
    assert repr(serial.peaks) == repr(parallel.peaks)
    assert serial.table() == parallel.table()
