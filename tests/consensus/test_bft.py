"""Unit/system tests for the consensus baseline (normal case + view change)."""


from repro.consensus import BftConfig, BftSystem
from repro.sim import UniformLatency

GENESIS = {"alice": 100, "bob": 50, "carol": 0}


def build(n=4, genesis=None, **kwargs):
    return BftSystem(num_replicas=n, genesis=genesis or dict(GENESIS), **kwargs)


class TestNormalCase:
    def test_single_payment_executes_everywhere(self):
        system = build()
        system.submit("alice", "bob", 30)
        system.settle_all()
        assert system.settled_counts() == [1, 1, 1, 1]
        assert system.balances_at(0) == {"alice": 70, "bob": 80, "carol": 0}

    def test_total_order_identical_sequences(self):
        system = build(n=7)
        for index in range(20):
            system.submit("alice", "bob", 1)
            system.submit("bob", "carol", 1)
        system.settle_all()
        snapshots = {replica.state.snapshot() for replica in system.replicas}
        assert len(snapshots) == 1
        assert all(count == 40 for count in system.settled_counts())

    def test_conservation(self):
        system = build()
        for _ in range(10):
            system.submit("alice", "carol", 3)
        system.settle_all()
        assert system.total_value() == sum(GENESIS.values())

    def test_duplicate_request_executes_once(self):
        system = build()
        payment = system.make_payment("alice", "bob", 5)
        system.submit_payment(payment)
        system.submit_payment(payment)
        system.settle_all()
        assert system.settled_counts() == [1, 1, 1, 1]

    def test_underfunded_payment_waits_for_credit(self):
        system = build()
        system.submit("carol", "bob", 60)   # carol has 0
        system.submit("alice", "carol", 80)
        system.settle_all()
        balances = system.balances_at(0)
        assert balances["carol"] == 20
        assert balances["bob"] == 110

    def test_confirmation_after_f_plus_one_executions(self):
        system = build()
        seen = []
        system.add_confirm_hook(lambda payment, at: seen.append(payment.identifier))
        system.submit("alice", "bob", 5)
        system.settle_all()
        assert seen == [("alice", 1)]

    def test_client_node_confirms_after_f_plus_one_replies(self):
        system = build()
        latencies = []
        client = system.add_client_node(
            "alice", on_confirm=lambda payment, latency: latencies.append(latency)
        )
        client.pay("bob", 5)
        system.settle_all()
        assert client.confirmed_count == 1
        assert latencies[0] > 0


class TestViewChange:
    def test_leader_crash_triggers_view_change_and_recovery(self):
        system = build()
        system.faults.crash(0, at=0.0)  # replica 0 leads view 0
        system.submit("alice", "bob", 10)
        system.settle_all(max_time=30)
        alive = system.replicas[1:]
        assert all(replica.view >= 1 for replica in alive)
        assert all(replica.executed_count == 1 for replica in alive)

    def test_two_successive_leader_crashes(self):
        system = build(n=7)
        system.faults.crash(0, at=0.0)
        system.faults.crash(1, at=0.0)
        system.submit("alice", "bob", 10)
        system.settle_all(max_time=60)
        alive = system.replicas[2:]
        assert all(replica.view >= 2 for replica in alive)
        assert all(replica.executed_count == 1 for replica in alive)

    def test_no_spurious_view_change_when_healthy(self):
        system = build()
        for _ in range(10):
            system.submit("alice", "bob", 1)
        system.settle_all()
        assert all(replica.view == 0 for replica in system.replicas)
        assert all(replica.view_changes == 0 for replica in system.replicas)

    def test_in_flight_requests_survive_view_change(self):
        """Requests proposed by the crashed leader are re-proposed by the
        new one: nothing is lost, nothing executes twice."""
        system = build(latency=UniformLatency(0.002, 0.01, seed=4))
        for _ in range(5):
            system.submit("alice", "bob", 1)
        # Crash the leader almost immediately — mid-protocol.
        system.faults.crash(0, at=0.02)
        system.settle_all(max_time=30)
        alive = system.replicas[1:]
        for replica in alive:
            assert replica.executed_count == 5
        snapshots = {replica.state.snapshot() for replica in alive}
        assert len(snapshots) == 1

    def test_safety_across_view_change(self):
        """No two correct replicas execute different payments for the
        same position (checked via final state equality)."""
        system = build(n=7)
        for index in range(12):
            system.submit("alice", "carol", 1)
        system.faults.crash(0, at=0.05)
        system.settle_all(max_time=40)
        alive = system.replicas[1:]
        snapshots = {replica.state.snapshot() for replica in alive}
        assert len(snapshots) == 1
        assert alive[0].executed_count == 12

    def test_slow_leader_with_patient_timeout_no_view_change(self):
        config = BftConfig(num_replicas=4, request_timeout=60.0)
        system = build(config=config)
        system.faults.delay_egress(0, 0.1, at=0.0)
        system.submit("alice", "bob", 5)
        system.settle_all(max_time=20)
        assert all(replica.view == 0 for replica in system.replicas)
        assert system.settled_counts() == [1, 1, 1, 1]

    def test_slow_leader_with_aggressive_timeout_deposed(self):
        config = BftConfig(
            num_replicas=4, request_timeout=0.3, timeout_check_interval=0.1
        )
        system = build(config=config)
        system.faults.delay_egress(0, 0.5, at=0.0)
        system.submit("alice", "bob", 5)
        system.settle_all(max_time=30)
        assert any(replica.view >= 1 for replica in system.replicas[1:])
        assert all(r.executed_count == 1 for r in system.replicas[1:])


class TestLedger:
    def test_waiting_count(self):
        from repro.consensus.ledger import PaymentLedger
        from repro.core.payment import Payment

        ledger = PaymentLedger({"a": 10, "b": 0})
        ledger.apply(Payment("b", 1, "a", 5))  # unfunded: waits
        assert ledger.waiting_count == 1
        ledger.apply(Payment("a", 1, "b", 7))
        assert ledger.waiting_count == 0
        assert ledger.settled_count == 2
        assert ledger.state.balance("b") == 2

    def test_out_of_order_client_seq(self):
        from repro.consensus.ledger import PaymentLedger
        from repro.core.payment import Payment

        ledger = PaymentLedger({"a": 10})
        ledger.apply(Payment("a", 2, "x", 1))
        assert ledger.settled_count == 0
        ledger.apply(Payment("a", 1, "x", 1))
        assert ledger.settled_count == 2
