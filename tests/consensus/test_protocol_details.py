"""Focused tests of consensus protocol internals."""


from repro.brb.batching import Batch
from repro.consensus.config import BftConfig
from repro.consensus.messages import Propose, Write
from repro.consensus.system import BftSystem
from repro.core.payment import Payment

GENESIS = {"a": 1000, "b": 1000}


def build(n=4, **kwargs):
    return BftSystem(num_replicas=n, genesis=dict(GENESIS), **kwargs)


def test_non_leader_proposals_rejected():
    system = build()
    impostor = system.replicas[2]  # leader of view 0 is replica 0
    batch = Batch([Payment("a", 1, "b", 5)])
    message = Propose(0, 1, batch, 148)
    for replica in system.replicas:
        if replica is impostor:
            continue
        system.network.send(
            impostor.node_id, replica.node_id, message, size=148
        )
    system.settle_all(max_time=10)
    assert system.settled_counts() == [0, 0, 0, 0]


def test_wrong_view_proposals_ignored():
    system = build()
    leader = system.replicas[0]
    batch = Batch([Payment("a", 1, "b", 5)])
    stale = Propose(7, 1, batch, 148)  # view 7 does not exist
    for replica in system.replicas[1:]:
        system.network.send(leader.node_id, replica.node_id, stale, size=148)
    system.settle_all(max_time=10)
    assert system.settled_counts() == [0, 0, 0, 0]


def test_write_quorum_needs_matching_digest():
    """WRITE votes for a different digest than the proposal never lead to
    an ACCEPT from a correct replica."""
    system = build()
    system.submit("a", "b", 5)
    # Byzantine replica floods wrong-digest writes; harmless.
    for seq in (1,):
        wrong = Write(0, seq, 0xBAD)
        for replica in system.replicas[:3]:
            system.network.send(3, replica.node_id, wrong, size=80)
    system.settle_all()
    assert system.settled_counts() == [1, 1, 1, 1]


def test_batching_coalesces_backlog():
    """At high submission rates the leader packs full batches rather than
    proposing per payment."""
    config = BftConfig(num_replicas=4, batch_size=64, batch_delay=0.001)
    system = build(config=config)
    for _ in range(256):
        system.submit("a", "b", 1)
    system.settle_all()
    leader = system.replicas[0]
    assert leader.executed_count == 256
    # 256 payments in at most ~8 instances (allowing stragglers), not 256.
    assert leader._last_executed <= 16


def test_pipeline_depth_bounds_outstanding():
    config = BftConfig(num_replicas=4, pipeline_depth=1, batch_size=8)
    system = build(config=config)
    for _ in range(64):
        system.submit("a", "b", 1)
    assert system.replicas[0]._outstanding <= 1
    system.settle_all()
    assert all(count == 64 for count in system.settled_counts())


def test_execution_order_is_sequence_order():
    """Decided-but-gapped instances wait for their predecessors."""
    system = build()
    for _ in range(20):
        system.submit("a", "b", 1)
    system.settle_all()
    for replica in system.replicas:
        assert replica._last_executed == len(replica._decided_batches)


def test_view_change_counter():
    system = build()
    system.faults.crash(0, at=0.0)
    system.submit("a", "b", 1)
    system.settle_all(max_time=30)
    assert all(replica.view_changes >= 1 for replica in system.replicas[1:])


def test_leader_of_rotates():
    system = build(n=7)
    replica = system.replicas[0]
    leaders = [replica.leader_of(view) for view in range(7)]
    assert leaders == list(range(7))
    assert replica.leader_of(7) == 0


def test_reply_sent_to_registered_clients_only():
    system = build()
    client = system.add_client_node("a")
    client.pay("b", 1)
    system.settle_all()
    assert client.confirmed_count == 1
    # 'b' has no client node: replicas simply skip the reply.
    system.submit("b", "a", 1)
    system.settle_all()
    assert system.settled_counts() == [2, 2, 2, 2]
