"""Tests for the scenario-level parallel execution subsystem."""

import functools

import pytest

from repro.bench import jobs  # noqa: F401 - registers the standard executors
from repro.bench.fig3 import Fig3Result
from repro.bench.parallel import (
    ScenarioJob,
    ScenarioPipeline,
    derive_seed,
    execute,
    replace_params,
    resolve_jobs,
    run_unit,
    sweep_report,
)
from repro.bench.peak import PeakResult, find_peak
from repro.bench.systems import build_astro2


def _tiny_job(system: str, rate: float = 400.0, seed: int = 0) -> ScenarioJob:
    return ScenarioJob(
        kind="open_loop_messages",
        params=dict(system=system, size=4, rate=rate, duration=0.4, warmup=0.3),
        seed=seed,
        tag=system,
    )


class TestSeedDerivation:
    def test_same_key_same_seed(self):
        assert derive_seed(7, "fig3", "astro2", 4) == derive_seed(7, "fig3", "astro2", 4)

    def test_distinct_keys_distinct_seeds(self):
        keys = [("fig3", name, size) for name in ("bft", "astro1", "astro2")
                for size in (4, 10, 22)]
        seeds = {derive_seed(0, *key) for key in keys}
        assert len(seeds) == len(keys)

    def test_root_seed_separates_streams(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_independent_of_submission_order(self):
        """The satellite guarantee: a job's seed is a pure function of its
        identity key — enumerating or submitting jobs in any other order
        must produce the same per-job seed."""
        keys = [("cell", name, size) for name in ("bft", "astro1", "astro2")
                for size in (4, 7, 10, 22)]
        forward = {key: derive_seed(3, *key) for key in keys}
        backward = {key: derive_seed(3, *key) for key in reversed(keys)}
        shuffled = {key: derive_seed(3, *key)
                    for key in sorted(keys, key=lambda k: repr(k)[::-1])}
        assert forward == backward == shuffled


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "4")
        assert resolve_jobs() == 4

    def test_env_auto(self, monkeypatch):
        from repro.bench.parallel import usable_cpus

        monkeypatch.setenv("REPRO_BENCH_JOBS", "auto")
        assert resolve_jobs() == usable_cpus()
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        assert resolve_jobs() == usable_cpus()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestExecute:
    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="no executor registered"):
            run_unit(ScenarioJob(kind="no-such-kind"))

    def test_results_in_submission_order(self):
        units = [_tiny_job("astro1"), _tiny_job("astro2")]
        forward = execute(units, jobs=1)
        backward = execute(list(reversed(units)), jobs=1)
        assert [r.offered for r, _sent in forward] == [
            r.offered for r, _sent in reversed(backward)
        ]
        # Astro I's O(N^2) BRB sends more wire messages than Astro II's.
        assert forward[0][1] > forward[1][1]

    def test_parallel_matches_serial(self):
        units = [_tiny_job("astro1"), _tiny_job("astro2")]
        serial = execute(units, jobs=1)
        parallel = execute(units, jobs=2)
        assert [(repr(r), sent) for r, sent in serial] == [
            (repr(r), sent) for r, sent in parallel
        ]
        assert [(r.achieved, r.injected, r.confirmed) for r, _ in serial] == [
            (r.achieved, r.injected, r.confirmed) for r, _ in parallel
        ]

    def test_sweep_timing_recorded(self):
        before = len(sweep_report())
        execute([_tiny_job("astro2")], jobs=1, label="test-sweep")
        report = sweep_report()
        assert len(report) == before + 1
        entry = report[-1]
        assert entry["label"] == "test-sweep"
        assert entry["units"] == 1
        assert entry["backend"] == "serial"
        assert entry["seconds"] > 0

    def test_unlabelled_sweeps_not_recorded(self):
        before = len(sweep_report())
        execute([_tiny_job("astro2")], jobs=1)
        assert len(sweep_report()) == before


class TestPipelines:
    def _peak_pipeline(self) -> ScenarioPipeline:
        job = functools.partial(
            ScenarioJob,
            kind="find_peak",
            seed=0,
        )
        return ScenarioPipeline(
            jobs=(
                job(params=dict(
                    system="astro2", size=4, start_rate=2000.0, duration=0.4,
                    warmup=0.3, refine_steps=1, payment_budget=6000,
                    max_probes=3, reuse_state=True,
                )),
                job(params=dict(
                    system="astro2", size=7, start_rate=2000.0, duration=0.4,
                    warmup=0.3, refine_steps=1, payment_budget=6000,
                    max_probes=3, reuse_state=True,
                )),
            ),
            carry="fig3_warm_start",
        )

    def test_pipeline_runs_stages_in_order(self):
        results = run_unit(self._peak_pipeline())
        assert len(results) == 2
        assert all(isinstance(r, PeakResult) for r in results)
        # The carry rule warm-started stage 2 from stage 1's peak, not
        # from the enumerated start_rate.
        expected_start = max(results[0].peak_pps * 0.5, 50.0)
        assert results[1].probes[0].offered == pytest.approx(expected_start)

    def test_pipeline_parallel_matches_serial(self):
        pipeline = self._peak_pipeline()
        serial = execute([pipeline, pipeline], jobs=1)
        parallel = execute([pipeline, pipeline], jobs=2)
        assert [[r.peak_pps for r in unit] for unit in serial] == [
            [r.peak_pps for r in unit] for unit in parallel
        ]

    def test_replace_params_merges(self):
        job = ScenarioJob(kind="k", params={"a": 1, "b": 2}, seed=3, tag="t")
        updated = replace_params(job, b=9, c=10)
        assert updated.params == {"a": 1, "b": 9, "c": 10}
        assert job.params == {"a": 1, "b": 2}  # original untouched
        assert (updated.kind, updated.seed, updated.tag) == ("k", 3, "t")


class TestFig3ResultTable:
    def test_table_with_subset_of_systems(self):
        # Regression: table() used to KeyError on results measured for a
        # subset of the three systems (run_fig3(systems=...)).
        result = Fig3Result(sizes=[4, 10], peaks={"astro2": [100.0, 90.0]})
        table = result.table()
        assert "Astro II" in table
        assert "BFT" not in table

    def test_table_with_all_systems(self):
        result = Fig3Result(
            sizes=[4],
            peaks={"bft": [1.0], "astro1": [2.0], "astro2": [3.0]},
        )
        lines = result.table().splitlines()
        assert "Consensus" in lines[1]
        assert "Astro I" in lines[1] and "Astro II" in lines[1]


class TestFindPeakGuards:
    def test_zero_probe_budget_raises(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        with pytest.raises(ValueError, match="no probes"):
            find_peak(factory, start_rate=2000, max_probes=0)

    def test_single_probe_history_skips_backtrack(self):
        # max_doublings=0 forces the walk-down path; its first (and only)
        # probe passes, leaving a one-element history that used to crash
        # the ``probes[-2]`` backtrack.
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, start_rate=800.0, duration=0.4, warmup=0.3,
            max_doublings=0, refine_steps=2, payment_budget=4000,
        )
        assert len(result.probes) == 1
        assert result.peak_pps > 0

    def test_injected_total_sums_probes(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, start_rate=2000, duration=0.4, warmup=0.3,
            refine_steps=1, max_probes=3, payment_budget=6000,
        )
        assert result.injected_total == sum(p.injected for p in result.probes)
        assert result.injected_total > 0


def test_auto_jobs_yield_to_sim_shards(monkeypatch):
    """The axes cannot nest (pool workers are daemonic, so sharding
    silently disables inside them): ``auto`` must hand the machine to
    the shards when the operator asked for them.  Explicit worker
    counts stay verbatim."""
    import repro.bench.parallel as parallel

    monkeypatch.setattr(parallel, "usable_cpus", lambda: 8)
    monkeypatch.setenv("REPRO_BENCH_JOBS", "auto")
    monkeypatch.delenv("REPRO_SIM_SHARDS", raising=False)
    assert parallel.resolve_jobs() == 8
    monkeypatch.setenv("REPRO_SIM_SHARDS", "4")
    assert parallel.resolve_jobs() == 1
    monkeypatch.setenv("REPRO_BENCH_JOBS", "6")   # explicit: never shrunk
    assert parallel.resolve_jobs() == 6
