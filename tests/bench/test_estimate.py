"""Tests for the size-major estimation subsystem: the analytic curve,
anchor calibration, bracketed peak search, memory-aware worker caps, and
the fig3 strategies' job enumeration."""

import functools

import pytest

import repro.bench.fig3 as fig3_mod
import repro.bench.robustness as robustness_mod
from repro.bench import parallel
from repro.bench.estimate import (
    PeakEstimate,
    analytic_capacity,
    bracket_for,
    calibrated_capacity,
    credit_amortization,
    estimate_peaks,
    job_memory_bytes,
)
from repro.bench.fig3 import Fig3Result, run_fig3
from repro.bench.fig4 import run_fig4
from repro.bench.fig8 import run_fig8
from repro.bench.parallel import (
    ScenarioJob,
    ScenarioPipeline,
    execute,
    reset_sweep_log,
    sweep_report,
)
from repro.bench.peak import PeakResult, find_peak
from repro.bench.robustness import run_robustness_suite
from repro.bench.scale import _SCALES
from repro.bench.systems import (
    build_astro2,
    build_bft,
    resolve_credit_coalesce,
    scaled_batch_delay,
    validate_systems,
)
from repro.sim.metrics import LatencySummary

SYSTEMS = ("bft", "astro1", "astro2")


class TestAnalyticCapacity:
    def test_positive_everywhere(self):
        for system in SYSTEMS:
            for size in (4, 10, 31, 100):
                assert analytic_capacity(system, size) > 0

    def test_paper_ordering_at_scale(self):
        # §VI-C1: broadcast beats consensus, Astro II beats Astro I.
        for size in (10, 31, 100):
            bft = analytic_capacity("bft", size)
            astro1 = analytic_capacity("astro1", size)
            astro2 = analytic_capacity("astro2", size)
            assert astro2 > astro1 > bft

    def test_decay_with_size(self):
        for system in SYSTEMS:
            assert analytic_capacity(system, 4) > analytic_capacity(system, 100)

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            analytic_capacity("raft", 4)


class TestCreditCoalesceEstimation:
    def test_amortization_one_when_off(self):
        assert credit_amortization(32, 0.0) == 1.0
        assert credit_amortization(32, -1.0) == 1.0

    def test_amortization_grows_with_window_and_size(self):
        assert credit_amortization(32, 0.4) > credit_amortization(32, 0.1) >= 1.0
        window = 0.2
        assert credit_amortization(64, window) > credit_amortization(8, window)

    def test_coalescing_raises_astro2_capacity(self):
        for size in (10, 32, 100):
            off = analytic_capacity("astro2", size, credit_coalesce_delay=0.0)
            on = analytic_capacity(
                "astro2", size, credit_coalesce_delay=scaled_batch_delay(size)
            )
            assert on > off
        # Other systems have no CREDIT path: the knob is a no-op.
        for system in ("astro1", "bft"):
            assert analytic_capacity(
                system, 32, credit_coalesce_delay=1.0
            ) == analytic_capacity(system, 32, credit_coalesce_delay=0.0)

    def test_env_knob_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CREDIT_COALESCE", raising=False)
        assert resolve_credit_coalesce(32) == 0.0
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "off")
        assert resolve_credit_coalesce(32) == 0.0
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "0.25")
        assert resolve_credit_coalesce(32) == 0.25
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "auto")
        assert resolve_credit_coalesce(32) == scaled_batch_delay(32)
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "-1")
        with pytest.raises(ValueError):
            resolve_credit_coalesce(32)

    def test_unset_env_flips_to_auto_at_large_n(self, monkeypatch):
        """Unset coalescing defaults to the auto window once the CREDIT
        fan-in dominates (N >= CREDIT_COALESCE_AUTO_MIN_N); an explicit
        ``off`` still wins at any size."""
        from repro.bench.systems import CREDIT_COALESCE_AUTO_MIN_N

        threshold = CREDIT_COALESCE_AUTO_MIN_N
        monkeypatch.delenv("REPRO_CREDIT_COALESCE", raising=False)
        assert resolve_credit_coalesce(threshold - 1) == 0.0
        assert resolve_credit_coalesce(threshold) == scaled_batch_delay(
            threshold
        )
        assert resolve_credit_coalesce(100) == scaled_batch_delay(100)
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "off")
        assert resolve_credit_coalesce(100) == 0.0
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "0")
        assert resolve_credit_coalesce(100) == 0.0

    def test_analytic_capacity_follows_env_when_unspecified(self, monkeypatch):
        monkeypatch.delenv("REPRO_CREDIT_COALESCE", raising=False)
        off = analytic_capacity("astro2", 32)
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "auto")
        assert analytic_capacity("astro2", 32) > off

    def test_builder_env_and_explicit_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_CREDIT_COALESCE", "auto")
        system = build_astro2(4, seed=1)
        assert system.config.credit_coalesce_delay == scaled_batch_delay(4)
        # Explicit parameter beats the environment.
        system = build_astro2(4, seed=1, credit_coalesce_delay=0.0)
        assert system.config.credit_coalesce_delay == 0.0
        # An explicit config beats both.
        from repro.core.config import AstroConfig

        config = AstroConfig(num_replicas=4, credit_coalesce_delay=0.07)
        system = build_astro2(4, seed=1, config=config)
        assert system.config.credit_coalesce_delay == 0.07


class TestCalibration:
    def test_no_anchors_is_analytic(self):
        assert calibrated_capacity("astro2", 22) == analytic_capacity("astro2", 22)

    def test_single_anchor_rescales_uniformly(self):
        measured = 2.0 * analytic_capacity("astro2", 4)
        for size in (4, 22, 100):
            assert calibrated_capacity(
                "astro2", size, {4: measured}
            ) == pytest.approx(2.0 * analytic_capacity("astro2", size))

    def test_two_anchors_pass_through_measurements(self):
        anchors = {
            4: 0.5 * analytic_capacity("astro1", 4),
            10: 0.8 * analytic_capacity("astro1", 10),
        }
        for size, measured in anchors.items():
            assert calibrated_capacity("astro1", size, anchors) == pytest.approx(
                measured
            )

    def test_extrapolated_correction_is_clamped(self):
        # A wildly sloped pair of anchors must not run away at large N.
        anchors = {4: analytic_capacity("bft", 4), 10: 4 * analytic_capacity("bft", 10)}
        capacity = calibrated_capacity("bft", 100, anchors)
        # t clamps at 2.0 -> correction at most 1 * (4/1)^2 = 16x.
        assert capacity <= 16.0 * analytic_capacity("bft", 100) * 1.001

    def test_nonpositive_anchor_ignored(self):
        assert calibrated_capacity("bft", 10, {4: 0.0}) == analytic_capacity("bft", 10)


class TestBrackets:
    def test_bracket_surrounds_capacity(self):
        low, high = bracket_for(10_000.0)
        assert low < 10_000.0 < high

    def test_bracket_floor(self):
        low, high = bracket_for(10.0)
        assert low == 50.0 and high == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bracket_for(0.0)

    def test_estimate_peaks_covers_every_size(self):
        estimates = estimate_peaks("astro2", (4, 10, 22))
        assert sorted(estimates) == [4, 10, 22]
        for estimate in estimates.values():
            assert isinstance(estimate, PeakEstimate)
            assert estimate.bracket[0] < estimate.capacity_pps < estimate.bracket[1]


class TestJobMemory:
    def test_monotone_in_size(self):
        assert job_memory_bytes(100) > job_memory_bytes(10) > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            job_memory_bytes(0)


class TestMemoryAwareAutoCap:
    def test_explicit_jobs_never_capped(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_memory_bytes", lambda: 10)
        assert parallel._memory_capped_workers(4, 10**9) == 1
        # execute() only consults the cap for auto resolution:
        monkeypatch.setenv("REPRO_BENCH_JOBS", "1")
        info = parallel._resolve_jobs_info(None)
        assert info == (1, False)

    def test_auto_capped_by_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "auto")
        workers, auto = parallel._resolve_jobs_info(None)
        assert auto is True
        monkeypatch.setattr(
            parallel, "available_memory_bytes", lambda: 10 * 10**9
        )
        # 10 GB * 0.8 headroom / 2 GB per job = 4 workers max.
        assert parallel._memory_capped_workers(64, 2 * 10**9) == 4
        assert parallel._memory_capped_workers(2, 2 * 10**9) == 2

    def test_unknown_memory_leaves_count(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_memory_bytes", lambda: None)
        assert parallel._memory_capped_workers(8, 10**9) == 8

    def test_available_memory_readable_or_none(self):
        value = parallel.available_memory_bytes()
        assert value is None or value > 0


class TestPerCellTimings:
    def test_cells_recorded_with_tags(self):
        reset_sweep_log()
        units = [
            ScenarioJob(
                kind="open_loop_messages",
                params=dict(system="astro2", size=4, rate=400.0,
                            duration=0.4, warmup=0.3),
                seed=0,
                tag=("astro2", 4),
            )
        ]
        execute(units, jobs=1, label="cell-timing-test")
        entry = sweep_report()[-1]
        assert entry["label"] == "cell-timing-test"
        cells = entry["cells"]
        assert len(cells) == 1
        assert cells[0]["tag"] == repr(("astro2", 4))
        assert cells[0]["seconds"] > 0


def _fake_execute_factory(calls):
    """Stand-in backend: records every execute() call, fabricates
    result shapes per job kind."""

    def fake_execute(units, jobs=None, label=None, per_job_bytes=None,
                     budgets=None):
        units = list(units)
        calls.append(dict(label=label, units=units, jobs=jobs,
                          per_job_bytes=per_job_bytes, budgets=budgets))
        results = []
        for unit in units:
            if isinstance(unit, ScenarioPipeline):
                results.append([
                    PeakResult(1000.0, LatencySummary.empty(), [None] * 4)
                    for _job in unit.jobs
                ])
            elif unit.kind == "estimate_anchor":
                results.append({
                    "capacity_pps": 10_000.0, "offered": 2_500.0,
                    "achieved": 2_500.0, "utilization": 0.25,
                })
            elif unit.kind == "find_peak":
                results.append(
                    PeakResult(unit.params["bracket"][0],
                               LatencySummary.empty(), [None] * 3)
                )
            elif unit.kind == "timeline":
                results.append(f"timeline:{unit.tag}")
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unexpected kind {unit.kind}")
        return results

    return fake_execute


class TestFig3SizeMajorEnumeration:
    def test_one_job_per_cell(self, monkeypatch):
        calls = []
        monkeypatch.setattr(fig3_mod, "execute", _fake_execute_factory(calls))
        sizes, systems = (4, 7, 10), ("bft", "astro2")
        result = run_fig3(
            sizes=sizes, systems=systems, scale=_SCALES["smoke"],
            strategy="size-major", seed=3,
        )
        assert len(calls) == 2  # anchors, then the cell sweep
        anchors, cells = calls
        # Anchor phase: up to two smallest sizes per system.
        assert len(anchors["units"]) == len(systems) * 2
        assert all(u.kind == "estimate_anchor" for u in anchors["units"])
        assert sorted({u.params["size"] for u in anchors["units"]}) == [4, 7]
        # The sweep proper: exactly len(sizes) x len(systems) independent
        # jobs, every one a bracketed cold-start cell.
        assert len(cells["units"]) == len(sizes) * len(systems)
        assert all(isinstance(u, ScenarioJob) for u in cells["units"])
        assert all(u.kind == "find_peak" for u in cells["units"])
        assert {u.tag for u in cells["units"]} == {
            (name, size) for name in systems for size in sizes
        }
        for unit in cells["units"]:
            low, high = unit.params["bracket"]
            assert 0 < low < high
            assert unit.seed == 3
        assert cells["per_job_bytes"] == job_memory_bytes(10)
        # Both phases ship a wall-clock budget for every cell tag.
        for phase in (anchors, cells):
            budgets = phase["budgets"]
            assert set(budgets) == {u.tag for u in phase["units"]}
            assert all(b > 0 for b in budgets.values())
        # Assembly: per-system series in size order, probe accounting on.
        assert list(result.peaks) == list(systems)
        assert result.sizes == list(sizes)
        assert result.anchor_probes == len(anchors["units"])
        assert result.probe_counts["bft"] == [3, 3, 3]
        assert result.total_probes == 4 + 18

    def test_pipeline_strategy_keeps_carry(self, monkeypatch):
        calls = []
        monkeypatch.setattr(fig3_mod, "execute", _fake_execute_factory(calls))
        result = run_fig3(
            sizes=(4, 7), systems=("astro1",), scale=_SCALES["smoke"],
            strategy="pipeline",
        )
        assert len(calls) == 1
        (pipeline,) = calls[0]["units"]
        assert isinstance(pipeline, ScenarioPipeline)
        assert pipeline.carry == "fig3_warm_start"
        assert len(pipeline.jobs) == 2
        assert result.anchor_probes == 0
        assert result.probe_counts["astro1"] == [4, 4]

    def test_env_selects_strategy(self, monkeypatch):
        calls = []
        monkeypatch.setattr(fig3_mod, "execute", _fake_execute_factory(calls))
        monkeypatch.setenv("REPRO_BENCH_FIG3_STRATEGY", "pipeline")
        run_fig3(sizes=(4,), systems=("bft",), scale=_SCALES["smoke"])
        assert isinstance(calls[0]["units"][0], ScenarioPipeline)

    def test_default_strategy_is_size_major(self, monkeypatch):
        calls = []
        monkeypatch.setattr(fig3_mod, "execute", _fake_execute_factory(calls))
        monkeypatch.delenv("REPRO_BENCH_FIG3_STRATEGY", raising=False)
        run_fig3(sizes=(4,), systems=("bft",), scale=_SCALES["smoke"])
        assert calls[0]["units"][0].kind == "estimate_anchor"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            run_fig3(sizes=(4,), scale=_SCALES["smoke"], strategy="warp")


class TestSystemsValidation:
    def test_validate_systems_passes_good_input(self):
        assert validate_systems(("bft", "astro2")) == ["bft", "astro2"]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_systems(("astro2", "bft", "astro2"))

    def test_unknown_named_with_allowed_list(self):
        with pytest.raises(ValueError) as excinfo:
            validate_systems(("bft", "hotstuff"))
        message = str(excinfo.value)
        assert "hotstuff" in message
        for name in SYSTEMS:
            assert name in message

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_systems(())

    def test_run_fig3_guards_systems(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_fig3(systems=("bft", "bft"), scale=_SCALES["smoke"])
        with pytest.raises(ValueError, match="unknown system"):
            run_fig3(systems=("tendermint",), scale=_SCALES["smoke"])

    def test_run_fig4_guards_systems(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_fig4(systems=("astro1", "astro1"), scale=_SCALES["smoke"])
        with pytest.raises(ValueError, match="unknown system"):
            run_fig4(systems=("paxos",), scale=_SCALES["smoke"])

    def test_run_fig8_guards_sizes(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            run_fig8(sizes=(10, 4), scale=_SCALES["smoke"])
        with pytest.raises(ValueError, match=">= 2"):
            run_fig8(sizes=(1, 4), scale=_SCALES["smoke"])


class TestFindPeakBracket:
    def test_bracket_probes_hints_first(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, bracket=(2_000.0, 400_000.0), duration=0.4, warmup=0.3,
            refine_steps=1, payment_budget=6_000, max_probes=4,
        )
        assert result.probes[0].offered == pytest.approx(2_000.0)
        assert result.probes[1].offered == pytest.approx(400_000.0)
        # N=4 Astro II sits inside this bracket (the reported peak is a
        # measured rate, so allow measurement fuzz at the low edge).
        assert 2_000.0 * 0.9 <= result.peak_pps < 400_000.0

    def test_bracket_too_low_resumes_doubling(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, bracket=(1_000.0, 2_000.0), duration=0.4, warmup=0.3,
            refine_steps=0, payment_budget=6_000, max_probes=4,
        )
        # Both hints pass; the search doubles onward from 2x the high hint.
        assert result.probes[2].offered == pytest.approx(4_000.0)
        assert result.peak_pps >= 2_000.0

    def test_bracket_too_high_walks_down(self):
        factory = functools.partial(build_bft, 4, seed=3)
        result = find_peak(
            factory, bracket=(400_000.0, 800_000.0), duration=0.4, warmup=0.3,
            refine_steps=1, payment_budget=6_000, max_probes=5,
        )
        assert result.probes[0].offered == pytest.approx(400_000.0)
        # The failing low hint halves, exactly like a cold walk-down.
        assert result.probes[1].offered == pytest.approx(200_000.0)
        assert result.peak_pps < 400_000.0

    def test_invalid_bracket_rejected(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        for bad in ((0.0, 10.0), (10.0, 10.0), (20.0, 10.0)):
            with pytest.raises(ValueError, match="bracket"):
                find_peak(factory, bracket=bad, max_probes=1)


class TestPlateauFallback:
    def test_reports_best_failing_probe_not_last(self):
        factory = functools.partial(build_bft, 4, seed=3)
        result = find_peak(
            factory, start_rate=800_000.0, duration=0.4, warmup=0.3,
            max_probes=2, payment_budget=6_000, reuse_state=True,
        )
        # Both probes fail (start far beyond capacity, budget exhausted
        # before the walk-down reaches a passing rate).
        assert result.peak_probe_index is not None
        winner = result.probes[result.peak_probe_index]
        assert result.peak_pps == winner.achieved
        assert result.peak_pps == max(p.achieved for p in result.probes)

    def test_passing_search_records_winning_probe(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, start_rate=2_000.0, duration=0.4, warmup=0.3,
            refine_steps=1, payment_budget=6_000, max_probes=4,
        )
        assert result.peak_probe_index is not None
        assert (
            result.probes[result.peak_probe_index].achieved == result.peak_pps
        )


class TestRobustnessSuite:
    def test_single_pooled_schedule(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            robustness_mod, "execute", _fake_execute_factory(calls)
        )
        fig5, fig6, fig7 = run_robustness_suite(scale=_SCALES["smoke"], seed=1)
        # One execute call holding every fault timeline of all three
        # figures: 3 (Fig. 5) + 4 (Fig. 6) + 4 (Fig. 7).
        assert len(calls) == 1
        assert len(calls[0]["units"]) == 11
        assert all(u.kind == "timeline" for u in calls[0]["units"])
        assert calls[0]["per_job_bytes"] == job_memory_bytes(
            _SCALES["smoke"].robustness_large_n
        )
        assert list(fig5.timelines) == [
            "Consensus-Leader", "Consensus-Random", "Broadcast-Random"
        ]
        assert len(fig6.timelines) == 4
        assert len(fig7.timelines) == 4
        assert fig7.size == _SCALES["smoke"].robustness_large_n
        # Reassembly kept figure/curve pairing intact.
        assert fig6.timelines["Broadcast-Random"] == "timeline:Broadcast-Random"


class TestFig3ResultProbeAccounting:
    def test_total_probes_counts_anchors_and_cells(self):
        result = Fig3Result(
            sizes=[4, 10],
            peaks={"bft": [1.0, 2.0]},
            probe_counts={"bft": [5, 4]},
            anchor_probes=2,
        )
        assert result.total_probes == 11

    def test_table_still_renders_without_probe_counts(self):
        result = Fig3Result(sizes=[4], peaks={"astro2": [100.0]})
        assert "Astro II" in result.table()
