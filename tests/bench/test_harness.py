"""Tests for the benchmark harness (small scales: fast, deterministic)."""

import functools

import pytest

from repro.bench.peak import find_peak
from repro.bench.report import format_series, format_table, kilo
from repro.bench.runner import run_open_loop
from repro.bench.scale import current_scale
from repro.bench.systems import (
    build_astro1,
    build_astro2,
    build_bft,
    client_ids_of,
    scaled_batch_delay,
)
from repro.bench.timeline import run_timeline


class TestBuilders:
    def test_astro1_builder(self):
        system = build_astro1(4, seed=1)
        assert len(system.replicas) == 4
        assert len(client_ids_of(system)) == 16

    def test_astro2_sharded_builder(self):
        system = build_astro2(4, num_shards=2, seed=1)
        assert len(system.replicas) == 8
        assert system.directory.shard_ids == [0, 1]

    def test_bft_builder(self):
        system = build_bft(4, seed=1)
        assert len(system.replicas) == 4

    def test_scaled_batch_delay_grows(self):
        assert scaled_batch_delay(4) == pytest.approx(0.05)
        assert scaled_batch_delay(100) > scaled_batch_delay(49) > 0.05


class TestRunner:
    def test_open_loop_measures_throughput_and_latency(self):
        system = build_astro2(4, seed=2)
        result = run_open_loop(system, rate=2000, duration=1.0, warmup=0.5)
        assert result.achieved == pytest.approx(2000, rel=0.15)
        assert result.goodput_ratio > 0.8
        assert result.latency.count > 500
        assert 0 < result.latency.mean < 1.0

    def test_offered_equals_injected_rate(self):
        system = build_astro2(4, seed=2)
        result = run_open_loop(system, rate=1000, duration=1.0, warmup=0.5)
        assert result.injected == pytest.approx(1500, abs=15)


class TestPeak:
    @pytest.mark.slow
    def test_peak_found_between_bounds(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, start_rate=2000, duration=0.6, warmup=0.4, refine_steps=1
        )
        # The N=4 system sustains far more than 2K and is finite.
        assert 2000 < result.peak_pps < 1_000_000
        assert len(result.probes) >= 2

    @pytest.mark.slow
    def test_walk_down_from_oversaturated_start(self):
        factory = functools.partial(build_bft, 4, seed=3)
        result = find_peak(
            factory, start_rate=400_000, duration=0.6, warmup=0.4,
            refine_steps=1,
        )
        assert result.peak_pps < 400_000

    def test_probe_cap_bounds_search_cost(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, start_rate=2000, duration=0.4, warmup=0.3,
            refine_steps=3, max_probes=3, payment_budget=10_000,
        )
        assert len(result.probes) <= 3

    def test_reuse_state_matches_fresh_probe_shape(self):
        factory = functools.partial(build_astro2, 4, seed=3)
        result = find_peak(
            factory, start_rate=2000, duration=0.4, warmup=0.3,
            refine_steps=1, max_probes=4, payment_budget=10_000,
            reuse_state=True,
        )
        assert result.peak_pps > 2000
        assert len(result.probes) <= 4


class TestTimeline:
    def test_timeline_without_fault_is_steady(self):
        system = build_astro1(4, seed=4)
        result = run_timeline(
            system, num_clients=4, warmup=2.0, window=6.0, fault=None
        )
        assert len(result.series) == 6
        assert all(v > 0 for v in result.series)
        assert result.fault_at is None

    def test_timeline_with_crash_shows_drop(self):
        system = build_astro1(4, seed=4)
        result = run_timeline(
            system,
            num_clients=4,
            warmup=2.0,
            window=8.0,
            fault=lambda s, t: s.faults.crash(s.replicas[3].node_id, at=t),
            fault_offset=3.0,
        )
        assert result.before_fault() > result.after_fault() > 0

    def test_summary_helpers(self):
        from repro.bench.timeline import TimelineResult

        timeline = TimelineResult(
            series=[10.0, 10.0, 0.0, 0.0, 8.0, 8.0],
            window_start=0.0,
            fault_at=2.0,
            completed=36,
        )
        assert timeline.before_fault() == pytest.approx(10.0)
        assert timeline.min_after_fault() == 0.0
        assert timeline.after_fault(settle_gap=2) == pytest.approx(8.0)


class TestReport:
    def test_kilo_formatting(self):
        assert kilo(55_000) == "55.0K"
        assert kilo(1_500) == "1.50K"
        assert kilo(334) == "334"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        assert format_series([1.0, 2.5], precision=1) == "[1.0, 2.5]"


class TestScale:
    def test_default_scale_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert current_scale().name == "full"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_full_scale_matches_paper_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        scale = current_scale()
        assert scale.fig3_sizes == tuple(range(4, 101, 6))
        assert scale.robustness_small_n == 49
        assert scale.robustness_large_n == 100
        assert scale.table1_shard_size == 52
