"""Unit tests for the Fig. 3 wall-clock budget machinery
(repro.bench.budget) and its sweep-log wiring (parallel.execute's
``budgets=`` argument)."""

import json

import pytest

from repro.bench import budget
from repro.bench.budget import (
    check_report,
    fig3_anchor_budget_seconds,
    fig3_budgets,
    fig3_cell_budget_seconds,
    host_events_per_second,
    main,
)
from repro.bench.parallel import (
    ScenarioJob,
    execute,
    register_executor,
    reset_sweep_log,
    sweep_report,
)
from repro.bench.scale import _SCALES


@pytest.fixture(autouse=True)
def _pinned_eps(monkeypatch):
    """Pin the calibration so budget values are deterministic."""
    monkeypatch.setenv(budget.EPS_ENV, str(budget._REFERENCE_EPS))
    monkeypatch.delenv(budget.FACTOR_ENV, raising=False)


# ---------------------------------------------------------------------------
# Calibration + model
# ---------------------------------------------------------------------------


def test_eps_env_override(monkeypatch):
    monkeypatch.setenv(budget.EPS_ENV, "123456.0")
    assert host_events_per_second() == 123456.0
    monkeypatch.setenv(budget.EPS_ENV, "-1")
    with pytest.raises(ValueError):
        host_events_per_second()


def test_eps_measured_and_memoized(monkeypatch):
    monkeypatch.delenv(budget.EPS_ENV, raising=False)
    monkeypatch.delattr(host_events_per_second, "_cached", raising=False)
    first = host_events_per_second(sample_events=20_000)
    assert first > 0
    assert host_events_per_second() == first  # cached, not re-measured


def test_budgets_floor_and_growth():
    scale = _SCALES["quick"]
    for system in ("bft", "astro1", "astro2"):
        small = fig3_cell_budget_seconds(system, 4, scale)
        large = fig3_cell_budget_seconds(system, 100, scale)
        assert small >= budget.MIN_BUDGET_SECONDS
        # Quadratic (astro1/bft) or linear (astro2) per-batch event terms
        # must make large cells cost visibly more than small ones.
        assert large > small
    with pytest.raises(ValueError):
        fig3_cell_budget_seconds("zebra", 4, scale)


def test_anchor_budget_cheaper_than_cell():
    scale = _SCALES["full"]
    for system in ("bft", "astro1", "astro2"):
        assert fig3_anchor_budget_seconds(system, 100, scale) < (
            fig3_cell_budget_seconds(system, 100, scale)
        )


def test_budget_factor_scales(monkeypatch):
    scale = _SCALES["full"]
    base = fig3_cell_budget_seconds("astro2", 100, scale)
    monkeypatch.setenv(budget.FACTOR_ENV, "2.5")
    assert fig3_cell_budget_seconds("astro2", 100, scale) == (
        pytest.approx(2.5 * base)
    )
    monkeypatch.setenv(budget.FACTOR_ENV, "0")
    with pytest.raises(ValueError):
        fig3_cell_budget_seconds("astro2", 100, scale)


def test_fig3_budgets_covers_every_cell():
    scale = _SCALES["full"]
    sizes = scale.fig3_sizes
    systems = ("bft", "astro1", "astro2")
    budgets = fig3_budgets(sizes, systems, scale)
    assert set(budgets) == {(s, n) for s in systems for n in sizes}
    assert all(value >= budget.MIN_BUDGET_SECONDS for value in budgets.values())


# ---------------------------------------------------------------------------
# Sweep-log wiring
# ---------------------------------------------------------------------------


@register_executor("_budget_test_noop")
def _noop_executor(seed=0, **params):
    return params.get("value")


def test_execute_records_budget_seconds():
    reset_sweep_log()
    try:
        units = [
            ScenarioJob(kind="_budget_test_noop", params=dict(value=index),
                        tag=("astro2", index))
            for index in (4, 10)
        ]
        results = execute(
            units, jobs=1, label="budget-test",
            budgets={("astro2", 4): 12.5},
        )
        assert results == [4, 10]
        cells = sweep_report()[-1]["cells"]
        assert cells[0]["budget_seconds"] == 12.5
        assert "budget_seconds" not in cells[1]  # no budget declared
    finally:
        reset_sweep_log()


# ---------------------------------------------------------------------------
# Checker
# ---------------------------------------------------------------------------


def _report(cells):
    return {"sweeps": [{"label": "fig3[full]", "cells": cells}]}


def test_check_report_passes_within_budget():
    violations, budgeted = check_report(_report([
        {"tag": "('astro2', 4)", "seconds": 3.0, "budget_seconds": 10.0},
        {"tag": "('astro2', 10)", "seconds": 5.0},  # unbudgeted: ignored
    ]))
    assert violations == []
    assert budgeted == 1


def test_check_report_flags_violations():
    violations, budgeted = check_report(_report([
        {"tag": "('bft', 4)", "seconds": 25.0, "budget_seconds": 10.0},
        {"tag": "('bft', 10)", "seconds": 9.0, "budget_seconds": 10.0},
    ]))
    assert budgeted == 2
    assert len(violations) == 1
    assert "('bft', 4)" in violations[0]
    assert "2.50x" in violations[0]


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_cli_pass_violation_and_empty(tmp_path, capsys):
    good = _write(tmp_path, "good.json", _report(
        [{"tag": "t", "seconds": 1.0, "budget_seconds": 10.0}]
    ))
    bad = _write(tmp_path, "bad.json", _report(
        [{"tag": "t", "seconds": 99.0, "budget_seconds": 10.0}]
    ))
    empty = _write(tmp_path, "empty.json", _report(
        [{"tag": "t", "seconds": 1.0}]
    ))
    assert main([good]) == 0
    assert main([bad]) == 1
    assert "exceeds budget" in capsys.readouterr().out
    assert main([empty]) == 1
    assert main([empty, "--allow-empty"]) == 0


def test_cli_unwraps_merged_perf_report(tmp_path):
    merged = _write(tmp_path, "perf.json", {
        "wall_seconds": 1.0,
        "sweeps": _report(
            [{"tag": "t", "seconds": 1.0, "budget_seconds": 10.0}]
        ),
    })
    assert main([merged]) == 0
