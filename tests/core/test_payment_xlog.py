"""Unit tests for Payment, ExclusiveLog, AccountState."""

import pytest
from hypothesis import given, strategies as st

from repro.core.accounts import AccountState
from repro.core.payment import Payment
from repro.core.xlog import ExclusiveLog, XlogViolation


class TestPayment:
    def test_identifier(self):
        payment = Payment("alice", 3, "bob", 10)
        assert payment.identifier == ("alice", 3)

    def test_invalid_seq_rejected(self):
        with pytest.raises(ValueError):
            Payment("alice", 0, "bob", 10)

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Payment("alice", 1, "bob", -1)

    def test_equality_ignores_submitted_at(self):
        a = Payment("alice", 1, "bob", 10, submitted_at=1.0)
        b = Payment("alice", 1, "bob", 10, submitted_at=9.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_canonical_excludes_measurement_metadata(self):
        a = Payment("alice", 1, "bob", 10, submitted_at=1.0)
        b = Payment("alice", 1, "bob", 10, submitted_at=2.0)
        assert a.canonical() == b.canonical()

    def test_core_canonical_excludes_deps(self):
        plain = Payment("alice", 1, "bob", 10)
        with_dep = Payment("alice", 1, "bob", 10, deps=("marker",))
        assert plain.core_canonical() == with_dep.core_canonical()
        assert plain.canonical() != with_dep.canonical()

    def test_wire_bytes_grows_with_deps(self):
        class FakeCert:
            wire_bytes = 112

        plain = Payment("alice", 1, "bob", 10)
        heavy = Payment("alice", 1, "bob", 10, deps=(FakeCert(), FakeCert()))
        assert plain.wire_bytes == 100
        assert heavy.wire_bytes == 100 + 224


class TestExclusiveLog:
    def test_append_in_order(self):
        log = ExclusiveLog("alice")
        log.append(Payment("alice", 1, "bob", 1))
        log.append(Payment("alice", 2, "carol", 2))
        assert log.last_seq == 2
        assert [p.seq for p in log] == [1, 2]

    def test_exclusivity_enforced(self):
        log = ExclusiveLog("alice")
        with pytest.raises(XlogViolation):
            log.append(Payment("bob", 1, "alice", 1))

    def test_gap_rejected(self):
        log = ExclusiveLog("alice")
        with pytest.raises(XlogViolation):
            log.append(Payment("alice", 2, "bob", 1))

    def test_duplicate_seq_rejected(self):
        log = ExclusiveLog("alice")
        log.append(Payment("alice", 1, "bob", 1))
        with pytest.raises(XlogViolation):
            log.append(Payment("alice", 1, "carol", 1))

    def test_prefix_relation(self):
        short = ExclusiveLog("alice")
        long = ExclusiveLog("alice")
        for log in (short, long):
            log.append(Payment("alice", 1, "bob", 1))
        long.append(Payment("alice", 2, "bob", 2))
        assert short.is_prefix_of(long)
        assert not long.is_prefix_of(short)
        assert short.is_prefix_of(short)

    def test_prefix_requires_same_owner(self):
        a = ExclusiveLog("alice")
        b = ExclusiveLog("bob")
        assert not a.is_prefix_of(b)

    def test_diverged_logs_not_prefix(self):
        a = ExclusiveLog("alice")
        b = ExclusiveLog("alice")
        a.append(Payment("alice", 1, "bob", 1))
        b.append(Payment("alice", 1, "carol", 1))
        assert not a.is_prefix_of(b)

    def test_entries_returns_immutable_snapshot(self):
        log = ExclusiveLog("alice")
        log.append(Payment("alice", 1, "bob", 1))
        entries = log.entries()
        assert isinstance(entries, tuple)
        assert log[0] == entries[0]

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30))
    def test_append_only_property(self, amounts):
        log = ExclusiveLog("c")
        for index, amount in enumerate(amounts, start=1):
            log.append(Payment("c", index, "d", amount))
        assert len(log) == len(amounts)
        assert [p.amount for p in log] == amounts


class TestAccountState:
    def test_genesis_and_accessors(self):
        state = AccountState({"a": 100, "b": 0})
        assert state.balance("a") == 100
        assert state.seqnum("a") == 0
        assert state.knows("a")
        assert not state.knows("zzz")
        assert state.balance("zzz") == 0

    def test_negative_genesis_rejected(self):
        with pytest.raises(ValueError):
            AccountState({"a": -5})

    def test_settle_full_moves_value(self):
        state = AccountState({"a": 100, "b": 0})
        state.settle_full(Payment("a", 1, "b", 30))
        assert state.balance("a") == 70
        assert state.balance("b") == 30
        assert state.seqnum("a") == 1
        assert state.xlog("a").last_seq == 1
        assert state.total_balance() == 100

    def test_settle_spend_only_defers_deposit(self):
        state = AccountState({"a": 100, "b": 0})
        state.settle_spend_only(Payment("a", 1, "b", 30))
        assert state.balance("a") == 70
        assert state.balance("b") == 0  # credited via dependencies later
        assert state.total_balance() == 70

    def test_credit(self):
        state = AccountState({"a": 0})
        state.credit("a", 25)
        state.credit("new-client", 5)
        assert state.balance("a") == 25
        assert state.balance("new-client") == 5

    def test_add_client(self):
        state = AccountState({})
        state.add_client("x", balance=7)
        assert state.balance("x") == 7
        with pytest.raises(ValueError):
            state.add_client("x")

    def test_snapshot_is_deterministic(self):
        a = AccountState({"x": 1, "y": 2})
        b = AccountState({"y": 2, "x": 1})
        assert a.snapshot() == b.snapshot()

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.sampled_from(["a", "b", "c"]),
                      st.integers(min_value=1, max_value=50)),
            max_size=30,
        )
    )
    def test_conservation_under_settles(self, transfers):
        state = AccountState({"a": 1000, "b": 1000, "c": 1000})
        seqs = {"a": 0, "b": 0, "c": 0}
        for spender, beneficiary, amount in transfers:
            if spender == beneficiary or state.balance(spender) < amount:
                continue
            seqs[spender] += 1
            state.settle_full(Payment(spender, seqs[spender], beneficiary, amount))
        assert state.total_balance() == 3000
        assert all(balance >= 0 for balance in state.balances.values())
