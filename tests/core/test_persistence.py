"""Durable replica state: WAL framing, snapshots, replay, catch-up.

Each test drives the persistence layer the way the live cluster does —
including the ugly parts: torn tails from a SIGKILL landing mid-write,
snapshot corruption, and fingerprint divergence during replay.  The
full-system round trips bind a store to a *simulated* replica (the
protocol objects are transport-agnostic), run a workload, then rebuild
a fresh system and recover the replica purely from disk.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench.systems import SYSTEM_BUILDERS, client_ids_of
from repro.core.persistence import (
    CatchUpRequest,
    ReplicaStore,
    WalCorruption,
    WriteAheadLog,
    serve_catch_up,
    state_fingerprint,
)
from repro.sim.shard import state_fingerprints


# ---------------------------------------------------------------------------
# WAL: framing round trip, torn tails, truncation on reopen
# ---------------------------------------------------------------------------
def test_wal_roundtrip(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "test.wal"))
    wal.open_for_append()
    records = [("launch", 1, "batch-a"), ("deliver", 2, 1, "batch-b")]
    for record in records:
        wal.append(record)
    wal.close()

    scanned, valid = wal.scan()
    assert scanned == records
    assert valid > 0
    assert list(wal.iter_records()) == records


def test_wal_tolerates_torn_tail_and_truncates_on_reopen(tmp_path):
    path = tmp_path / "torn.wal"
    wal = WriteAheadLog(str(path))
    wal.open_for_append()
    wal.append(("deliver", 0, 1, "ok"))
    wal.close()
    intact = path.read_bytes()

    # A SIGKILL mid-write leaves a complete header but truncated body.
    with open(path, "ab") as fh:
        fh.write(b"\x00\x00\x01\x00" + b"half a record")
    scanned, valid = wal.scan()
    assert scanned == [("deliver", 0, 1, "ok")]
    assert valid == len(intact)

    # Reopening for append truncates the torn tail before new records.
    count = wal.open_for_append()
    assert count == 1
    wal.append(("deliver", 0, 2, "next"))
    wal.close()
    assert list(wal.iter_records()) == [
        ("deliver", 0, 1, "ok"),
        ("deliver", 0, 2, "next"),
    ]


def test_wal_stops_at_corrupt_header(tmp_path):
    path = tmp_path / "corrupt.wal"
    wal = WriteAheadLog(str(path))
    wal.open_for_append()
    wal.append(("a",))
    wal.close()
    with open(path, "ab") as fh:
        fh.write(b"\xff\xff\xff\xff" + b"garbage beyond a huge header")
    scanned, _ = wal.scan()
    assert scanned == [("a",)]


# ---------------------------------------------------------------------------
# ReplicaStore: recording gate, snapshot atomicity, corruption
# ---------------------------------------------------------------------------
def test_store_records_only_after_finish_recovery(tmp_path):
    store = ReplicaStore(str(tmp_path), 0)
    store.record(("deliver", 0, 1, "ignored"))  # recovery in progress
    assert store.recovery_records() == []
    store.finish_recovery()
    store.record(("deliver", 0, 1, "kept"))
    store.close()
    assert ReplicaStore(str(tmp_path), 0).recovery_records() == [
        ("deliver", 0, 1, "kept")
    ]


def test_store_snapshot_roundtrip_and_wal_count_stamp(tmp_path):
    store = ReplicaStore(str(tmp_path), 3, snapshot_interval=2)
    store.finish_recovery()
    assert store.load_snapshot() is None
    store.record(("deliver", 0, 1, "x"))
    store.record(("deliver", 0, 2, "y"))
    assert store.snapshot_due()
    store.write_snapshot({"fingerprint": "abc"})
    assert not store.snapshot_due()
    loaded = store.load_snapshot()
    assert loaded["fingerprint"] == "abc"
    assert loaded["wal_count"] == 2  # replay resumes past both records
    store.close()


def test_store_corrupt_snapshot_is_a_hard_error(tmp_path):
    store = ReplicaStore(str(tmp_path), 1)
    with open(store.snapshot_path, "wb") as fh:
        fh.write(b"not a pickle")
    with pytest.raises(WalCorruption):
        store.load_snapshot()


def test_fingerprint_intervals(tmp_path):
    store = ReplicaStore(str(tmp_path), 0, fingerprint_interval=3)
    store.finish_recovery()
    for seq in range(1, 4):
        store.record(("deliver", 0, seq, "p"))
    assert store.fingerprint_due()
    store.record_fingerprint("f" * 64)
    assert not store.fingerprint_due()
    store.close()


# ---------------------------------------------------------------------------
# Fingerprint formula parity with the shard-determinism witness
# ---------------------------------------------------------------------------
def test_state_fingerprint_matches_shard_formula():
    system = SYSTEM_BUILDERS["astro1"](4, seed=9)
    clients = client_ids_of(system)
    for index in range(12):
        system.submit(clients[index % 4], clients[(index + 1) % 4], 5)
    system.settle_all()
    expected = state_fingerprints(system)
    for replica in system.replicas:
        assert state_fingerprint(replica.state) == expected[replica.node_id]


# ---------------------------------------------------------------------------
# Account-state captures: format-2 array encoding + legacy format-1
# ---------------------------------------------------------------------------
def _populated_state():
    from repro.core.accounts import AccountState
    from repro.core.payment import Payment

    state = AccountState({f"client-{i}": 100 for i in range(6)})
    state.settle_full(Payment("client-2", 1, "client-0", 7))
    state.settle_full(Payment("client-2", 2, "client-4", 3))
    state.add_client("late", 40)
    state.credit("client-1", 11)
    state.settle_full(Payment("late", 1, "client-5", 5))
    return state


def test_array_snapshot_roundtrip_format2():
    from repro.core.accounts import AccountState
    from repro.core.persistence import (
        restore_account_state,
        snapshot_account_state,
    )

    state = _populated_state()
    payload = pickle.loads(pickle.dumps(snapshot_account_state(state)))
    assert payload["format"] == 2
    # Genesis accounts ship as raw slab bytes, not per-client entries.
    assert isinstance(payload["balances"], bytes)
    assert len(payload["balances"]) == 8 * payload["genesis_len"]

    target = AccountState({f"client-{i}": 100 for i in range(6)})
    restore_account_state(target, payload)
    assert target.snapshot() == state.snapshot()
    assert state_fingerprint(target) == state_fingerprint(state)
    assert list(target.xlog("client-2")) == list(state.xlog("client-2"))
    assert target.balance("late") == state.balance("late")


def test_array_snapshot_rejects_mismatched_genesis():
    from repro.core.accounts import AccountState
    from repro.core.persistence import (
        restore_account_state,
        snapshot_account_state,
    )

    payload = snapshot_account_state(_populated_state())
    other = AccountState({f"other-{i}": 100 for i in range(6)})
    with pytest.raises(WalCorruption, match="genesis"):
        restore_account_state(other, payload)


def test_legacy_dict_snapshot_restores_onto_array_state():
    from repro.core.accounts import AccountState, DictAccountState
    from repro.core.payment import Payment
    from repro.core.persistence import restore_account_state

    legacy = DictAccountState({"a": 50, "b": 50})
    legacy.settle_full(Payment("a", 1, "b", 9))
    # The pre-refactor capture shape: plain dicts, as pickled by old WALs.
    payload = {
        "balances": dict(legacy.balances),
        "seqnums": dict(legacy.seqnums),
        "xlogs": {
            owner: list(log._entries) for owner, log in legacy.xlogs.items()
        },
    }
    target = AccountState({"a": 50, "b": 50})
    restore_account_state(target, payload)
    assert target.snapshot() == legacy.snapshot()
    assert list(target.xlog("a")) == list(legacy.xlog("a"))


# ---------------------------------------------------------------------------
# Full replay round trips: run → crash (drop everything) → rebuild
# ---------------------------------------------------------------------------
def _run_workload(system, payments):
    clients = client_ids_of(system)
    for index in range(payments):
        system.submit(clients[index % len(clients)],
                      clients[(index + 1) % len(clients)], 1)
    system.settle_all()


def _bind_all(system, root, **kwargs):
    reports = {}
    for replica in system.replicas:
        store = ReplicaStore(str(root), replica.node_id, **kwargs)
        reports[replica.node_id] = replica.bind_persistence(store)
    return reports


@pytest.mark.parametrize("name", ["astro1", "astro2"])
def test_replica_replays_to_precrash_fingerprint(name, tmp_path):
    system = SYSTEM_BUILDERS[name](4, seed=5)
    fresh = _bind_all(system, tmp_path, snapshot_interval=4,
                      fingerprint_interval=2)
    assert all(not r.had_snapshot and r.replayed == 0 for r in fresh.values())
    _run_workload(system, 24)
    before = {
        r.node_id: state_fingerprint(r.state) for r in system.replicas
    }
    settled = {r.node_id: r.settled_count for r in system.replicas}
    for replica in system.replicas:  # crash: drop all in-memory state
        replica._wal.close()

    rebuilt = SYSTEM_BUILDERS[name](4, seed=5)
    reports = _bind_all(rebuilt, tmp_path, snapshot_interval=4,
                        fingerprint_interval=2)
    for replica in rebuilt.replicas:
        report = reports[replica.node_id]
        assert report.fingerprint == before[replica.node_id]
        assert state_fingerprint(replica.state) == before[replica.node_id]
        assert replica.settled_count == settled[replica.node_id]
        # Snapshots actually kicked in: not everything was replayed.
        assert report.had_snapshot


@pytest.mark.parametrize("name", ["astro1", "astro2"])
def test_replay_without_snapshot_covers_whole_log(name, tmp_path):
    system = SYSTEM_BUILDERS[name](4, seed=6)
    _bind_all(system, tmp_path, snapshot_interval=10_000)
    _run_workload(system, 12)
    before = state_fingerprint(system.replicas[0].state)
    system.replicas[0]._wal.close()

    rebuilt = SYSTEM_BUILDERS[name](4, seed=6)
    replica = rebuilt.replicas[0]
    report = replica.bind_persistence(
        ReplicaStore(str(tmp_path), replica.node_id)
    )
    assert not report.had_snapshot
    assert report.replayed > 0
    assert state_fingerprint(replica.state) == before


def test_replay_detects_fingerprint_divergence(tmp_path):
    system = SYSTEM_BUILDERS["astro1"](4, seed=7)
    _bind_all(system, tmp_path, snapshot_interval=10_000,
              fingerprint_interval=2)
    _run_workload(system, 12)
    node = system.replicas[0].node_id
    system.replicas[0]._wal.close()

    # Tamper with one delivered batch: replay must land on a different
    # state than the recorded fingerprint and refuse to come up.
    store = ReplicaStore(str(tmp_path), node)
    records = store.recovery_records()
    mutated = []
    poisoned = False
    for record in records:
        if not poisoned and record[0] == "deliver":
            batch = record[3]
            if batch.items:
                payment = batch.items[0]
                payment.amount += 1  # double the damage, same identifier
                poisoned = True
        mutated.append(record)
    assert poisoned
    store.wal.open_for_append()
    store.wal._file.truncate(0)
    store.wal._file.seek(0)
    store.wal.count = 0
    for record in mutated:
        store.wal.append(record)
    store.close()

    rebuilt = SYSTEM_BUILDERS["astro1"](4, seed=7)
    replica = rebuilt.replicas[0]
    with pytest.raises(WalCorruption):
        replica.bind_persistence(ReplicaStore(str(tmp_path), node))


def test_bft_exec_replay(tmp_path):
    system = SYSTEM_BUILDERS["bft"](4, seed=8)
    for replica in system.replicas:
        replica.bind_persistence(ReplicaStore(str(tmp_path),
                                              replica.node_id))
    _run_workload(system, 12)
    before = {
        r.node_id: state_fingerprint(r.ledger.state)
        for r in system.replicas
    }
    executed = {r.node_id: r.executed_count for r in system.replicas}
    for replica in system.replicas:
        replica._wal.close()

    rebuilt = SYSTEM_BUILDERS["bft"](4, seed=8)
    for replica in rebuilt.replicas:
        report = replica.bind_persistence(
            ReplicaStore(str(tmp_path), replica.node_id)
        )
        assert report.fingerprint == before[replica.node_id]
        assert replica.executed_count == executed[replica.node_id]


# ---------------------------------------------------------------------------
# Catch-up serving
# ---------------------------------------------------------------------------
def test_serve_catch_up_filters_and_bounds(tmp_path):
    store = ReplicaStore(str(tmp_path), 0)
    store.finish_recovery()
    for origin in (0, 1):
        for seq in range(1, 6):
            store.record(("deliver", origin, seq, f"b{origin}-{seq}"))
    store.record(("fp", "deadbeef"))  # non-deliver records are skipped

    reply = serve_catch_up(
        store, CatchUpRequest(7, {0: 3}, ((1, 2),), max_batches=100)
    )
    assert reply.tag == 7
    assert reply.complete
    served = {(origin, seq) for origin, seq, _ in reply.batches}
    assert served == {(0, 4), (0, 5), (1, 1), (1, 3), (1, 4), (1, 5)}

    bounded = serve_catch_up(
        store, CatchUpRequest(8, {}, (), max_batches=3)
    )
    assert not bounded.complete
    assert len(bounded.batches) == 3


def test_catch_up_messages_pickle_roundtrip():
    request = CatchUpRequest(3, {0: 2}, ((1, 5),), max_batches=9)
    clone = pickle.loads(pickle.dumps(request))
    assert (clone.tag, clone.frontier, clone.extra, clone.max_batches) == (
        3, {0: 2}, ((1, 5),), 9
    )
