"""Unit tests for CREDIT messages and dependency certificates (§IV-A)."""

import pytest

from repro.core.dependencies import (
    CreditMessage,
    DependencyCertificate,
    DependencyCollector,
    certificate_wire_bytes,
    credit_content,
    subbatch_digest_of,
    verify_certificate,
)
from repro.core.directory import Directory
from repro.core.payment import Payment
from repro.crypto import Keychain, replica_owner, sign


@pytest.fixture
def setup(keychain):
    directory = Directory()
    directory.register_shard(0, (0, 1, 2, 3))
    directory.register_shard(1, (4, 5, 6, 7))
    keys = {i: keychain.generate(replica_owner(i)) for i in range(8)}
    directory.register_client("alice", 0)
    directory.register_client("bob", 4)
    return directory, keys


def _certificate(keys, payments, shard=0, signers=(0, 1)):
    digest_value = subbatch_digest_of(payments)
    content = credit_content(shard, digest_value)
    signatures = tuple(sign(keys[i], content) for i in signers)
    return DependencyCertificate(payments[0], shard, tuple(payments), signatures)


class TestCreditMessage:
    def test_create_signs_subbatch(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[0], 0, payments)
        assert message.subbatch_digest == subbatch_digest_of(payments)
        assert message.size > 100

    def test_explicit_digest_must_match_content(self, setup):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[0], 0, payments)
        assert message.subbatch_digest == subbatch_digest_of(message.payments)


class TestCertificateVerification:
    def test_valid_certificate(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        cert = _certificate(keys, payments)
        assert verify_certificate(cert, directory, keychain)

    def test_too_few_signers(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        cert = _certificate(keys, payments, signers=(0,))
        assert not verify_certificate(cert, directory, keychain)

    def test_duplicate_signers_do_not_count_twice(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        digest_value = subbatch_digest_of(payments)
        content = credit_content(0, digest_value)
        signature = sign(keys[0], content)
        cert = DependencyCertificate(payments[0], 0, payments, (signature, signature))
        assert not verify_certificate(cert, directory, keychain)

    def test_signer_outside_shard_rejected(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        # Signers 4, 5 belong to shard 1, not the claimed shard 0.
        cert = _certificate(keys, payments, shard=0, signers=(4, 5))
        assert not verify_certificate(cert, directory, keychain)

    def test_client_signature_rejected(self, setup, keychain):
        directory, keys = setup
        client_key = keychain.generate(("client", "mallory"))
        payments = (Payment("alice", 1, "bob", 10),)
        digest_value = subbatch_digest_of(payments)
        content = credit_content(0, digest_value)
        signatures = (sign(client_key, content), sign(keys[0], content))
        cert = DependencyCertificate(payments[0], 0, payments, signatures)
        assert not verify_certificate(cert, directory, keychain)

    def test_payment_not_in_subbatch_rejected(self, setup, keychain):
        directory, keys = setup
        subbatch = (Payment("alice", 1, "bob", 10),)
        outsider = Payment("alice", 2, "bob", 999)
        digest_value = subbatch_digest_of(subbatch)
        content = credit_content(0, digest_value)
        signatures = tuple(sign(keys[i], content) for i in (0, 1))
        cert = DependencyCertificate(outsider, 0, subbatch, signatures)
        assert not verify_certificate(cert, directory, keychain)

    def test_digest_content_mismatch_rejected(self, setup, keychain):
        directory, keys = setup
        subbatch = (Payment("alice", 1, "bob", 10),)
        other = (Payment("alice", 1, "bob", 11),)
        wrong_digest = subbatch_digest_of(other)
        content = credit_content(0, wrong_digest)
        signatures = tuple(sign(keys[i], content) for i in (0, 1))
        cert = DependencyCertificate(
            subbatch[0], 0, subbatch, signatures, subbatch_digest=wrong_digest
        )
        assert not verify_certificate(cert, directory, keychain)

    def test_unknown_shard_rejected(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        digest_value = subbatch_digest_of(payments)
        content = credit_content(9, digest_value)
        signatures = tuple(sign(keys[i], content) for i in (0, 1))
        cert = DependencyCertificate(payments[0], 9, payments, signatures)
        assert not verify_certificate(cert, directory, keychain)

    def test_wire_bytes(self):
        assert certificate_wire_bytes(1) == 40 + 2 * 72


class TestDependencyCollector:
    def test_f_plus_one_credits_mint_certificates(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        first = collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        assert first == []
        second = collector.add_credit(1, CreditMessage.create(keys[1], 0, payments))
        assert len(second) == 1
        cert = second[0]
        assert cert.beneficiary == "bob"
        assert cert.amount == 10
        assert verify_certificate(cert, directory, keychain)

    def test_additional_credits_do_not_remint(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        collector.add_credit(1, CreditMessage.create(keys[1], 0, payments))
        third = collector.add_credit(2, CreditMessage.create(keys[2], 0, payments))
        assert third == []

    def test_duplicate_sender_does_not_advance(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[0], 0, payments)
        assert collector.add_credit(0, message) == []
        assert collector.add_credit(0, message) == []

    def test_invalid_signature_ignored(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        # Replica 1 relays a message signed by replica 0: signer mismatch.
        message = CreditMessage.create(keys[0], 0, payments)
        assert collector.add_credit(1, message) == []

    def test_sender_outside_shard_ignored(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[4], 0, payments)
        assert collector.add_credit(4, message) == []

    def test_only_my_clients_get_certificates(self, setup, keychain):
        directory, keys = setup
        directory.register_client("carol", 5)  # another rep in shard 1
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (
            Payment("alice", 1, "bob", 10),
            Payment("alice", 2, "carol", 7),
        )
        collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        minted = collector.add_credit(1, CreditMessage.create(keys[1], 0, payments))
        assert [cert.beneficiary for cert in minted] == ["bob"]
