"""Unit tests for CREDIT messages and dependency certificates (§IV-A)."""

import pytest

from repro.core.dependencies import (
    CreditMessage,
    DependencyCertificate,
    DependencyCollector,
    certificate_wire_bytes,
    credit_content,
    subbatch_digest_of,
    verify_certificate,
)
from repro.core.directory import Directory
from repro.core.payment import Payment
from repro.crypto import replica_owner, sign


@pytest.fixture
def setup(keychain):
    directory = Directory()
    directory.register_shard(0, (0, 1, 2, 3))
    directory.register_shard(1, (4, 5, 6, 7))
    keys = {i: keychain.generate(replica_owner(i)) for i in range(8)}
    directory.register_client("alice", 0)
    directory.register_client("bob", 4)
    return directory, keys


def _certificate(keys, payments, shard=0, signers=(0, 1)):
    digest_value = subbatch_digest_of(payments)
    content = credit_content(shard, digest_value)
    signatures = tuple(sign(keys[i], content) for i in signers)
    return DependencyCertificate(payments[0], shard, tuple(payments), signatures)


class TestCreditMessage:
    def test_create_signs_subbatch(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[0], 0, payments)
        assert message.subbatch_digest == subbatch_digest_of(payments)
        assert message.size > 100

    def test_explicit_digest_must_match_content(self, setup):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[0], 0, payments)
        assert message.subbatch_digest == subbatch_digest_of(message.payments)


class TestCertificateVerification:
    def test_valid_certificate(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        cert = _certificate(keys, payments)
        assert verify_certificate(cert, directory, keychain)

    def test_too_few_signers(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        cert = _certificate(keys, payments, signers=(0,))
        assert not verify_certificate(cert, directory, keychain)

    def test_duplicate_signers_do_not_count_twice(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        digest_value = subbatch_digest_of(payments)
        content = credit_content(0, digest_value)
        signature = sign(keys[0], content)
        cert = DependencyCertificate(payments[0], 0, payments, (signature, signature))
        assert not verify_certificate(cert, directory, keychain)

    def test_signer_outside_shard_rejected(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        # Signers 4, 5 belong to shard 1, not the claimed shard 0.
        cert = _certificate(keys, payments, shard=0, signers=(4, 5))
        assert not verify_certificate(cert, directory, keychain)

    def test_client_signature_rejected(self, setup, keychain):
        directory, keys = setup
        client_key = keychain.generate(("client", "mallory"))
        payments = (Payment("alice", 1, "bob", 10),)
        digest_value = subbatch_digest_of(payments)
        content = credit_content(0, digest_value)
        signatures = (sign(client_key, content), sign(keys[0], content))
        cert = DependencyCertificate(payments[0], 0, payments, signatures)
        assert not verify_certificate(cert, directory, keychain)

    def test_payment_not_in_subbatch_rejected(self, setup, keychain):
        directory, keys = setup
        subbatch = (Payment("alice", 1, "bob", 10),)
        outsider = Payment("alice", 2, "bob", 999)
        digest_value = subbatch_digest_of(subbatch)
        content = credit_content(0, digest_value)
        signatures = tuple(sign(keys[i], content) for i in (0, 1))
        cert = DependencyCertificate(outsider, 0, subbatch, signatures)
        assert not verify_certificate(cert, directory, keychain)

    def test_digest_content_mismatch_rejected(self, setup, keychain):
        directory, keys = setup
        subbatch = (Payment("alice", 1, "bob", 10),)
        other = (Payment("alice", 1, "bob", 11),)
        wrong_digest = subbatch_digest_of(other)
        content = credit_content(0, wrong_digest)
        signatures = tuple(sign(keys[i], content) for i in (0, 1))
        cert = DependencyCertificate(
            subbatch[0], 0, subbatch, signatures, subbatch_digest=wrong_digest
        )
        assert not verify_certificate(cert, directory, keychain)

    def test_more_than_f_plus_one_signatures_rejected(self, setup, keychain):
        """CPU-occupancy bound: a Byzantine representative padding a
        certificate with extra (even valid) signatures must be rejected
        by the O(1) length check, not verified signature by signature."""
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        cert = _certificate(keys, payments, signers=(0, 1, 2))
        assert not verify_certificate(cert, directory, keychain)
        # The honest size still verifies.
        assert verify_certificate(
            _certificate(keys, payments, signers=(0, 1)), directory, keychain
        )

    def test_empty_signature_tuple_rejected(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        cert = DependencyCertificate(payments[0], 0, payments, ())
        assert not verify_certificate(cert, directory, keychain)

    def test_unknown_shard_rejected(self, setup, keychain):
        directory, keys = setup
        payments = (Payment("alice", 1, "bob", 10),)
        digest_value = subbatch_digest_of(payments)
        content = credit_content(9, digest_value)
        signatures = tuple(sign(keys[i], content) for i in (0, 1))
        cert = DependencyCertificate(payments[0], 9, payments, signatures)
        assert not verify_certificate(cert, directory, keychain)

    def test_wire_bytes(self):
        assert certificate_wire_bytes(1) == 40 + 2 * 72


class TestDependencyCollector:
    def test_f_plus_one_credits_mint_certificates(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        first = collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        assert first == []
        second = collector.add_credit(1, CreditMessage.create(keys[1], 0, payments))
        assert len(second) == 1
        cert = second[0]
        assert cert.beneficiary == "bob"
        assert cert.amount == 10
        assert verify_certificate(cert, directory, keychain)

    def test_additional_credits_do_not_remint(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        collector.add_credit(1, CreditMessage.create(keys[1], 0, payments))
        third = collector.add_credit(2, CreditMessage.create(keys[2], 0, payments))
        assert third == []

    def test_duplicate_sender_does_not_advance(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[0], 0, payments)
        assert collector.add_credit(0, message) == []
        assert collector.add_credit(0, message) == []

    def test_invalid_signature_ignored(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        # Replica 1 relays a message signed by replica 0: signer mismatch.
        message = CreditMessage.create(keys[0], 0, payments)
        assert collector.add_credit(1, message) == []

    def test_sender_outside_shard_ignored(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        message = CreditMessage.create(keys[4], 0, payments)
        assert collector.add_credit(4, message) == []

    def test_forged_payload_credit_rejected(self, setup, keychain):
        """Regression: the signature only covers the *claimed* digest, so
        a Byzantine settler can validly sign digest A while shipping
        payments B.  An unvalidated first arrival used to poison the
        ``_payments`` buffer (setdefault keeps the first copy), minting
        certificates that ``verify_certificate`` rejects at settle — after
        ``_apply_credit`` had already inflated the projected balance."""
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        real = (Payment("alice", 1, "bob", 10),)
        forged = (Payment("alice", 1, "bob", 10_000),)
        claimed_digest = subbatch_digest_of(real)
        signature = sign(keys[0], credit_content(0, claimed_digest))
        poisoned = CreditMessage(0, forged, signature,
                                 subbatch_digest=claimed_digest)
        # The forged first arrival is rejected outright...
        assert collector.add_credit(0, poisoned) == []
        assert collector.pending_subbatches == 0
        # ...so the honest flow still mints a *valid* certificate.
        collector.add_credit(0, CreditMessage.create(keys[0], 0, real))
        minted = collector.add_credit(1, CreditMessage.create(keys[1], 0, real))
        assert len(minted) == 1
        assert minted[0].amount == 10
        assert verify_certificate(minted[0], directory, keychain)

    def test_only_my_clients_get_certificates(self, setup, keychain):
        directory, keys = setup
        directory.register_client("carol", 5)  # another rep in shard 1
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (
            Payment("alice", 1, "bob", 10),
            Payment("alice", 2, "carol", 7),
        )
        collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        minted = collector.add_credit(1, CreditMessage.create(keys[1], 0, payments))
        assert [cert.beneficiary for cert in minted] == ["bob"]


class TestCollectorCompaction:
    """GC bounds: sub-batches stranded below f+1 (crashed settlers,
    §VI-D) and the certified-key dedup memory must not grow forever."""

    def _stranded(self, keys, index):
        """A sub-batch that only ever receives one CREDIT."""
        return (Payment("alice", index, "bob", 1),)

    def test_pending_subbatches_bounded(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(
            directory, keychain, my_node=4, max_pending=8
        )
        for index in range(1, 101):
            payments = self._stranded(keys, index)
            collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        assert collector.pending_subbatches <= 8
        assert collector.evicted_pending == 100 - 8
        # _payments stays in lockstep with _partial.
        assert len(collector._payments) == collector.pending_subbatches

    def test_eviction_is_oldest_first_and_survivors_still_certify(
        self, setup, keychain
    ):
        directory, keys = setup
        collector = DependencyCollector(
            directory, keychain, my_node=4, max_pending=2
        )
        old = self._stranded(keys, 1)
        collector.add_credit(0, CreditMessage.create(keys[0], 0, old))
        newer = [self._stranded(keys, i) for i in (2, 3)]
        for payments in newer:
            collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
        # 'old' was evicted; the newest survivor still completes.
        minted = collector.add_credit(
            1, CreditMessage.create(keys[1], 0, newer[-1])
        )
        assert len(minted) == 1
        # A straggler CREDIT for the evicted sub-batch restarts collection
        # from zero instead of erroring.
        assert collector.add_credit(1, CreditMessage.create(keys[1], 0, old)) == []
        assert collector.add_credit(0, CreditMessage.create(keys[0], 0, old)) != []

    def test_certified_dedup_memory_bounded(self, setup, keychain):
        directory, keys = setup
        collector = DependencyCollector(
            directory, keychain, my_node=4, max_certified=16
        )
        for index in range(1, 51):
            payments = self._stranded(keys, index)
            collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
            minted = collector.add_credit(
                1, CreditMessage.create(keys[1], 0, payments)
            )
            assert len(minted) == 1
        assert collector.certified_count <= 16
        assert collector.evicted_certified == 50 - 16
        # Recent certifications still dedup straggler CREDITs.
        recent = self._stranded(keys, 50)
        assert collector.add_credit(
            2, CreditMessage.create(keys[2], 0, recent)
        ) == []

    def test_certified_entry_retires_after_all_settlers_report(
        self, setup, keychain
    ):
        """Dedup state is transient: once all N settlers' CREDITs arrived
        the entry drops — replay-safely, since a re-mint would need f+1
        distinct signers and at most f Byzantine replicas can resend."""
        directory, keys = setup
        collector = DependencyCollector(directory, keychain, my_node=4)
        payments = (Payment("alice", 1, "bob", 10),)
        messages = {
            i: CreditMessage.create(keys[i], 0, payments) for i in range(4)
        }
        collector.add_credit(0, messages[0])
        minted = collector.add_credit(1, messages[1])
        assert len(minted) == 1
        assert collector.certified_count == 1  # replicas 2, 3 outstanding
        assert collector.add_credit(2, messages[2]) == []
        assert collector.add_credit(3, messages[3]) == []
        assert collector.certified_count == 0  # fully reported: retired
        # A single replica replaying its CREDIT post-retirement restarts
        # collection but cannot reach f+1 distinct signers alone.
        assert collector.add_credit(0, messages[0]) == []
        assert collector.pending_subbatches == 1

    def test_long_run_memory_stays_bounded(self, setup, keychain):
        """Sustained mixed traffic: memory is a function of the caps, not
        of how many sub-batches ever passed through."""
        directory, keys = setup
        collector = DependencyCollector(
            directory, keychain, my_node=4, max_pending=32, max_certified=64
        )
        for index in range(1, 2001):
            payments = (Payment("alice", index, "bob", 1),)
            collector.add_credit(0, CreditMessage.create(keys[0], 0, payments))
            if index % 3 == 0:  # two thirds of sub-batches never complete
                collector.add_credit(
                    1, CreditMessage.create(keys[1], 0, payments)
                )
        assert collector.pending_subbatches <= 32
        assert len(collector._payments) <= 32
        assert collector.certified_count <= 64

    def test_invalid_bounds_rejected(self, setup, keychain):
        directory, keys = setup
        with pytest.raises(ValueError):
            DependencyCollector(directory, keychain, 4, max_pending=0)
