"""Unit tests for Directory and AstroConfig."""

import pytest

from repro.core.config import AstroConfig
from repro.core.directory import Directory


class TestDirectory:
    def test_shard_registration_and_lookup(self):
        directory = Directory()
        directory.register_shard(0, (0, 1, 2, 3))
        directory.register_shard(1, (4, 5, 6, 7))
        assert directory.members(0) == (0, 1, 2, 3)
        assert directory.shard_of_replica(5) == 1
        assert directory.shard_ids == [0, 1]
        assert directory.faulty_bound(0) == 1

    def test_duplicate_shard_rejected(self):
        directory = Directory()
        directory.register_shard(0, (0, 1))
        with pytest.raises(ValueError):
            directory.register_shard(0, (2, 3))

    def test_replica_in_two_shards_rejected(self):
        directory = Directory()
        directory.register_shard(0, (0, 1))
        with pytest.raises(ValueError):
            directory.register_shard(1, (1, 2))

    def test_empty_shard_rejected(self):
        directory = Directory()
        with pytest.raises(ValueError):
            directory.register_shard(0, ())

    def test_client_registration(self):
        directory = Directory()
        directory.register_shard(0, (0, 1, 2, 3))
        directory.register_client("alice", 2)
        assert directory.rep_of("alice") == 2
        assert directory.shard_of_client("alice") == 0
        assert directory.knows_client("alice")
        assert not directory.knows_client("bob")
        assert directory.clients == ["alice"]

    def test_client_needs_valid_representative(self):
        directory = Directory()
        directory.register_shard(0, (0, 1))
        with pytest.raises(ValueError):
            directory.register_client("alice", 99)

    def test_clients_of_shard(self):
        directory = Directory()
        directory.register_shard(0, (0, 1))
        directory.register_shard(1, (2, 3))
        directory.register_client("a", 0)
        directory.register_client("b", 2)
        assert directory.clients_of_shard(0) == ["a"]
        assert directory.clients_of_shard(1) == ["b"]


class TestAstroConfig:
    def test_defaults_derive_f(self):
        config = AstroConfig(num_replicas=10)
        assert config.f == 3
        assert config.quorum == 7

    def test_paper_batch_size_default(self):
        assert AstroConfig().batch_size == 256

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            AstroConfig(num_replicas=3, f=1)
        with pytest.raises(ValueError):
            AstroConfig(num_shards=0)
        with pytest.raises(ValueError):
            AstroConfig(batch_size=0)

    def test_explicit_f_respected(self):
        config = AstroConfig(num_replicas=10, f=2)
        assert config.f == 2
        assert config.quorum == 5


class TestBftConfig:
    def test_defaults(self):
        from repro.consensus.config import BftConfig

        config = BftConfig(num_replicas=7)
        assert config.f == 2
        assert config.quorum == 5
        assert config.pipeline_depth >= 1

    def test_invalid_pipeline(self):
        from repro.consensus.config import BftConfig

        with pytest.raises(ValueError):
            BftConfig(num_replicas=4, pipeline_depth=0)
