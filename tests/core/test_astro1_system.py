"""System tests for Astro I (Listings 1–4, §IV-A)."""

import pytest

from repro.core.system import Astro1System
from repro.sim import UniformLatency


GENESIS = {"alice": 100, "bob": 50, "carol": 0, "dave": 25}


def build(n=4, genesis=None, **kwargs):
    return Astro1System(num_replicas=n, genesis=genesis or dict(GENESIS), **kwargs)


def test_single_payment_settles_everywhere():
    system = build()
    system.submit("alice", "bob", 30)
    system.settle_all()
    assert system.settled_counts() == [1, 1, 1, 1]
    for index in range(4):
        balances = system.balances_at(index)
        assert balances["alice"] == 70
        assert balances["bob"] == 80


def test_replicas_converge_to_identical_state():
    system = build()
    for _ in range(3):
        system.submit("alice", "bob", 10)
        system.submit("bob", "carol", 5)
    system.settle_all()
    snapshots = {replica.state.snapshot() for replica in system.replicas}
    assert len(snapshots) == 1


def test_transitive_payment_queues_until_funded():
    """§IV-A: Astro I queues insufficiently funded payments until credits
    arrive — carol starts with 0 and spends money she is about to get."""
    system = build()
    system.submit("carol", "dave", 40)   # not funded yet: queued
    system.submit("alice", "carol", 60)  # funds arrive
    system.settle_all()
    balances = system.balances_at(0)
    assert balances["carol"] == 20
    assert balances["dave"] == 65
    assert system.settled_counts() == [2, 2, 2, 2]


def test_never_funded_payment_stays_queued():
    system = build()
    system.submit("carol", "dave", 1000)
    system.settle_all()
    assert system.settled_counts() == [0, 0, 0, 0]
    assert all(replica.queued_payments == 1 for replica in system.replicas)
    # The balance never goes negative.
    assert all(b >= 0 for b in system.balances_at(0).values())


def test_client_fifo_across_batches():
    system = build()
    for index in range(10):
        system.submit("alice", "bob", 1)
    system.settle_all()
    xlog = system.replica(0).state.xlog("alice")
    assert [p.seq for p in xlog] == list(range(1, 11))


def test_total_value_conserved():
    system = build()
    for index in range(5):
        system.submit("alice", "bob", 7)
        system.submit("bob", "dave", 3)
    system.settle_all()
    assert system.total_value() == sum(GENESIS.values())


def test_confirmation_hook_fires_at_representative():
    system = build()
    confirmations = []
    system.add_confirm_hook(lambda payment, at: confirmations.append(payment))
    system.submit("alice", "bob", 5)
    system.settle_all()
    assert len(confirmations) == 1
    assert confirmations[0].spender == "alice"


def test_crashed_replica_does_not_block_others():
    """f=1 of N=4: one crashed replica leaves liveness intact."""
    system = build()
    victim = next(
        replica for replica in system.replicas
        if system.directory.rep_of("alice") != replica.node_id
    )
    system.faults.crash(victim.node_id)
    system.submit("alice", "bob", 30)
    system.settle_all()
    settled = [
        replica.settled_count
        for replica in system.replicas
        if replica.node_id != victim.node_id
    ]
    assert settled == [1, 1, 1]


def test_crashed_representative_stalls_only_its_clients():
    system = build()
    rep_alice = system.directory.rep_of("alice")
    system.faults.crash(rep_alice)
    system.submit("alice", "bob", 10)  # lost with the representative
    other = next(c for c in GENESIS if system.directory.rep_of(c) != rep_alice)
    beneficiary = next(c for c in GENESIS if c != other)
    system.submit(other, beneficiary, 5)
    system.settle_all()
    for replica in system.replicas:
        if replica.node_id == rep_alice:
            continue
        assert replica.settled_count == 1
        assert replica.state.xlog("alice").last_seq == 0


def test_asynchronous_replica_catches_up():
    system = build(latency=UniformLatency(0.001, 0.02, seed=5))
    system.faults.delay_egress(3, 0.2)
    for _ in range(4):
        system.submit("alice", "bob", 1)
    system.settle_all()
    # Bracha's totality: the slow replica still settles everything.
    assert system.settled_counts() == [4, 4, 4, 4]


def test_client_node_round_trip():
    system = build()
    latencies = []
    client = system.add_client_node(
        "alice", on_confirm=lambda payment, latency: latencies.append(latency)
    )
    client.pay("bob", 12)
    system.settle_all()
    assert client.confirmed_count == 1
    assert client.in_flight == 0
    assert latencies and latencies[0] > 0
    assert system.balances_at(0)["bob"] == 62


def test_rejects_sharded_config():
    from repro.core.config import AstroConfig

    with pytest.raises(ValueError):
        Astro1System(
            num_replicas=4,
            genesis=GENESIS,
            config=AstroConfig(num_replicas=4, num_shards=2),
        )


def test_custom_rep_assignment():
    assignment = {client: 2 for client in GENESIS}
    system = build(rep_assignment=assignment)
    for client in GENESIS:
        assert system.directory.rep_of(client) == 2


def test_ingest_rejects_foreign_clients():
    """A replica only broadcasts for clients it represents (§II)."""
    system = build()
    alice_rep = system.directory.rep_of("alice")
    other = next(r for r in system.replicas if r.node_id != alice_rep)
    payment = system.make_payment("alice", "bob", 5)
    other.submit_local(payment)
    system.settle_all()
    assert system.settled_counts() == [0, 0, 0, 0]
