"""Unit tests for the client node (Listing 1)."""

import pytest

from repro.core.system import Astro1System, Astro2System

GENESIS = {"alice": 1000, "bob": 1000}


@pytest.mark.parametrize("system_cls", [Astro1System, Astro2System])
def test_sequence_numbers_increment(system_cls):
    system = system_cls(num_replicas=4, genesis=dict(GENESIS), seed=1)
    client = system.add_client_node("alice")
    first = client.pay("bob", 1)
    second = client.pay("bob", 2)
    assert (first.seq, second.seq) == (1, 2)
    assert client.next_seq == 3


def test_in_flight_tracking():
    system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=2)
    client = system.add_client_node("alice")
    client.pay("bob", 1)
    assert client.in_flight == 1
    system.settle_all()
    assert client.in_flight == 0
    assert client.confirmed_count == 1


def test_confirmation_carries_latency():
    system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=3)
    observed = []
    client = system.add_client_node(
        "alice", on_confirm=lambda payment, latency: observed.append(latency)
    )
    client.pay("bob", 1)
    system.settle_all()
    assert len(observed) == 1
    # End-to-end latency: at least one WAN round trip worth of time.
    assert 0.001 < observed[0] < 5.0


def test_multiple_clients_independent_counters():
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=4)
    alice = system.add_client_node("alice")
    bob = system.add_client_node("bob")
    alice.pay("bob", 1)
    bob.pay("alice", 1)
    bob.pay("alice", 1)
    system.settle_all()
    assert alice.confirmed_count == 1
    assert bob.confirmed_count == 2


def test_unexpected_confirmation_ignored():
    from repro.core.messages import ClientConfirm
    from repro.core.payment import Payment

    system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=5)
    client = system.add_client_node("alice")
    stray = ClientConfirm(Payment("alice", 99, "bob", 1), settled_at=0.0)
    system.network.send(0, client.node_id, stray, size=64)
    system.settle_all()
    assert client.confirmed_count == 0
