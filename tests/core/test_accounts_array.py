"""Array-backed account store: interning, views, snapshot cache.

The dict-of-objects store (`DictAccountState`) is kept as the
behavioral reference: both stores expose the same mapping views and
method surface, and these tests assert they stay indistinguishable —
including the byte-identity of ``repr(snapshot())``, which the golden
history fingerprints hash.
"""

import random

import pytest

from repro.core.accounts import AccountState, DictAccountState
from repro.core.interning import ClientInterner
from repro.core.payment import Payment


def fresh_snapshot(state):
    """The pre-cache snapshot formula: re-sort members on every call."""
    return tuple(
        (client, state.balances.get(client, 0), seq)
        for client, seq in sorted(
            state.seqnums.items(), key=lambda item: repr(item[0])
        )
    )


class TestClientInterner:
    def test_assigns_dense_insertion_ordered_indices(self):
        interner = ClientInterner(["b", "a", "c"])
        assert [interner.index_of(c) for c in ("b", "a", "c")] == [0, 1, 2]
        assert interner.intern("d") == 3
        assert interner.intern("a") == 1
        assert interner.client_at(3) == "d"
        assert "d" in interner and "e" not in interner
        assert len(interner) == 4

    def test_index_of_unknown_is_none(self):
        assert ClientInterner().index_of("ghost") is None

    def test_tuple_client_ids(self):
        acct = ("acct", 7, "checking")
        interner = ClientInterner([acct])
        assert interner.index_of(acct) == 0
        assert interner.client_at(0) == acct


class TestArrayDictParity:
    def test_random_operation_sequence_matches_dict_store(self):
        genesis = {f"client-{i}": 100 for i in range(8)}
        arr = AccountState(genesis)
        ref = DictAccountState(genesis)
        rng = random.Random(42)
        clients = list(genesis) + ["late-0", "late-1"]
        arr.add_client("late-0", 50)
        ref.add_client("late-0", 50)
        arr.credit("late-1", 30)
        ref.credit("late-1", 30)
        seqs = {c: 0 for c in clients}
        for _ in range(300):
            spender, beneficiary = rng.sample(clients, 2)
            if arr.balance(spender) < 1:
                continue
            seqs[spender] += 1
            payment = Payment(spender, seqs[spender], beneficiary, 1)
            arr.settle_full(payment)
            ref.settle_full(payment)
        assert dict(arr.balances) == dict(ref.balances)
        assert dict(arr.seqnums) == dict(ref.seqnums)
        assert arr.snapshot() == ref.snapshot()
        assert repr(arr.snapshot()) == repr(ref.snapshot())
        assert arr.total_balance() == ref.total_balance()
        for client in clients:
            assert list(arr.xlog(client)) == list(ref.xlog(client))

    def test_iteration_order_matches_dict_store(self):
        genesis = {"b": 1, "a": 2}
        arr = AccountState(genesis)
        ref = DictAccountState(genesis)
        for state in (arr, ref):
            state.credit("z", 5)
            state.add_client("m")
        assert list(arr.balances) == list(ref.balances)
        assert list(arr.seqnums) == list(ref.seqnums)
        assert list(arr.balances.items()) == list(ref.balances.items())

    def test_try_settle_spend_rejects_without_state_change(self):
        genesis = {"a": 10, "b": 0}
        arr = AccountState(genesis)
        before = arr.snapshot()
        assert not arr.try_settle_spend(Payment("a", 1, "b", 11))
        assert arr.snapshot() == before
        assert arr.seqnum("a") == 0
        assert arr.try_settle_spend(Payment("a", 1, "b", 10))
        assert arr.balance("a") == 0
        assert arr.seqnum("a") == 1

    def test_shared_interner_across_replicas(self):
        genesis = {f"client-{i}": 10 for i in range(4)}
        interner = ClientInterner(genesis)
        states = [AccountState(genesis, interner=interner) for _ in range(3)]
        states[0].credit("new", 5)
        # The id is interned once, globally; other states stay unaware.
        assert interner.index_of("new") is not None
        assert not states[1].knows("new")
        assert states[1].balance("new") == 0


class TestSnapshotCache:
    def test_snapshot_matches_fresh_sort_formula(self):
        genesis = {f"client-{i}": 100 for i in range(6)}
        state = AccountState(genesis)
        state.settle_full(Payment("client-3", 1, "client-0", 7))
        assert state.snapshot() == fresh_snapshot(state)
        assert repr(state.snapshot()) == repr(fresh_snapshot(state))

    def test_cache_invalidated_by_membership_changes(self):
        state = AccountState({"m": 10, "a": 10})
        first = state.snapshot()
        assert first == fresh_snapshot(state)
        # add_client introduces a member that sorts between the others.
        state.add_client("g", 3)
        assert state.snapshot() == fresh_snapshot(state)
        # Settling an unknown spender adds seqnum membership too.
        state.settle_full(Payment("zz", 1, "a", 0))
        assert state.snapshot() == fresh_snapshot(state)
        # So does a direct seqnums view write (adversary forks do this).
        state.seqnums["bb"] = 4
        assert state.snapshot() == fresh_snapshot(state)
        assert state.snapshot() != first

    def test_value_changes_visible_without_invalidation(self):
        genesis = {"a": 10, "b": 20}
        state = AccountState(genesis)
        state.snapshot()
        state.credit("a", 5)
        state.balances["b"] -= 3
        assert state.snapshot() == (("a", 15, 0), ("b", 17, 0))


class TestViews:
    def test_get_distinguishes_zero_member_from_absent(self):
        state = AccountState({"a": 0})
        assert state.balances.get("a", -1) == 0
        assert state.balances.get("ghost", -1) == -1
        assert "a" in state.balances and "ghost" not in state.balances

    def test_augmented_assignment_through_views(self):
        state = AccountState({"a": 10})
        state.balances["a"] -= 4
        state.seqnums["a"] += 2
        assert state.balance("a") == 6
        assert state.seqnum("a") == 2

    def test_xlog_materialization_is_persistent(self):
        state = AccountState({"a": 10, "b": 0})
        log = state.xlogs["a"]
        payment = Payment("a", 1, "b", 1)
        state.settle_full(payment)
        # The handle obtained *before* the settle sees the append.
        assert list(log) == [payment]

    def test_xlog_items_are_transient_for_idle_members(self):
        state = AccountState({f"c{i}": 1 for i in range(50)})
        for _, log in state.xlogs.items():
            assert len(log) == 0
        # Iterating must not have materialized anything.
        assert len(state._xlog_map) == 0

    def test_view_equality_against_plain_dict(self):
        state = AccountState({"a": 5, "b": 7})
        assert state.balances == {"a": 5, "b": 7}
        assert dict(state.seqnums) == {"a": 0, "b": 0}

    def test_negative_genesis_rejected(self):
        with pytest.raises(ValueError):
            AccountState({"a": -1})
