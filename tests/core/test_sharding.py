"""System tests for asynchronous sharding (§V)."""


from repro.core.system import Astro2System

GENESIS = {"alice": 100, "bob": 50, "carol": 0, "dave": 25,
           "erin": 60, "frank": 10}


def build(shards=2, per_shard=4, genesis=None, **kwargs):
    return Astro2System(
        num_replicas=per_shard,
        num_shards=shards,
        genesis=genesis or dict(GENESIS),
        **kwargs,
    )


def find_cross_shard_pair(system):
    clients = list(system.genesis)
    for spender in clients:
        for beneficiary in clients:
            if spender == beneficiary:
                continue
            if (
                system.directory.shard_of_client(spender)
                != system.directory.shard_of_client(beneficiary)
            ):
                return spender, beneficiary
    raise AssertionError("no cross-shard pair")


def test_shard_membership_disjoint():
    system = build()
    members0 = set(system.directory.members(0))
    members1 = set(system.directory.members(1))
    assert not (members0 & members1)
    assert len(members0) == len(members1) == 4


def test_intra_shard_payment_contained():
    system = build()
    shard0_clients = [
        c for c in system.genesis if system.directory.shard_of_client(c) == 0
    ]
    spender, beneficiary = shard0_clients[0], shard0_clients[1]
    amount = min(10, system.genesis[spender])
    system.submit(spender, beneficiary, amount)
    system.settle_all()
    for node in system.directory.members(0):
        assert system.replica_by_node(node).settled_count == 1
    for node in system.directory.members(1):
        assert system.replica_by_node(node).settled_count == 0


def test_cross_shard_payment_no_2pc():
    """The spender's shard settles unilaterally; the beneficiary's shard
    learns via CREDIT messages only (one communication step, §V)."""
    system = build()
    spender, beneficiary = find_cross_shard_pair(system)
    system.submit(spender, beneficiary, 5)
    system.settle_all()
    spender_shard = system.directory.shard_of_client(spender)
    for node in system.directory.members(spender_shard):
        assert system.replica_by_node(node).settled_count == 1
    # Beneficiary's representative holds the dependency certificate.
    rep = system.representative_of(beneficiary)
    assert rep.available_balance(beneficiary) == system.genesis[beneficiary] + 5


def test_cross_shard_value_spendable_in_other_shard():
    system = build(genesis={"alice": 100, "bob": 0, "carol": 0, "dave": 0,
                            "erin": 0, "frank": 0})
    spender = "alice"
    cross = [
        c for c in system.genesis
        if system.directory.shard_of_client(c)
        != system.directory.shard_of_client("alice")
    ]
    beneficiary = cross[0]
    final = next(c for c in system.genesis if c not in (spender, beneficiary))
    system.submit(spender, beneficiary, 80)
    system.settle_all()
    system.submit(beneficiary, final, 70)  # funded purely by the credit
    system.settle_all()
    total = system.total_value()
    assert total == 100
    rep_final = system.representative_of(final)
    assert rep_final.available_balance(final) >= 70


def test_global_conservation_across_shards():
    system = build()
    spender, beneficiary = find_cross_shard_pair(system)
    system.submit(spender, beneficiary, 7)
    reverse_pair = (beneficiary, spender)
    system.settle_all()
    system.submit(*reverse_pair, 3)
    system.settle_all()
    assert system.total_value() == sum(GENESIS.values())


def test_shards_do_not_learn_foreign_xlogs():
    system = build()
    spender, beneficiary = find_cross_shard_pair(system)
    system.submit(spender, beneficiary, 5)
    system.settle_all()
    other_shard = system.directory.shard_of_client(beneficiary)
    for node in system.directory.members(other_shard):
        replica = system.replica_by_node(node)
        # The spender's xlog lives only in the spender's shard.
        assert replica.state.xlog(spender).last_seq == 0


def test_three_shards_scale_out():
    genesis = {f"c{i}": 100 for i in range(12)}
    system = Astro2System(num_replicas=4, num_shards=3, genesis=genesis, seed=2)
    assert len(system.replicas) == 12
    for i in range(0, 12, 2):
        system.submit(f"c{i}", f"c{i + 1}", 1)
    system.settle_all()
    total_settled = sum(system.settled_counts())
    assert total_settled == 6 * 4  # each payment settled by its shard's 4


def test_per_shard_convergence():
    system = build()
    spender, beneficiary = find_cross_shard_pair(system)
    system.submit(spender, beneficiary, 5)
    system.settle_all()
    for shard in system.directory.shard_ids:
        snapshots = {
            system.replica_by_node(node).state.snapshot()
            for node in system.directory.members(shard)
        }
        assert len(snapshots) == 1


def test_explicit_shard_assignment_respected():
    assignment = {c: 0 for c in GENESIS}
    assignment["frank"] = 1
    system = build(shard_assignment=assignment)
    assert system.directory.shard_of_client("frank") == 1
    assert system.directory.shard_of_client("alice") == 0


def test_forged_cross_shard_certificate_rejected():
    """A certificate signed by replicas of the WRONG shard must not
    credit the beneficiary."""
    from repro.core.dependencies import (
        CreditMessage,
    )

    system = build(genesis={"alice": 100, "bob": 0, "carol": 0, "dave": 0,
                            "erin": 0, "frank": 0})
    spender, beneficiary = find_cross_shard_pair(system)
    ben_shard = system.directory.shard_of_client(beneficiary)
    ben_members = system.directory.members(ben_shard)
    # Byzantine replicas of the *beneficiary's own* shard craft CREDITs
    # claiming a payment from the spender's shard.
    fake_payment = system.make_payment(spender, beneficiary, 10**6)
    spender_shard = system.directory.shard_of_client(spender)
    rep = system.representative_of(beneficiary)
    forgers = [system.replica_by_node(node) for node in ben_members[:2]]
    for forger in forgers:
        message = CreditMessage.create(
            forger.key, spender_shard, (fake_payment,)
        )
        rep._apply_credit(forger.node_id, message)
    system.settle_all()
    assert rep.available_balance(beneficiary) == 0


def test_cert_verify_cost_bound_uses_certificate_shard():
    """The delivery-time verify-cost clamp must price a certificate by
    *its* shard's f+1, not the local shard's — with heterogeneous shard
    sizes the two differ, and charging the local bound would mis-price
    cross-shard certificates."""
    from repro.brb.quorums import max_faulty

    system = build(shards=2, per_shard=4)  # two shards of f=1
    replica = system.replicas[0]
    assert replica._cert_sig_bound(0) == 2  # own shard: f+1
    assert replica._cert_sig_bound(1) == 2
    # A shard the directory does not know costs nothing to reject:
    # verify_certificate bails after one O(1) lookup.
    assert replica._cert_sig_bound(2) == 0
    # ...and the unknown verdict is not cached: a reconfiguration that
    # registers a bigger shard (f=2) later prices its certificates at
    # *its* bound of 3 signatures, not the local 2 (and not a stale 0).
    big = tuple(range(100, 107))
    system.directory.register_shard(2, big)
    assert replica._cert_sig_bound(2) == max_faulty(len(big)) + 1 == 3
