"""Tests for replica-internal mechanics: flow control, ingestion rules."""


from repro.core.config import AstroConfig
from repro.core.payment import Payment
from repro.core.system import Astro1System, Astro2System

GENESIS = {"a": 10**6, "b": 10**6, "c": 10**6, "d": 10**6}


def test_batch_backpressure_limits_inflight():
    config = AstroConfig(
        num_replicas=4, batch_size=2, batch_delay=0.001, max_inflight_batches=1
    )
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), config=config)
    representative = system.representative_of("a")
    for _ in range(20):
        system.submit("a", "b", 1)
    # With a single in-flight slot, extra batches queue locally...
    assert len(representative._batch_backlog) > 0
    system.settle_all()
    # ...and all eventually broadcast and settle.
    assert representative.settled_count == 20
    assert len(representative._batch_backlog) == 0


def test_duplicate_submission_dropped_at_ingest():
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=1)
    representative = system.representative_of("a")
    representative.submit_local(Payment("a", 1, "b", 5))
    representative.submit_local(Payment("a", 1, "c", 7))  # same seq: dropped
    system.settle_all()
    log = system.replica(0).state.xlog("a")
    assert [p.beneficiary for p in log] == ["b"]


def test_out_of_order_submission_dropped_at_ingest():
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=1)
    representative = system.representative_of("a")
    representative.submit_local(Payment("a", 2, "b", 5))  # gap: dropped
    system.settle_all()
    assert system.settled_counts() == [0, 0, 0, 0]


def test_crashed_replica_ignores_submissions():
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=1)
    representative = system.representative_of("a")
    system.faults.crash(representative.node_id, at=0.0)
    system.sim.run(until=0.01)
    system.submit("a", "b", 5)
    system.settle_all()
    assert all(count == 0 for count in system.settled_counts())


def test_queued_payments_visible():
    system = Astro1System(
        num_replicas=4, genesis={"a": 0, "b": 100, "c": 0, "d": 0}, seed=1
    )
    system.submit("a", "b", 50)  # unfunded: delivered but queued
    system.settle_all()
    assert all(replica.queued_payments == 1 for replica in system.replicas)


def test_astro2_projected_balance_tracks_held_queue():
    system = Astro2System(
        num_replicas=4, genesis={"a": 10, "b": 100, "c": 0, "d": 0}, seed=1
    )
    rep = system.representative_of("a")
    system.submit("a", "b", 8)    # affordable
    system.submit("a", "b", 8)    # not affordable yet: held
    system.settle_all()
    assert rep.held_payments == 1
    assert system.settled_counts() == [1, 1, 1, 1]
    system.submit("b", "a", 50)   # credit arrives, hold releases
    system.settle_all()
    assert rep.held_payments == 0
    assert system.replica(0).state.xlog("a").last_seq == 2


def test_astro2_available_balance_view():
    system = Astro2System(
        num_replicas=4, genesis={"a": 100, "b": 0, "c": 0, "d": 0}, seed=1
    )
    system.submit("a", "b", 40)
    system.settle_all()
    rep_b = system.representative_of("b")
    assert rep_b.available_balance("b") == 40
    assert rep_b.balance_of("b") == 0  # nothing settled on b's side yet


def test_settled_count_uniform_across_replicas():
    system = Astro2System(num_replicas=7, genesis=dict(GENESIS), seed=2)
    for index in range(25):
        system.submit("a", "b", 1)
    system.settle_all()
    assert set(system.settled_counts()) == {25}


def test_confirm_hooks_only_fire_at_spender_rep():
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=3)
    fired = {replica.node_id: 0 for replica in system.replicas}

    for replica in system.replicas:
        def hook(payment, at, node_id=replica.node_id):
            fired[node_id] += 1

        replica.confirm_hooks.append(hook)

    system.submit("a", "b", 1)
    system.settle_all()
    rep = system.directory.rep_of("a")
    assert fired[rep] == 1
    assert sum(fired.values()) == 1
