"""System tests for Astro II (Listings 6–10, §IV-A) — single shard."""


from repro.core.payment import Payment
from repro.core.system import Astro2System

GENESIS = {"alice": 100, "bob": 50, "carol": 0, "dave": 25}


def build(n=4, genesis=None, **kwargs):
    return Astro2System(num_replicas=n, genesis=genesis or dict(GENESIS), **kwargs)


def test_basic_payment_settles_everywhere():
    system = build()
    system.submit("alice", "bob", 30)
    system.settle_all()
    assert system.settled_counts() == [1, 1, 1, 1]
    for index in range(4):
        assert system.balances_at(index)["alice"] == 70


def test_beneficiary_credited_only_via_dependencies():
    """Settling never deposits directly (Listing 9): the beneficiary's
    replicated balance rises only when a dependency materializes."""
    system = build()
    system.submit("alice", "bob", 30)
    system.settle_all()
    # Not yet spent by bob: replicated balance unchanged...
    assert system.balances_at(0)["bob"] == 50
    # ...but his representative can prove the credit.
    assert system.representative_of("bob").available_balance("bob") == 80
    # Bob spends beyond his settled balance, consuming the dependency.
    system.submit("bob", "carol", 70)
    system.settle_all()
    balances = system.balances_at(0)
    assert balances["bob"] == 10   # 50 + 30 - 70
    assert system.settled_counts() == [2, 2, 2, 2]


def test_dependency_not_consumed_twice():
    system = build()
    system.submit("alice", "bob", 30)
    system.settle_all()
    system.submit("bob", "carol", 60)
    system.settle_all()
    system.submit("bob", "carol", 20)
    system.settle_all()
    assert system.total_value() == sum(GENESIS.values())
    assert system.balances_at(0)["bob"] == 0  # 50 + 30 - 60 - 20


def test_representative_holds_underfunded_payment_until_credit():
    system = build()
    system.submit("carol", "dave", 40)  # carol has 0: held at her rep
    rep_carol = system.representative_of("carol")
    system.settle_all()
    assert rep_carol.held_payments == 1
    assert system.settled_counts() == [0, 0, 0, 0]
    system.submit("alice", "carol", 60)
    system.settle_all()
    assert rep_carol.held_payments == 0
    assert system.settled_counts() == [2, 2, 2, 2]
    # Astro II never deposits directly: dave's replicated balance is
    # unchanged, but his representative can prove the incoming 40.
    assert system.balances_at(0)["dave"] == 25
    assert system.representative_of("dave").available_balance("dave") == 65


def test_held_payments_keep_client_fifo():
    system = build()
    system.submit("carol", "dave", 40)   # held (unfunded)
    system.submit("carol", "bob", 1)     # must NOT overtake the held one
    system.settle_all()
    assert system.settled_counts() == [0, 0, 0, 0]
    system.submit("alice", "carol", 100)
    system.settle_all()
    xlog = system.replica(0).state.xlog("carol")
    assert [p.seq for p in xlog] == [1, 2]
    assert [p.beneficiary for p in xlog] == ["dave", "bob"]


def test_replicas_converge():
    system = build()
    for _ in range(4):
        system.submit("alice", "bob", 5)
        system.submit("bob", "dave", 2)
    system.settle_all()
    snapshots = {replica.state.snapshot() for replica in system.replicas}
    assert len(snapshots) == 1


def test_conservation_with_dependencies_in_flight():
    system = build()
    system.submit("alice", "bob", 30)
    system.submit("bob", "carol", 10)
    system.settle_all()
    assert system.total_value() == sum(GENESIS.values())


def test_underfunded_broadcast_rejected_deterministically():
    """A (Byzantine) representative broadcasting an underfunded payment:
    every correct replica rejects it identically (Listing 9 l.49)."""
    from repro.brb.batching import Batch

    system = build()
    rep = system.representative_of("carol")
    payment = Payment("carol", 1, "dave", 1000)  # carol cannot afford it
    batch = Batch([payment])
    rep.brb.broadcast(1, batch, batch.size_bytes)
    system.settle_all()
    assert system.settled_counts() == [0, 0, 0, 0]
    assert all(len(replica.rejected) == 1 for replica in system.replicas)


def test_equivocating_representative_cannot_double_spend():
    from repro.brb.batching import Batch

    system = build(genesis={"mallory": 100, "bob": 0, "carol": 0, "x": 0})
    rep = system.representative_of("mallory")
    a = Batch([Payment("mallory", 1, "bob", 100)])
    b = Batch([Payment("mallory", 1, "carol", 100)])
    rep.brb.broadcast(1, a, a.size_bytes)
    rep.brb.broadcast(2, b, b.size_bytes)
    system.settle_all()
    # At most one conflicting payment settles, identically everywhere.
    beneficiaries = {
        tuple(p.beneficiary for p in replica.state.xlog("mallory"))
        for replica in system.replicas
    }
    assert len(beneficiaries) == 1
    settled = beneficiaries.pop()
    assert len(settled) <= 1


def test_confirmations_at_spender_representative():
    system = build()
    seen = []
    system.add_confirm_hook(lambda payment, at: seen.append(payment.identifier))
    system.submit("alice", "bob", 5)
    system.submit("bob", "carol", 5)
    system.settle_all()
    assert sorted(seen) == [("alice", 1), ("bob", 1)]


def test_client_node_round_trip():
    system = build()
    latencies = []
    client = system.add_client_node(
        "alice", on_confirm=lambda payment, latency: latencies.append(latency)
    )
    client.pay("bob", 10)
    system.settle_all()
    assert client.confirmed_count == 1
    assert latencies[0] > 0


def test_crash_of_f_replicas_preserves_liveness():
    system = build(n=7, genesis=dict(GENESIS))
    reps = {system.directory.rep_of(c) for c in GENESIS}
    victims = [r.node_id for r in system.replicas if r.node_id not in reps][:2]
    for victim in victims:
        system.faults.crash(victim)
    system.submit("alice", "bob", 10)
    system.settle_all()
    for replica in system.replicas:
        if replica.node_id in victims:
            continue
        assert replica.settled_count == 1


def test_lazy_attachment_skips_deps_when_funded():
    """With ample settled balance, outgoing payments carry no
    certificates (wire/verification amortization)."""
    system = build()
    system.submit("alice", "bob", 1)
    system.settle_all()
    system.submit("bob", "carol", 1)  # bob's genesis 50 covers this
    system.settle_all()
    xlog = system.replica(0).state.xlog("bob")
    assert xlog.entries()[0].deps == ()


def test_deps_attached_when_needed():
    system = build()
    system.submit("alice", "bob", 30)
    system.settle_all()
    system.submit("bob", "carol", 75)  # needs the credit from alice
    system.settle_all()
    xlog = system.replica(0).state.xlog("bob")
    assert len(xlog.entries()[0].deps) == 1


# ---------------------------------------------------------------------------
# Cross-delivery CREDIT coalescing (AstroConfig.credit_coalesce_delay)
# ---------------------------------------------------------------------------

from repro.core.config import AstroConfig  # noqa: E402


def _coalescing_system(delay, batch_delay=0.01):
    config = AstroConfig(
        num_replicas=4, batch_delay=batch_delay,
        credit_coalesce_delay=delay,
    )
    return Astro2System(
        num_replicas=4, genesis=dict(GENESIS), config=config, seed=7,
        track_kinds=True,
    )


def _staggered_alice_to_bob(system, times=(0.0, 0.05, 0.10)):
    """Three single-payment batches from alice's rep, all delivering
    within one generous coalescing window."""
    for at in times:
        if at == 0.0:
            system.submit("alice", "bob", 5)
        else:
            system.sim.schedule(at, system.submit, "alice", "bob", 5)
    system.settle_all()


def test_coalescing_preserves_economics():
    flushed = _coalescing_system(0.0)
    coalesced = _coalescing_system(0.5)
    for system in (flushed, coalesced):
        _staggered_alice_to_bob(system)
    assert coalesced.settled_counts() == flushed.settled_counts()
    for index in range(4):
        assert coalesced.balances_at(index) == flushed.balances_at(index)
    assert coalesced.total_value() == sum(GENESIS.values())


def test_coalescing_merges_credit_messages_across_deliveries():
    """Three deliveries inside one window produce one CREDIT bundle per
    (settling replica -> representative) pair instead of three unicasts.
    The sub-batches inside stay per-delivery: only transport merges."""
    flushed = _coalescing_system(0.0)
    _staggered_alice_to_bob(flushed)
    coalesced = _coalescing_system(0.5)
    _staggered_alice_to_bob(coalesced)
    off = flushed.network.stats.by_kind.get("CreditMessage", 0)
    on_bundles = coalesced.network.stats.by_kind.get("CreditBundle", 0)
    on_singles = coalesced.network.stats.by_kind.get("CreditMessage", 0)
    # 3 batches x 3 non-self settling replicas, vs one coalesced bundle
    # per pair carrying all three per-delivery sub-batches.
    assert off == 9
    assert on_bundles == 3
    assert on_singles == 0


def test_coalesced_subbatch_certificates_spendable():
    """Certificates minted from bundled (multi-delivery envelope)
    sub-batches must verify and materialize exactly like unicast ones."""
    system = _coalescing_system(0.5)
    _staggered_alice_to_bob(system)
    # bob's genesis is 50; spending 60 needs the 15 of coalesced credits.
    system.submit("bob", "carol", 60)
    system.settle_all()
    balances = system.balances_at(0)
    assert balances["alice"] == 85
    assert balances["bob"] == 5  # 50 + 15 - 60
    assert system.total_value() == sum(GENESIS.values())


def test_coalescing_subbatch_digests_match_across_settlers():
    """Transport coalescing must leave sub-batch composition a pure
    function of the origin's batch stream: with it on and off, the same
    deliveries mint the same certificates (f+1 digests always match)."""
    flushed = _coalescing_system(0.0)
    _staggered_alice_to_bob(flushed)
    coalesced = _coalescing_system(0.5)
    _staggered_alice_to_bob(coalesced)
    def minted(system):
        return sorted(
            (r.node_id, r._collector.minted_subbatches) for r in system.replicas
        )
    assert minted(coalesced) == minted(flushed)
    for system in (flushed, coalesced):
        assert all(r._collector.pending_subbatches == 0 for r in system.replicas)


def test_coalescing_bitwise_reproducible():
    def run():
        system = _coalescing_system(0.05)
        _staggered_alice_to_bob(system)
        return (
            system.sim.now,
            system.sim.events_executed,
            tuple(system.settled_counts()),
            system.replica(0).state.snapshot(),
        )

    assert run() == run()


def test_coalescing_mints_certificates_under_wan_jitter():
    """Regression: sub-batch boundaries must not depend on local delivery
    times.  Under pair-varying WAN latency every settler observes
    deliveries at different instants; a coalescer that merged sub-batch
    *content* per local time window would slice the settled-payment
    stream differently at each settler, digests would never gather f+1
    matching CREDITs, and a beneficiary on a tight balance could never
    spend.  Transport-only coalescing keeps digests bit-identical, so
    certificates must mint and pending sub-batches must drain to zero.
    """
    from repro.sim.latency import europe_wan

    genesis = {"a1": 200, "a2": 200, "a3": 200, "bob": 5, "carol": 0}
    config = AstroConfig(
        num_replicas=7, batch_delay=0.01, credit_coalesce_delay=0.05,
    )
    system = Astro2System(
        num_replicas=7, genesis=genesis, config=config, seed=11,
        latency=europe_wan(7 + len(genesis) + 64, seed=11, pair_streams=True),
    )
    # Twelve staggered single-payment batches from three different
    # origins, spanning several coalescing windows each.
    for index, at in enumerate(x * 0.03 for x in range(4)):
        for spender in ("a1", "a2", "a3"):
            if at == 0.0:
                system.submit(spender, "bob", 10)
            else:
                system.sim.schedule(at, system.submit, spender, "bob", 10)
    system.settle_all()
    # bob's genesis is 5; spending 100 needs ~10 of the 12 minted credits.
    system.submit("bob", "carol", 100)
    system.settle_all()
    assert system.balances_at(0)["bob"] == 25  # 5 + 120 - 100
    # Settling never deposits directly: carol's credit is provable at her
    # representative (and spendable), pending her own next payment.
    assert system.representative_of("carol").available_balance("carol") == 100
    assert system.total_value() == sum(genesis.values())
    # Every sub-batch gathered all N CREDITs at its destination
    # representative: nothing stranded short of f+1, which is exactly
    # the digests-match property (the old time-anchored coalescer left
    # thousands of mismatched partials here and bob could never spend).
    assert all(r._collector.pending_subbatches == 0 for r in system.replicas)
    assert sum(r._collector.minted_subbatches for r in system.replicas) >= 12


def test_coalescer_size_cap_flushes_full_subbatch():
    """A bucket reaching batch_size flushes immediately, bounding both
    staleness and CreditMessage wire size."""
    config = AstroConfig(
        num_replicas=4, batch_delay=0.01, batch_size=8,
        credit_coalesce_delay=10.0,
    )
    system = Astro2System(
        num_replicas=4, genesis=dict(GENESIS), config=config, seed=7,
        track_kinds=True,
    )
    for _ in range(8):  # exactly one full sub-batch towards bob's rep
        system.submit("alice", "bob", 1)
    system.run(until=1.0)  # well inside the 10s window
    assert system.network.stats.by_kind.get("CreditMessage", 0) >= 3
    assert system.representative_of("bob").available_balance("bob") >= 50 + 8


def test_crashed_replica_does_not_flush_coalesced_credits():
    system = _coalescing_system(0.5)
    system.submit("alice", "bob", 5)
    system.run(until=0.2)  # delivered and settled, credits still windowed
    victim = system.replicas[0]
    rep_bob = system.representative_of("bob")
    assert victim.node_id != rep_bob.node_id  # scenario precondition
    assert system.network.stats.by_kind.get("CreditMessage", 0) == 0
    system.faults.crash(victim.node_id)
    system.settle_all()
    # Exactly the two live non-representative settlers unicast their
    # (single sub-batch) CREDIT; the victim's expired window sends
    # nothing, and bob's representative self-applied off the wire.
    assert system.network.stats.by_kind.get("CreditMessage", 0) == 2
    # f+1 live CREDITs suffice: the certificate minted without the victim.
    assert rep_bob.available_balance("bob") == 55
    # The collector's straggler ledger still awaits exactly the victim —
    # proof the mint used live signers only and nothing of the victim's
    # ever arrived.
    (outstanding,) = rep_bob._collector._certified.values()
    assert outstanding == {victim.node_id}
