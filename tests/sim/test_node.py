"""Unit tests for the Node actor base class."""

import pytest

from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node


def build(n=4):
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.005))
    nodes = [Node(sim, i, network) for i in range(n)]
    return sim, network, nodes


def test_handler_dispatch_by_type():
    sim, network, nodes = build()
    strings, numbers = [], []
    nodes[1].on(str, lambda src, m: strings.append(m))
    nodes[1].on(int, lambda src, m: numbers.append(m))
    nodes[0].send(1, "text")
    nodes[0].send(1, 42)
    sim.run_until_idle()
    assert strings == ["text"]
    assert numbers == [42]


def test_handler_overwrite():
    sim, network, nodes = build()
    seen = []
    nodes[1].on(str, lambda src, m: seen.append(("first", m)))
    nodes[1].on(str, lambda src, m: seen.append(("second", m)))
    nodes[0].send(1, "x")
    sim.run_until_idle()
    assert seen == [("second", "x")]


def test_send_all_excluding_self():
    sim, network, nodes = build()
    got = {i: [] for i in range(4)}
    for i in range(4):
        nodes[i].on(str, (lambda i: lambda src, m: got[i].append(m))(i))
    nodes[0].send_all(range(4), "hello", include_self=False)
    sim.run_until_idle()
    assert got[0] == []
    assert got[1] == got[2] == got[3] == ["hello"]


def test_send_all_including_self():
    sim, network, nodes = build()
    got = []
    nodes[0].on(str, lambda src, m: got.append(m))
    nodes[0].send_all([0], "loop", include_self=True)
    sim.run_until_idle()
    assert got == ["loop"]


def test_send_cost_occupies_cpu():
    sim, network, nodes = build()
    before = nodes[0].cpu.busy_time
    nodes[0].send(1, "x", send_cost=0.001)
    assert nodes[0].cpu.busy_time == pytest.approx(before + 0.0005)  # 2 cores


def test_timer_fires_when_alive():
    sim, network, nodes = build()
    fired = []
    nodes[0].set_timer(0.5, fired.append, "tick")
    sim.run_until_idle()
    assert fired == ["tick"]


def test_alive_property():
    sim, network, nodes = build()
    assert nodes[2].alive
    network.crash(2)
    assert not nodes[2].alive
    network.recover(2)
    assert nodes[2].alive


def test_messages_between_custom_sizes_account_bandwidth():
    sim, network, nodes = build()
    nodes[1].on(bytes, lambda src, m: None)
    before = nodes[0].link.busy_time
    nodes[0].send(1, b"payload", size=30 * 1024 * 1024)  # 1 second of NIC
    assert nodes[0].link.busy_time - before == pytest.approx(1.0)
