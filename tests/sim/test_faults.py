"""Unit tests for fault injection."""

import pytest

from repro.sim.events import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node


def build(n=4):
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.01))
    nodes = [Node(sim, i, network) for i in range(n)]
    faults = FaultInjector(sim, network)
    return sim, network, nodes, faults


def test_crash_scheduled_at_time():
    sim, network, nodes, faults = build()
    faults.crash(2, at=1.0)
    sim.run(until=0.5)
    assert not network.is_crashed(2)
    sim.run(until=1.5)
    assert network.is_crashed(2)
    assert faults.log == [(1.0, "crash", 2)]


def test_crash_in_past_fires_now():
    sim, network, nodes, faults = build()
    sim.schedule(2.0, lambda: None)
    sim.run_until_idle()
    faults.crash(1, at=0.0)
    sim.run_until_idle()
    assert network.is_crashed(1)


def test_delay_egress_applies_at_time():
    sim, network, nodes, faults = build()
    received = []
    nodes[1].on(str, lambda src, msg: received.append(sim.now))
    faults.delay_egress(0, 0.2, at=1.0)
    nodes[0].send(1, "fast")
    sim.run(until=1.0)
    nodes[0].send(1, "slow")
    sim.run_until_idle()
    assert received[0] < 0.1
    assert received[1] >= 1.2


def test_delay_all():
    sim, network, nodes, faults = build()
    faults.delay_all([0, 1, 2], 0.05, at=0.0)
    sim.run_until_idle()
    assert network._egress_delay == {0: 0.05, 1: 0.05, 2: 0.05}


def test_partition_and_heal():
    sim, network, nodes, faults = build()
    received = []
    nodes[2].on(str, lambda src, msg: received.append(msg))
    faults.partition([0, 1], [2, 3], at=0.0)
    sim.run(until=0.1)
    nodes[0].send(2, "lost")
    sim.run(until=0.5)
    assert received == []
    faults.heal(at=0.6)
    sim.run(until=0.7)
    nodes[0].send(2, "found")
    sim.run_until_idle()
    assert received == ["found"]


def test_fault_log_records_all_kinds():
    sim, network, nodes, faults = build()
    faults.crash(0, at=0.1)
    faults.delay_egress(1, 0.05, at=0.2)
    faults.partition([0], [1], at=0.3)
    faults.heal(at=0.4)
    sim.run_until_idle()
    kinds = [entry[1] for entry in faults.log]
    assert kinds == ["crash", "delay", "partition", "heal"]


def test_recover_scheduled_at_time():
    sim, network, nodes, faults = build()
    received = []
    nodes[2].on(str, lambda src, msg: received.append((sim.now, msg)))
    faults.crash(2, at=0.5)
    faults.recover(2, at=1.5)
    sim.run(until=1.0)
    assert network.is_crashed(2)
    nodes[0].send(2, "while-down")
    sim.run(until=1.4)
    assert received == []  # dropped, never redelivered
    sim.run(until=1.6)
    assert not network.is_crashed(2)
    nodes[0].send(2, "after-recovery")
    sim.run_until_idle()
    assert [msg for _, msg in received] == ["after-recovery"]
    assert faults.log == [(0.5, "crash", 2), (1.5, "recover", 2)]


def test_recover_in_past_fires_now():
    sim, network, nodes, faults = build()
    faults.crash(1, at=0.0)
    sim.run_until_idle()
    faults.recover(1, at=0.0)
    sim.run_until_idle()
    assert not network.is_crashed(1)


def test_partition_overlapping_groups_rejected():
    sim, network, nodes, faults = build()
    with pytest.raises(ValueError, match="disjoint.*\\[1\\]"):
        faults.partition([0, 1], [1, 2])
    # Nothing was scheduled, nothing blocked.
    sim.run_until_idle()
    assert faults.log == []
    received = []
    nodes[1].on(str, lambda src, msg: received.append(msg))
    nodes[1].on(int, lambda src, msg: received.append(msg))
    nodes[0].send(1, "through")
    nodes[1].send(1, 7)  # loopback stays intact
    sim.run_until_idle()
    assert len(received) == 2 and set(received) == {7, "through"}


def test_crash_recover_timeline():
    """A crash→recover fault timeline on a full system (§VI-D shape).

    N=7 tolerates the crash (f=2); after recovery the node rejoins the
    network — it receives again and the run keeps settling payments
    through the whole window.
    """
    from repro.bench.systems import build_astro1
    from repro.bench.timeline import run_timeline

    system = build_astro1(7, seed=3)
    victim = system.replica_node_ids[-1]

    def crash_then_recover(sys_, at):
        sys_.faults.crash(victim, at=at)
        sys_.faults.recover(victim, at=at + 1.5)

    result = run_timeline(
        system, num_clients=6, warmup=1.0, window=4.0,
        fault=crash_then_recover, fault_offset=1.0, seed=3,
    )
    kinds = [entry[1] for entry in system.faults.log]
    assert kinds == ["crash", "recover"]
    assert not system.network.is_crashed(victim)
    assert system.replica_by_node(victim).alive
    assert result.completed > 0
    # Settlement continued after the recovery point (last window second).
    assert result.series[-1] > 0


def test_partition_duplicate_members_deduplicated():
    sim, network, nodes, faults = build()
    faults.partition([0, 0, 1], [2, 2, 3], at=0.0)
    sim.run_until_idle()
    (_, kind, pairs), = faults.log
    assert kind == "partition"
    assert list(pairs) == sorted(set(pairs))
    assert set(pairs) == {(0, 2), (0, 3), (1, 2), (1, 3)}
