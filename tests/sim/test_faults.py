"""Unit tests for fault injection."""

from repro.sim.events import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node


def build(n=4):
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.01))
    nodes = [Node(sim, i, network) for i in range(n)]
    faults = FaultInjector(sim, network)
    return sim, network, nodes, faults


def test_crash_scheduled_at_time():
    sim, network, nodes, faults = build()
    faults.crash(2, at=1.0)
    sim.run(until=0.5)
    assert not network.is_crashed(2)
    sim.run(until=1.5)
    assert network.is_crashed(2)
    assert faults.log == [(1.0, "crash", 2)]


def test_crash_in_past_fires_now():
    sim, network, nodes, faults = build()
    sim.schedule(2.0, lambda: None)
    sim.run_until_idle()
    faults.crash(1, at=0.0)
    sim.run_until_idle()
    assert network.is_crashed(1)


def test_delay_egress_applies_at_time():
    sim, network, nodes, faults = build()
    received = []
    nodes[1].on(str, lambda src, msg: received.append(sim.now))
    faults.delay_egress(0, 0.2, at=1.0)
    nodes[0].send(1, "fast")
    sim.run(until=1.0)
    nodes[0].send(1, "slow")
    sim.run_until_idle()
    assert received[0] < 0.1
    assert received[1] >= 1.2


def test_delay_all():
    sim, network, nodes, faults = build()
    faults.delay_all([0, 1, 2], 0.05, at=0.0)
    sim.run_until_idle()
    assert network._egress_delay == {0: 0.05, 1: 0.05, 2: 0.05}


def test_partition_and_heal():
    sim, network, nodes, faults = build()
    received = []
    nodes[2].on(str, lambda src, msg: received.append(msg))
    faults.partition([0, 1], [2, 3], at=0.0)
    sim.run(until=0.1)
    nodes[0].send(2, "lost")
    sim.run(until=0.5)
    assert received == []
    faults.heal(at=0.6)
    sim.run(until=0.7)
    nodes[0].send(2, "found")
    sim.run_until_idle()
    assert received == ["found"]


def test_fault_log_records_all_kinds():
    sim, network, nodes, faults = build()
    faults.crash(0, at=0.1)
    faults.delay_egress(1, 0.05, at=0.2)
    faults.partition([0], [1], at=0.3)
    faults.heal(at=0.4)
    sim.run_until_idle()
    kinds = [entry[1] for entry in faults.log]
    assert kinds == ["crash", "delay", "partition", "heal"]
