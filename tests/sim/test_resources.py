"""Unit tests for the FIFO resource servers (CPU / NIC)."""

import pytest

from repro.sim.events import Simulator
from repro.sim.resources import CpuServer, FifoServer, LinkServer


def test_jobs_serve_fifo_and_accumulate():
    sim = Simulator()
    server = FifoServer(sim, rate=1.0)
    done = []
    server.submit(1.0, done.append, "a")
    server.submit(2.0, done.append, "b")
    sim.run_until_idle()
    assert done == ["a", "b"]
    assert sim.now == 3.0


def test_rate_divides_service_time():
    sim = Simulator()
    server = FifoServer(sim, rate=2.0)
    completion = server.submit(1.0)
    assert completion == pytest.approx(0.5)


def test_idle_server_starts_at_now():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run_until_idle()
    server = FifoServer(sim)
    assert server.submit(1.0) == pytest.approx(6.0)


def test_backlog_reflects_queued_work():
    sim = Simulator()
    server = FifoServer(sim)
    assert server.backlog == 0.0
    server.submit(2.0)
    assert server.backlog == pytest.approx(2.0)


def test_occupy_charges_without_callback_event():
    sim = Simulator()
    server = FifoServer(sim)
    server.occupy(1.5)
    assert server.backlog == pytest.approx(1.5)
    assert sim.pending == 0


def test_utilization_tracking():
    sim = Simulator()
    server = FifoServer(sim)
    server.submit(1.0, lambda: None)
    sim.run_until_idle()
    assert server.utilization(2.0) == pytest.approx(0.5)
    assert server.jobs_served == 1
    server.reset_stats()
    assert server.busy_time == 0.0


def test_negative_service_time_rejected():
    sim = Simulator()
    server = FifoServer(sim)
    with pytest.raises(ValueError):
        server.submit(-1.0)


def test_invalid_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        FifoServer(sim, rate=0.0)


def test_cpu_server_pools_cores():
    sim = Simulator()
    cpu = CpuServer(sim, cores=2.0)
    assert cpu.submit(1.0) == pytest.approx(0.5)


def test_link_server_transmit_time():
    sim = Simulator()
    link = LinkServer(sim, bandwidth=1000.0)
    assert link.transmit(500) == pytest.approx(0.5)


def test_link_serializes_messages_back_to_back():
    sim = Simulator()
    link = LinkServer(sim, bandwidth=100.0)
    first = link.transmit(100)
    second = link.transmit(100)
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)


def test_link_invalid_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        LinkServer(sim, bandwidth=0)
