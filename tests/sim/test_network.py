"""Unit tests for the simulated network: delivery, faults, partitions."""

import pytest

from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node


def build(n=3, delay=0.01):
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(delay))
    nodes = [Node(sim, i, network) for i in range(n)]
    return sim, network, nodes


def test_basic_delivery_with_latency():
    sim, network, nodes = build(delay=0.02)
    got = []
    nodes[1].on(str, lambda src, msg: got.append((src, msg, sim.now)))
    nodes[0].send(1, "hello", size=100)
    sim.run_until_idle()
    assert len(got) == 1
    src, msg, at = got[0]
    assert (src, msg) == (0, "hello")
    assert at >= 0.02  # latency + serialization + CPU service


def test_loopback_skips_latency():
    sim, network, nodes = build(delay=0.5)
    got = []
    nodes[0].on(str, lambda src, msg: got.append(sim.now))
    nodes[0].send(0, "self", size=100)
    sim.run_until_idle()
    assert got and got[0] < 0.01


def test_crashed_source_sends_nothing():
    sim, network, nodes = build()
    got = []
    nodes[1].on(str, lambda src, msg: got.append(msg))
    network.crash(0)
    nodes[0].send(1, "x")
    sim.run_until_idle()
    assert got == []


def test_crash_at_delivery_time_drops_message():
    sim, network, nodes = build(delay=0.1)
    got = []
    nodes[1].on(str, lambda src, msg: got.append(msg))
    nodes[0].send(1, "x")
    sim.schedule(0.01, network.crash, 1)
    sim.run_until_idle()
    assert got == []
    assert network.stats.messages_dropped == 1


def test_recover_allows_future_delivery():
    sim, network, nodes = build()
    got = []
    nodes[1].on(str, lambda src, msg: got.append(msg))
    network.crash(1)
    network.recover(1)
    nodes[0].send(1, "x")
    sim.run_until_idle()
    assert got == ["x"]


def test_egress_delay_injection():
    sim, network, nodes = build(delay=0.01)
    times = []
    nodes[1].on(str, lambda src, msg: times.append(sim.now))
    nodes[0].send(1, "before")
    sim.run_until_idle()
    network.set_egress_delay(0, 0.1)
    nodes[0].send(1, "after")
    sim.run_until_idle()
    assert times[1] - times[0] >= 0.1


def test_egress_delay_cleared_with_nonpositive():
    sim, network, nodes = build()
    network.set_egress_delay(0, 0.1)
    network.set_egress_delay(0, 0.0)
    times = []
    nodes[1].on(str, lambda src, msg: times.append(sim.now))
    nodes[0].send(1, "x")
    sim.run_until_idle()
    assert times[0] < 0.1


def test_partition_blocks_directionally():
    sim, network, nodes = build()
    got = []
    nodes[1].on(str, lambda src, msg: got.append(msg))
    nodes[0].on(str, lambda src, msg: got.append(msg))
    network.block(0, 1)
    nodes[0].send(1, "lost")
    nodes[1].send(0, "through")
    sim.run_until_idle()
    assert got == ["through"]


def test_heal_restores_connectivity():
    sim, network, nodes = build()
    got = []
    nodes[1].on(str, lambda src, msg: got.append(msg))
    network.block(0, 1)
    network.heal()
    nodes[0].send(1, "x")
    sim.run_until_idle()
    assert got == ["x"]


def test_duplicate_node_id_rejected():
    sim, network, nodes = build()
    with pytest.raises(ValueError):
        Node(sim, 0, network)


def test_unknown_source_raises():
    sim, network, nodes = build()
    with pytest.raises(ValueError):
        network.send(99, 0, "x")


def test_unknown_destination_dropped_silently():
    sim, network, nodes = build()
    nodes[0].send(99, "x")
    sim.run_until_idle()
    assert network.stats.messages_dropped == 1


def test_stats_counters():
    sim, network, nodes = build()
    nodes[1].on(str, lambda src, msg: None)
    nodes[0].send(1, "x", size=123)
    sim.run_until_idle()
    assert network.stats.messages_sent == 1
    assert network.stats.messages_delivered == 1
    assert network.stats.bytes_sent == 123


def test_kind_tracking():
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.01), track_kinds=True)
    nodes = [Node(sim, i, network) for i in range(2)]
    nodes[0].send(1, "x")
    nodes[0].send(1, 42)
    sim.run_until_idle()
    assert network.stats.by_kind == {"str": 1, "int": 1}


def test_unknown_message_type_ignored():
    sim, network, nodes = build()
    nodes[0].send(1, object())
    sim.run_until_idle()  # must not raise


def test_timer_suppressed_after_crash():
    sim, network, nodes = build()
    fired = []
    nodes[0].set_timer(1.0, fired.append, True)
    network.crash(0)
    sim.run_until_idle()
    assert fired == []


# ---------------------------------------------------------------------------
# Arrival-train broadcast: one calendar entry, unchanged delivery history
# ---------------------------------------------------------------------------

def _broadcast_history(n, train_min, monkeypatch, latency_delay=0.01,
                       block=(), crash_at=None):
    """Delivery history of staggered all-to-all broadcasts on n nodes."""
    monkeypatch.setattr(Network, "TRAIN_MIN", train_min)
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(latency_delay))
    nodes = [Node(sim, i, network) for i in range(n)]
    history = []
    for node in nodes:
        node.on(tuple, lambda src, msg, _id=node.node_id:
                history.append((sim.now, src, _id, msg)))
    for a, b in block:
        network.block(a, b)
    for node in nodes:
        targets = [p.node_id for p in nodes if p is not node]
        sim.schedule(0.001 * node.node_id, node.broadcast, targets,
                     ("payload", node.node_id), 120)
    if crash_at is not None:
        victim, at = crash_at
        sim.schedule(at, network.crash, victim)
    sim.run_until_idle()
    return history, sim.events_executed, sim.now, network.stats.messages_dropped


@pytest.mark.parametrize("n", [10, 16])
def test_train_history_identical_to_per_copy(monkeypatch, n):
    train = _broadcast_history(n, 2, monkeypatch)
    per_copy = _broadcast_history(n, 10**9, monkeypatch)
    assert train == per_copy


def test_train_respects_partitions(monkeypatch):
    blocked = {(0, 3), (0, 7), (2, 5)}
    train = _broadcast_history(10, 2, monkeypatch, block=blocked)
    per_copy = _broadcast_history(10, 10**9, monkeypatch, block=blocked)
    assert train == per_copy
    assert train[3] == per_copy[3] != 0


def test_train_drops_at_crashed_destination(monkeypatch):
    crash = (4, 0.012)  # mid-flight: some arrivals at node 4 are dropped
    train = _broadcast_history(10, 2, monkeypatch, crash_at=crash)
    per_copy = _broadcast_history(10, 10**9, monkeypatch, crash_at=crash)
    assert train == per_copy


def test_train_single_calendar_entry_per_broadcast(monkeypatch):
    monkeypatch.setattr(Network, "TRAIN_MIN", 2)
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.01))
    nodes = [Node(sim, i, network) for i in range(12)]
    nodes[0].broadcast([n.node_id for n in nodes[1:]], "x", 100)
    # 11 in-flight arrivals ride one train entry (the per-copy engine
    # would hold 11).
    assert sim.pending == 1
    got = []
    nodes[5].on(str, lambda src, msg: got.append(msg))
    sim.run_until_idle()
    assert got == ["x"]
