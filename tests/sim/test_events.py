"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim.events import SimulationError, Simulator


def test_schedule_and_run_in_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(1.5, order.append, "middle")
    sim.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert sim.now == 2.0


def test_ties_break_by_schedule_order():
    sim = Simulator()
    order = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, order.append, label)
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_run_until_bound_advances_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, True)
    executed = sim.run(until=3.0)
    assert executed == 0
    assert fired == []
    assert sim.now == 3.0
    sim.run(until=6.0)
    assert fired == [True]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until_idle()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0.5, order.append, "nested")

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert order == ["first", "nested"]
    assert sim.now == 1.5


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_max_events_limit():
    sim = Simulator()

    def loop():
        sim.schedule(0.001, loop)

    sim.schedule(0.0, loop)
    executed = sim.run(max_events=10)
    assert executed == 10


def test_run_until_idle_raises_on_runaway():
    sim = Simulator()

    def loop():
        sim.schedule(0.001, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0.0, reenter)
    sim.run_until_idle()
    assert len(errors) == 1


def test_determinism_same_schedule_same_history():
    def run_once():
        sim = Simulator()
        seen = []
        for index in range(50):
            sim.schedule(0.1 * (index % 7), seen.append, index)
        sim.run_until_idle()
        return seen

    assert run_once() == run_once()


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(0.1, lambda: None)
    sim.run_until_idle()
    assert sim.events_executed == 5
