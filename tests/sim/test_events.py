"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim.events import SimulationError, Simulator


def test_schedule_and_run_in_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(1.5, order.append, "middle")
    sim.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert sim.now == 2.0


def test_ties_break_by_schedule_order():
    sim = Simulator()
    order = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, order.append, label)
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_run_until_bound_advances_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, True)
    executed = sim.run(until=3.0)
    assert executed == 0
    assert fired == []
    assert sim.now == 3.0
    sim.run(until=6.0)
    assert fired == [True]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until_idle()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0.5, order.append, "nested")

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert order == ["first", "nested"]
    assert sim.now == 1.5


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_max_events_limit():
    sim = Simulator()

    def loop():
        sim.schedule(0.001, loop)

    sim.schedule(0.0, loop)
    executed = sim.run(max_events=10)
    assert executed == 10


def test_run_until_idle_raises_on_runaway():
    sim = Simulator()

    def loop():
        sim.schedule(0.001, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0.0, reenter)
    sim.run_until_idle()
    assert len(errors) == 1


def test_determinism_same_schedule_same_history():
    def run_once():
        sim = Simulator()
        seen = []
        for index in range(50):
            sim.schedule(0.1 * (index % 7), seen.append, index)
        sim.run_until_idle()
        return seen

    assert run_once() == run_once()


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(0.1, lambda: None)
    sim.run_until_idle()
    assert sim.events_executed == 5


# ---------------------------------------------------------------------------
# Heap hygiene: cancelled-entry accounting and compaction
# ---------------------------------------------------------------------------

def test_pending_reports_live_vs_cancelled():
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert (sim.pending, sim.pending_live, sim.pending_cancelled) == (10, 10, 0)
    for event in events[:4]:
        event.cancel()
    assert (sim.pending, sim.pending_live, sim.pending_cancelled) == (10, 6, 4)
    sim.run_until_idle()
    assert (sim.pending, sim.pending_live, sim.pending_cancelled) == (0, 0, 0)


def test_cancel_after_fire_keeps_counters_sane():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    event.cancel()  # too late: entry already left the queue
    assert sim.pending_cancelled == 0


def test_compaction_reclaims_dominating_cancellations():
    sim = Simulator()
    keep = [sim.schedule(100.0 + i, lambda: None) for i in range(10)]
    doomed = [sim.schedule(200.0 + i, lambda: None) for i in range(200)]
    assert sim.pending == 210
    for event in doomed:
        event.cancel()
    # Cancelled entries exceeded half the heap: the queue was compacted
    # without waiting for the far-future timestamps to be reached.
    assert sim.compactions >= 1
    assert sim.pending < 60
    assert sim.pending_live == 10
    executed = sim.run_until_idle()
    assert executed == 10
    assert keep  # silence unused warning


def test_compaction_preserves_execution_order():
    sim = Simulator()
    order = []
    events = [
        sim.schedule(1.0 + (i % 7) * 0.25, order.append, i) for i in range(300)
    ]
    for i, event in enumerate(events):
        if i % 3 != 0:
            event.cancel()
    assert sim.compactions >= 1
    sim.run_until_idle()
    # Reference: a simulator that never scheduled the cancelled events at
    # all (same times, same relative order of survivors).
    reference_sim = Simulator()
    reference_order = []
    for i in range(300):
        if i % 3 == 0:
            reference_sim.schedule(1.0 + (i % 7) * 0.25, reference_order.append, i)
    reference_sim.run_until_idle()
    assert order == reference_order


def test_compaction_during_run_is_safe():
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(50.0 + i, lambda: None) for i in range(150)]

    def cancel_all():
        for event in doomed:
            event.cancel()
        fired.append("cancelled")

    sim.schedule(1.0, cancel_all)
    sim.schedule(2.0, fired.append, "after")
    sim.run_until_idle()
    assert fired == ["cancelled", "after"]
    assert sim.compactions >= 1
