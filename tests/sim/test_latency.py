"""Unit tests for latency models."""

import pytest

from repro.sim.latency import (
    EUROPE_REGIONS,
    ConstantLatency,
    RegionLatency,
    UniformLatency,
    europe_wan,
)


def test_constant_latency():
    model = ConstantLatency(0.02)
    assert model.sample(0, 1) == 0.02
    assert model.expected(3, 7) == 0.02


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.01, 0.03, seed=1)
    for _ in range(100):
        sample = model.sample(0, 1)
        assert 0.01 <= sample <= 0.03
    assert model.expected(0, 1) == pytest.approx(0.02)


def test_uniform_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformLatency(0.05, 0.01)


def test_uniform_deterministic_with_seed():
    a = UniformLatency(0.01, 0.03, seed=7)
    b = UniformLatency(0.01, 0.03, seed=7)
    assert [a.sample(0, 1) for _ in range(10)] == [b.sample(0, 1) for _ in range(10)]


def test_region_intra_vs_inter():
    model = europe_wan(8, seed=3, jitter=0.0)
    intra = []
    inter = []
    for a in range(8):
        for b in range(8):
            if a == b:
                continue
            delay = model.sample(a, b)
            if model.region_of(a) == model.region_of(b):
                intra.append(delay)
            else:
                inter.append(delay)
    assert intra and inter
    assert max(intra) < min(inter)


def test_region_symmetry_without_jitter():
    model = europe_wan(8, seed=3, jitter=0.0)
    for a in range(8):
        for b in range(8):
            assert model.sample(a, b) == model.sample(b, a)


def test_europe_wan_rtt_close_to_paper():
    """Paper §VI-B: average inter-region RTT around 20 ms."""
    model = europe_wan(16, seed=1, jitter=0.0)
    inter = [
        2 * model.sample(a, b)
        for a in range(16)
        for b in range(16)
        if a != b and model.region_of(a) != model.region_of(b)
    ]
    average_rtt = sum(inter) / len(inter)
    assert 0.008 <= average_rtt <= 0.030


def test_jitter_stays_within_fraction():
    model = europe_wan(8, seed=2, jitter=0.1)
    for _ in range(200):
        base = model.base_delay(0, 1)
        sample = model.sample(0, 1)
        assert 0.9 * base <= sample <= 1.1 * base


def test_all_four_regions_used():
    model = europe_wan(12, seed=4)
    used = {model.region_of(i) for i in range(12)}
    assert used == set(EUROPE_REGIONS)


# ---------------------------------------------------------------------------
# Lookahead contract (min_delay) and pair-decomposable sampling
# ---------------------------------------------------------------------------

def test_min_delay_contract():
    from repro.sim.latency import LatencyModel

    assert LatencyModel().min_delay() == 0.0  # base: no lookahead
    assert ConstantLatency(0.02).min_delay() == 0.02
    assert UniformLatency(0.005, 0.02).min_delay() == 0.005
    wan = europe_wan(16, seed=3)
    floor = wan.min_delay()
    assert floor > 0
    for src in range(16):
        for dst in range(16):
            if src != dst:
                for _ in range(5):
                    assert wan.sample(src, dst) >= floor


def test_min_delay_without_jitter_is_intra_region():
    wan = europe_wan(8, seed=0, jitter=0.0)
    assert wan.min_delay() == pytest.approx(0.00035)


def test_pair_decomposable_flags():
    assert ConstantLatency(0.01).pair_decomposable
    assert not UniformLatency(0.001, 0.002).pair_decomposable
    assert UniformLatency(0.001, 0.002, pair_streams=True).pair_decomposable
    assert not europe_wan(8, seed=1).pair_decomposable
    assert europe_wan(8, seed=1, pair_streams=True).pair_decomposable
    assert europe_wan(8, seed=1, jitter=0.0).pair_decomposable  # no entropy


def test_pair_streams_independent_of_interleaving():
    """A pair's n-th draw must not depend on other pairs' sampling order —
    the property sharded execution relies on."""
    a = europe_wan(8, seed=5, pair_streams=True)
    b = europe_wan(8, seed=5, pair_streams=True)
    # a: sample pair (0, 1) five times straight.
    direct = [a.sample(0, 1) for _ in range(5)]
    # b: interleave with heavy traffic on other pairs.
    interleaved = []
    for round_index in range(5):
        for src in range(8):
            for dst in range(8):
                if src != dst and (src, dst) != (0, 1):
                    b.sample(src, dst)
        interleaved.append(b.sample(0, 1))
    assert direct == interleaved


def test_pair_streams_differ_across_pairs_and_seeds():
    wan = europe_wan(8, seed=5, pair_streams=True)
    other_seed = europe_wan(8, seed=6, pair_streams=True)
    assert wan.sample(0, 1) != wan.sample(1, 0)
    assert wan.sample(0, 2) != other_seed.sample(0, 2)


def test_continuous_delays_flags():
    assert not ConstantLatency(0.01).continuous_delays
    assert UniformLatency(0.001, 0.002).continuous_delays
    assert not UniformLatency(0.002, 0.002).continuous_delays
    assert europe_wan(8, seed=1).continuous_delays
    assert not europe_wan(8, seed=1, jitter=0.0).continuous_delays


def test_min_delay_single_region_mesh():
    model = RegionLatency(["solo"], {}, intra_delay=0.0004, jitter=0.0)
    assert model.min_delay() == pytest.approx(0.0004)


# ---------------------------------------------------------------------------
# Per-channel lookaheads and the hierarchical shard partition
# ---------------------------------------------------------------------------

def test_pair_min_delay_bounds_samples():
    wan = europe_wan(16, seed=7, pair_streams=True)
    for src in range(16):
        for dst in range(16):
            if src != dst:
                floor = wan.pair_min_delay(src, dst)
                assert floor > 0
                for _ in range(5):
                    assert wan.sample(src, dst) >= floor


def test_channel_lookaheads_wide_across_regions():
    """With whole regions per shard, every channel's floor is an
    inter-region delay — far above the global min_delay."""
    wan = europe_wan(16, seed=1, pair_streams=True)
    node_ids = list(range(16))
    owner, _scalar = wan.shard_partition(node_ids, 4)
    floors = wan.channel_lookaheads(node_ids, owner)
    shards = sorted(set(owner.values()))
    assert set(floors) == {
        (p, q) for p in shards for q in shards if p != q
    }
    for floor in floors.values():
        assert floor >= 0.004  # inter-region, not the ~0.315 ms intra floor
    assert min(floors.values()) > wan.min_delay()


def test_channel_lookaheads_empty_shard_is_inf():
    """A shard present in the owner map but owning none of the sweep's
    node_ids has no crossing pairs: its channels must be inf (never
    constraining), while populated channels stay finite."""
    wan = europe_wan(8, seed=1, pair_streams=True)
    node_ids = list(range(8))
    owner = {node: (0 if node < 4 else 1) for node in node_ids}
    owner[99] = 2  # node 99 is not in node_ids: shard 2 stays empty
    floors = wan.channel_lookaheads(node_ids, owner)
    for (p, q), floor in floors.items():
        if 2 in (p, q):
            assert floor == float("inf")
        else:
            assert 0 < floor < float("inf")


def test_split_regions_partition_properties():
    """shards > regions: hierarchical sub-splitting must be deterministic,
    dense, population-proportional, and channel-pacing friendly."""
    wan = europe_wan(48, seed=2, pair_streams=True)
    node_ids = list(range(48))
    owner, scalar = wan.shard_partition(node_ids, 8)
    again, _ = wan.shard_partition(list(node_ids), 8)
    assert owner == again  # deterministic
    assert set(owner.values()) == set(range(8))  # dense indices, all used
    # Sub-shards of one region are contiguous blocks; nodes of a region
    # only appear in that region's block.
    shard_regions = {}
    for node, shard in owner.items():
        region = wan.region_of(node)
        shard_regions.setdefault(shard, set()).add(region)
    assert all(len(regions) == 1 for regions in shard_regions.values())
    # The scalar lookahead collapses to the intra-region floor...
    assert scalar == pytest.approx(0.00035 * 0.9)
    # ...but per-channel floors stay wide wherever regions differ.
    floors = wan.channel_lookaheads(node_ids, owner)
    for (p, q), floor in floors.items():
        if shard_regions[p] == shard_regions[q]:
            assert floor == pytest.approx(scalar, rel=1e-9)
        else:
            assert floor >= 0.004


def test_split_regions_more_shards_than_nodes():
    """Empty sub-shards are permitted; their channels are inf."""
    wan = europe_wan(6, seed=3, pair_streams=True)
    node_ids = list(range(6))
    owner, _ = wan.shard_partition(node_ids, 8)
    assert set(owner.values()) <= set(range(8))
    populated = set(owner.values())
    floors = wan.channel_lookaheads(node_ids, owner)
    # channel_lookaheads only sees populated shards via the owner map;
    # every populated-to-populated channel must be finite and positive.
    for (p, q), floor in floors.items():
        assert p in populated and q in populated
        assert 0 < floor < float("inf")
