"""Unit tests for latency models."""

import pytest

from repro.sim.latency import (
    EUROPE_REGIONS,
    ConstantLatency,
    RegionLatency,
    UniformLatency,
    europe_wan,
)


def test_constant_latency():
    model = ConstantLatency(0.02)
    assert model.sample(0, 1) == 0.02
    assert model.expected(3, 7) == 0.02


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.01, 0.03, seed=1)
    for _ in range(100):
        sample = model.sample(0, 1)
        assert 0.01 <= sample <= 0.03
    assert model.expected(0, 1) == pytest.approx(0.02)


def test_uniform_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformLatency(0.05, 0.01)


def test_uniform_deterministic_with_seed():
    a = UniformLatency(0.01, 0.03, seed=7)
    b = UniformLatency(0.01, 0.03, seed=7)
    assert [a.sample(0, 1) for _ in range(10)] == [b.sample(0, 1) for _ in range(10)]


def test_region_intra_vs_inter():
    model = europe_wan(8, seed=3, jitter=0.0)
    intra = []
    inter = []
    for a in range(8):
        for b in range(8):
            if a == b:
                continue
            delay = model.sample(a, b)
            if model.region_of(a) == model.region_of(b):
                intra.append(delay)
            else:
                inter.append(delay)
    assert intra and inter
    assert max(intra) < min(inter)


def test_region_symmetry_without_jitter():
    model = europe_wan(8, seed=3, jitter=0.0)
    for a in range(8):
        for b in range(8):
            assert model.sample(a, b) == model.sample(b, a)


def test_europe_wan_rtt_close_to_paper():
    """Paper §VI-B: average inter-region RTT around 20 ms."""
    model = europe_wan(16, seed=1, jitter=0.0)
    inter = [
        2 * model.sample(a, b)
        for a in range(16)
        for b in range(16)
        if a != b and model.region_of(a) != model.region_of(b)
    ]
    average_rtt = sum(inter) / len(inter)
    assert 0.008 <= average_rtt <= 0.030


def test_jitter_stays_within_fraction():
    model = europe_wan(8, seed=2, jitter=0.1)
    for _ in range(200):
        base = model.base_delay(0, 1)
        sample = model.sample(0, 1)
        assert 0.9 * base <= sample <= 1.1 * base


def test_all_four_regions_used():
    model = europe_wan(12, seed=4)
    used = {model.region_of(i) for i in range(12)}
    assert used == set(EUROPE_REGIONS)
