"""Unit tests for the intra-simulation sharded engine (repro.sim.shard).

The load-bearing property is byte-identity: the merged results and state
fingerprints of a sharded run must equal the serial engine's bit for bit
(same RunResult floats, same SHA-256 state fingerprints), for any shard
count.  Fresh-interpreter / hash-seed / shard-count matrix coverage lives
in tests/integration/test_determinism.py; these tests cover the engine
mechanics in-process.
"""

import pytest

from repro.bench.runner import run_open_loop
from repro.bench.systems import SYSTEM_BUILDERS
from repro.sim.latency import ConstantLatency, europe_wan
from repro.sim.shard import (
    ShardedOpenLoop,
    ShardingUnsupported,
    _ChannelClocks,
    _WorkerState,
    resolve_shards,
    shard_owner,
    state_fingerprints,
)


def _result_key(result):
    return (
        result.offered,
        result.achieved,
        result.injected,
        result.confirmed,
        result.duration,
        result.latency.count,
        result.latency.mean.hex() if result.latency.count else None,
        result.latency.p95.hex() if result.latency.count else None,
    )


def _serial_reference(system, size, seed, probes):
    built = SYSTEM_BUILDERS[system](size, seed=seed)
    results = []
    for rate, duration, warmup in probes:
        results.append(
            run_open_loop(built, rate=rate, duration=duration, warmup=warmup,
                          seed=seed)
        )
    return (
        [_result_key(result) for result in results],
        state_fingerprints(built),
        {replica.node_id: replica.settled_count for replica in built.replicas},
    )


def _sharded(system, size, seed, probes, shards):
    spec = dict(system=system, size=size, seed=seed, builder_kwargs=None)
    with ShardedOpenLoop(spec, shards=shards) as cluster:
        results = []
        for index, (rate, duration, warmup) in enumerate(probes):
            results.append(
                cluster.probe(rate=rate, duration=duration, warmup=warmup,
                              fresh=(index == 0), seed=seed)
            )
        merged = cluster.fingerprint()
    return [_result_key(result) for result in results], merged


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------


def test_resolve_shards_env(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SHARDS", raising=False)
    assert resolve_shards() == 1
    monkeypatch.setenv("REPRO_SIM_SHARDS", "3")
    assert resolve_shards() == 3
    assert resolve_shards(2) == 2  # explicit argument wins
    monkeypatch.setenv("REPRO_SIM_SHARDS", "auto")
    assert resolve_shards() >= 1
    monkeypatch.setenv("REPRO_SIM_SHARDS", "zebra")
    with pytest.raises(ValueError):
        resolve_shards()
    with pytest.raises(ValueError):
        resolve_shards(0)


def test_resolve_shards_auto_scales_with_cpus(monkeypatch):
    """Per-channel pacing scales past one shard per WAN region (regions
    split into sub-shards), so ``auto`` follows the core count — capped
    only by the all-to-all floor-chatter ceiling."""
    import repro.bench.parallel as parallel
    from repro.sim.shard import _AUTO_SHARD_CAP

    monkeypatch.setenv("REPRO_SIM_SHARDS", "auto")
    monkeypatch.setattr(parallel, "usable_cpus", lambda: 6)
    assert resolve_shards() == 6  # no longer capped at the region count
    monkeypatch.setattr(parallel, "usable_cpus", lambda: 64)
    assert resolve_shards() == _AUTO_SHARD_CAP
    monkeypatch.setenv("REPRO_SIM_SHARDS", "16")  # explicit: honored
    assert resolve_shards() == 16


def test_shard_owner_partitions_evenly():
    shards = 4
    owners = [shard_owner(node, shards) for node in range(32)]
    assert set(owners) == set(range(shards))
    for shard in range(shards):
        assert owners.count(shard) == 32 // shards


def test_single_shard_rejected():
    with pytest.raises(ValueError):
        ShardedOpenLoop(dict(system="astro2", size=4, seed=0), shards=1)


def test_bft_rejected():
    with pytest.raises(ShardingUnsupported):
        ShardedOpenLoop(dict(system="bft", size=4, seed=0), shards=2)


# ---------------------------------------------------------------------------
# Channel clocks (CMB null-message pacing)
# ---------------------------------------------------------------------------


def test_channel_clock_null_message_refresh():
    """A peer's advertised floor advances its clock monotonically; stale
    floors (possible when a payload ships without a floor advance) are
    ignored rather than rewinding the horizon."""
    clocks = _ChannelClocks({1: 0.004, 2: 0.010}, start=0.0)
    assert clocks.horizon() == pytest.approx(0.004)
    assert clocks.update(1, 0.5) is True
    assert clocks.horizon() == pytest.approx(min(0.5 + 0.004, 0.0 + 0.010))
    assert clocks.update(1, 0.2) is False  # stale: no rewind
    assert clocks.clock[1] == 0.5
    assert clocks.update(2, 1.0) is True
    assert clocks.horizon() == pytest.approx(0.5 + 0.004)


def test_channel_clock_stalled_channel_pins_horizon():
    """A channel that never refreshes pins the horizon at its last clock
    plus its lookahead, no matter how far the other channels advance."""
    clocks = _ChannelClocks({1: 0.004, 2: 0.010}, start=0.0)
    clocks.update(2, 100.0)
    assert clocks.horizon() == pytest.approx(0.004)
    assert not clocks.all_at_least(0.01)
    clocks.update(1, 50.0)
    assert clocks.horizon() == pytest.approx(50.004)
    assert clocks.all_at_least(50.0)
    assert not clocks.all_at_least(50.5)


def test_channel_clock_unpopulated_and_empty():
    """An unpopulated channel (inf lookahead) never constrains, and a
    shard with no incoming channels at all is unbounded — the empty-shard
    decoupling the hierarchical partition relies on."""
    clocks = _ChannelClocks({1: float("inf"), 2: 0.01}, start=0.0)
    assert clocks.horizon() == pytest.approx(0.01)
    clocks.update(2, 3.0)
    assert clocks.horizon() == pytest.approx(3.01)  # inf channel invisible
    lonely = _ChannelClocks({}, start=0.0)
    assert lonely.horizon() == float("inf")
    assert lonely.all_at_least(1e9)


# ---------------------------------------------------------------------------
# Worker build guards
# ---------------------------------------------------------------------------


def _with_temp_builder(name, builder):
    SYSTEM_BUILDERS[name] = builder
    return name


def test_no_lookahead_rejected():
    name = _with_temp_builder(
        "_test_zero_delay",
        lambda size, seed=0, **kw: _astro2_with_latency(
            size, seed, ConstantLatency(0.0)
        ),
    )
    try:
        state = _WorkerState(dict(system=name, size=4, seed=0), 0, 2)
        with pytest.raises(ShardingUnsupported, match="no\\s+lookahead"):
            state.build()
    finally:
        del SYSTEM_BUILDERS[name]


def test_non_pair_decomposable_rejected():
    name = _with_temp_builder(
        "_test_shared_rng",
        lambda size, seed=0, **kw: _astro2_with_latency(
            size, seed, europe_wan(size + 64, seed=seed, pair_streams=False)
        ),
    )
    try:
        state = _WorkerState(dict(system=name, size=4, seed=0), 0, 2)
        with pytest.raises(ShardingUnsupported, match="pair-decomposable"):
            state.build()
    finally:
        del SYSTEM_BUILDERS[name]


def test_tie_prone_latency_rejected():
    """Constant delays produce exact arrival-time ties whose order would
    depend on the shard partition — the worker must refuse them."""
    name = _with_temp_builder(
        "_test_constant_delay",
        lambda size, seed=0, **kw: _astro2_with_latency(
            size, seed, ConstantLatency(0.01)
        ),
    )
    try:
        state = _WorkerState(dict(system=name, size=4, seed=0), 0, 2)
        with pytest.raises(ShardingUnsupported, match="ties"):
            state.build()
    finally:
        del SYSTEM_BUILDERS[name]


def _astro2_with_latency(size, seed, latency):
    from repro.core.system import Astro2System
    from repro.workloads.uniform import uniform_genesis

    return Astro2System(
        num_replicas=size,
        genesis=uniform_genesis(size * 4),
        seed=seed,
        latency=latency,
    )


def test_find_peak_job_falls_back_to_serial_on_unshardable_model(monkeypatch):
    """A worker-side ShardingUnsupported (relayed through the
    coordinator) must degrade the whole cell to the serial engine, not
    crash the benchmark job.

    The astro2 builder itself is patched to a tie-prone constant-latency
    model: fork workers inherit the patch, reject the build, and the job
    must still return a serial PeakResult.  (Linux/fork only — under
    spawn the workers would re-import the real builder.)
    """
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("builder patch only reaches workers under fork")
    from repro.bench.parallel import ScenarioJob, run_unit

    monkeypatch.setitem(
        SYSTEM_BUILDERS, "astro2",
        lambda size, seed=0, **kw: _astro2_with_latency(
            size, seed, ConstantLatency(0.01)
        ),
    )
    result = run_unit(ScenarioJob(
        kind="find_peak",
        params=dict(system="astro2", size=4, start_rate=500.0,
                    duration=0.4, warmup=0.3, refine_steps=0,
                    payment_budget=2000, max_probes=2,
                    sim_shards=2,
                    builder_kwargs=None),
        seed=3,
    ))
    assert result.probes  # the serial engine ran the search


# ---------------------------------------------------------------------------
# Byte-identity vs the serial engine
# ---------------------------------------------------------------------------

#: Two-probe chain: the second probe is warm (fresh=False) when the
#: first quiesced, exercising the worker-held system reuse path.
_PROBES = [(900.0, 0.6, 0.3), (1400.0, 0.6, 0.3)]


@pytest.mark.parametrize("shards", [2, 3, 4, 8])
def test_sharded_astro2_byte_identical(shards):
    # shards=8 > the 6-node population: the hierarchical partition emits
    # empty sub-shards whose channels carry inf lookaheads — the async
    # engine must keep byte-identity straight through them.
    serial_results, serial_state, serial_settled = _serial_reference(
        "astro2", 6, 13, _PROBES
    )
    sharded_results, merged = _sharded("astro2", 6, 13, _PROBES, shards)
    assert sharded_results == serial_results
    assert merged["state"] == serial_state
    assert merged["settled"] == serial_settled


def test_sharded_astro1_byte_identical():
    serial_results, serial_state, serial_settled = _serial_reference(
        "astro1", 6, 13, _PROBES
    )
    sharded_results, merged = _sharded("astro1", 6, 13, _PROBES, 2)
    assert sharded_results == serial_results
    assert merged["state"] == serial_state
    assert merged["settled"] == serial_settled


def test_fresh_probe_rebuilds_identically():
    """fresh=True must reset the worker fleet to the exact initial state:
    probing twice with fresh=True yields identical results."""
    spec = dict(system="astro2", size=5, seed=21, builder_kwargs=None)
    with ShardedOpenLoop(spec, shards=2) as cluster:
        first = cluster.probe(rate=700.0, duration=0.5, warmup=0.3, fresh=True)
        second = cluster.probe(rate=700.0, duration=0.5, warmup=0.3, fresh=True)
    assert _result_key(first) == _result_key(second)
