"""Unit tests for measurement utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import Counter, LatencyRecorder, ThroughputMeter


class TestLatencyRecorder:
    def test_summary_of_known_samples(self):
        recorder = LatencyRecorder()
        for value in (0.1, 0.2, 0.3, 0.4):
            recorder.record_value(value)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.max == pytest.approx(0.4)
        assert summary.p50 == pytest.approx(0.25)

    def test_window_filters_on_completion_time(self):
        recorder = LatencyRecorder(window_start=1.0, window_end=2.0)
        recorder.record(0.5, 0.9)   # completes before the window
        recorder.record(0.9, 1.5)   # inside
        recorder.record(1.9, 2.5)   # after
        assert recorder.count == 1
        assert recorder.summary().mean == pytest.approx(0.6)

    def test_empty_summary_is_nan(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record_value(0.1)
        recorder.reset()
        assert recorder.count == 0

    def test_as_dict_round_trip(self):
        recorder = LatencyRecorder()
        recorder.record_value(0.2)
        data = recorder.summary().as_dict()
        assert data["count"] == 1
        assert data["p95"] == pytest.approx(0.2)

    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1, max_size=200))
    def test_percentiles_ordered(self, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record_value(sample)
        summary = recorder.summary()
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        epsilon = 1e-9
        assert min(samples) - epsilon <= summary.mean <= max(samples) + epsilon


class TestThroughputMeter:
    def test_series_counts_per_bucket(self):
        meter = ThroughputMeter(bucket_width=1.0)
        for at in (0.1, 0.5, 1.2, 2.9):
            meter.record(at)
        assert meter.series(0.0, 3.0) == [2.0, 1.0, 1.0]

    def test_rate_is_unbiased_for_unaligned_windows(self):
        meter = ThroughputMeter(bucket_width=0.25)
        # 100 completions/sec, uniformly.
        for index in range(300):
            meter.record(index / 100.0)
        assert meter.rate(0.8, 1.8) == pytest.approx(100.0, rel=0.05)

    def test_rate_empty_window(self):
        meter = ThroughputMeter()
        assert meter.rate(5.0, 5.0) == 0.0

    def test_rate_sub_bucket_window_not_fake_zero(self):
        """Regression: a window narrower than one aligned bucket used to
        return exactly 0.0 — which a tightly shrunk peak-search probe
        window misreads as 'zero achieved', i.e. fake saturation."""
        meter = ThroughputMeter(bucket_width=0.25)
        # 100 completions/sec, uniformly.
        for index in range(100):
            meter.record(index / 100.0)
        # [0.30, 0.45) holds no fully aligned 0.25s bucket.  Overlap
        # weighting makes the fallback exact for uniform traffic.
        assert meter.rate(0.30, 0.45) == pytest.approx(100.0)
        # A window shrunk far below the bucket width must not inflate the
        # reading (whole-bucket counting would report rate/width here).
        assert meter.rate(0.30, 0.32) == pytest.approx(100.0)

    def test_rate_sub_bucket_window_spanning_two_buckets(self):
        meter = ThroughputMeter(bucket_width=1.0)
        meter.record(0.9, count=3)
        meter.record(1.1, count=5)
        # [0.8, 1.2) spans two buckets, containing neither fully: each
        # edge bucket contributes its overlap fraction (0.2 of each).
        assert meter.rate(0.8, 1.2) == pytest.approx(
            (3 * 0.2 + 5 * 0.2) / 0.4
        )

    def test_rate_sub_bucket_empty_traffic_still_zero(self):
        meter = ThroughputMeter(bucket_width=1.0)
        assert meter.rate(0.2, 0.4) == 0.0

    def test_count_between(self):
        meter = ThroughputMeter(bucket_width=1.0)
        meter.record(0.5, count=3)
        meter.record(1.5, count=2)
        assert meter.count_between(0.0, 1.0) == 3
        assert meter.count_between(0.0, 2.0) == 5

    def test_total(self):
        meter = ThroughputMeter()
        meter.record(0.1)
        meter.record(0.2, count=4)
        assert meter.total == 5

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            ThroughputMeter(bucket_width=0.0)

    def test_reset(self):
        meter = ThroughputMeter()
        meter.record(1.0)
        meter.reset()
        assert meter.total == 0
        assert meter.series(0.0, 2.0) == [0.0, 0.0]

    @given(
        st.lists(st.floats(min_value=0.0, max_value=9.99), min_size=1, max_size=300)
    )
    def test_series_sum_equals_count(self, times):
        meter = ThroughputMeter(bucket_width=1.0)
        for at in times:
            meter.record(at)
        assert sum(meter.series(0.0, 10.0)) == pytest.approx(len(times))


class TestCounter:
    def test_incr_and_get(self):
        counter = Counter()
        counter.incr("x")
        counter.incr("x", 4)
        assert counter.get("x") == 5
        assert counter.get("missing") == 0

    def test_as_dict_and_reset(self):
        counter = Counter()
        counter.incr("a")
        assert counter.as_dict() == {"a": 1}
        counter.reset()
        assert counter.as_dict() == {}
