"""Adversarial scenario tests: the attacks the paper defends against."""


from repro.brb.batching import Batch
from repro.brb.signed import SbCommit, SbPrepare
from repro.core.payment import Payment
from repro.core.system import Astro1System, Astro2System
from repro.crypto.hashing import digest
from repro.crypto.signatures import sign


GENESIS = {"alice": 100, "bob": 0, "carol": 0, "dave": 0}


class TestDoubleSpend:
    def test_byzantine_client_reusing_seq_astro1(self):
        """A client submits two different payments with the same sequence
        number through a correct representative: the representative's
        FIFO batching + BRB ordering ensure only one settles."""
        system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=1)
        rep = system.representative_of("alice")
        rep.submit_local(Payment("alice", 1, "bob", 100))
        rep.submit_local(Payment("alice", 1, "carol", 100))
        system.settle_all()
        logs = {
            tuple(p.beneficiary for p in replica.state.xlog("alice"))
            for replica in system.replicas
        }
        assert logs == {("bob",)}
        assert system.balances_at(0)["carol"] == 0

    def test_byzantine_rep_equivocating_batches_astro1(self):
        system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=2)
        rep = system.representative_of("alice")
        a = Batch([Payment("alice", 1, "bob", 100)])
        b = Batch([Payment("alice", 1, "carol", 100)])
        rep.brb.broadcast(1, a, a.size_bytes)
        rep.brb.broadcast(2, b, b.size_bytes)
        system.settle_all()
        # FIFO delivery: every replica settles the first, sticks the second.
        for replica in system.replicas:
            assert [p.beneficiary for p in replica.state.xlog("alice")] == ["bob"]

    def test_byzantine_rep_equivocating_batches_astro2(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=3)
        rep = system.representative_of("alice")
        a = Batch([Payment("alice", 1, "bob", 100)])
        b = Batch([Payment("alice", 1, "carol", 100)])
        rep.brb.broadcast(1, a, a.size_bytes)
        rep.brb.broadcast(2, b, b.size_bytes)
        system.settle_all()
        settled = {
            tuple(p.beneficiary for p in replica.state.xlog("alice"))
            for replica in system.replicas
        }
        assert len(settled) == 1          # agreement
        assert len(settled.pop()) <= 1    # at most one spend


class TestForeignClientInjection:
    def test_byzantine_rep_cannot_broadcast_for_foreign_clients(self):
        """A Byzantine replica broadcasting payments of a client it does
        not represent is ignored by every correct replica (§II: only the
        representative may broadcast for a client's xlog)."""
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=4)
        alice_rep = system.directory.rep_of("alice")
        attacker = next(
            replica for replica in system.replicas
            if replica.node_id != alice_rep
        )
        batch = Batch([Payment("alice", 1, "bob", 100)])
        attacker.brb.broadcast(1, batch, batch.size_bytes)
        system.settle_all()
        assert system.settled_counts() == [0, 0, 0, 0]


class TestPartialPaymentsAttack:
    """§IV: the attack that motivates CREDIT dependencies.

    Alice's Byzantine representative sends the COMMIT for her payment to
    only part of the system.  Without totality, Bob's credit would be
    stranded; the dependency certificate (f+1 CREDITs) lets Bob's
    representative prove the payment and spend across the whole shard.
    """

    def test_credit_certificates_defeat_partial_commit(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=5)
        alice_rep = system.representative_of("alice")
        bob_rep = system.representative_of("bob")
        payment = Payment("alice", 1, "bob", 100)
        batch = Batch([payment])

        # Mount the attack manually: PREPARE to all (gathering acks),
        # then COMMIT withheld from one correct replica.
        others = [r for r in system.replicas if r is not alice_rep]
        excluded = next(r for r in others if r is not bob_rep)
        keys = {r.node_id: r.key for r in system.replicas}
        content = ("brb-ack", alice_rep.node_id, 1, batch.cached_digest)
        proof = tuple(
            sign(keys[r.node_id], content)
            for r in system.replicas if r is not excluded
        )
        prepare = SbPrepare(1, batch, 48 + batch.size_bytes)
        for replica in others:
            system.network.send(
                alice_rep.node_id, replica.node_id, prepare, size=prepare.size
            )
        # Silence the Byzantine representative so its honest protocol
        # endpoint cannot complete the broadcast on its own; briefly
        # revive it only to emit the partial COMMIT fan-out.
        system.network.crash(alice_rep.node_id)
        system.settle_all()
        commit = SbCommit(alice_rep.node_id, 1, batch.cached_digest, proof, 264)
        system.network.recover(alice_rep.node_id)
        for replica in others:
            if replica is excluded:
                continue
            system.network.send(
                alice_rep.node_id, replica.node_id, commit, size=264
            )
        system.network.crash(alice_rep.node_id)
        system.settle_all()

        # The payment settled at >= f+1 correct replicas but not all.
        settled_at = [r for r in system.replicas if r.settled_count == 1]
        assert excluded.settled_count == 0
        assert len(settled_at) >= 2  # f+1 with f=1

        # Bob's representative accumulated a dependency certificate from
        # the f+1 settlers — Bob can spend the money system-wide, even at
        # the replica that never delivered Alice's payment.
        assert bob_rep.available_balance("bob") == 100
        system.submit("bob", "carol", 100)
        system.settle_all()
        for replica in system.replicas:
            if replica is alice_rep:
                continue  # the Byzantine representative is dead
            assert replica.state.xlog("bob").last_seq == 1, (
                f"replica {replica.node_id} failed to settle Bob's spend"
            )

    def test_replayed_certificate_credits_once(self):
        """Replay protection (usedDeps, Listing 9): re-attaching the same
        certificate to a later payment must not double-deposit."""
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=6)
        system.submit("alice", "bob", 60)
        system.settle_all()
        system.submit("bob", "carol", 50)   # consumes the certificate
        system.settle_all()
        bob_rep = system.representative_of("bob")
        # Byzantine rep replays the used certificate on a new payment.
        used_cert = system.replica(0).state.xlog("bob")[0].deps[0]
        replayed = Payment("bob", 2, "dave", 10, deps=(used_cert,))
        batch = Batch([replayed])
        bob_rep.brb.broadcast(
            bob_rep._broadcast_seq + 1, batch, batch.size_bytes
        )
        bob_rep._broadcast_seq += 1
        system.settle_all()
        # The replayed certificate adds nothing: bob had 10 left, spends 10.
        assert system.total_value() == 100
        assert system.balances_at(0)["bob"] == 0


class TestByzantineFloods:
    def test_garbage_messages_do_not_crash_replicas(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=7)

        class Garbage:
            pass

        for replica in system.replicas:
            system.network.send(0, replica.node_id, Garbage(), size=64)
        system.submit("alice", "bob", 5)
        system.settle_all()
        assert system.settled_counts() == [1, 1, 1, 1]

    def test_bogus_commit_flood_rejected(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=8)
        attacker = system.replicas[3]
        for seq in range(1, 6):
            bogus = SbCommit(0, seq, digest(("junk", seq)), (), 100)
            for replica in system.replicas[:3]:
                system.network.send(
                    attacker.node_id, replica.node_id, bogus, size=100
                )
        system.submit("alice", "bob", 5)
        system.settle_all()
        assert all(count == 1 for count in system.settled_counts())
