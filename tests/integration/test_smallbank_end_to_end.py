"""End-to-end Smallbank runs over the real systems (§VI-C2 semantics)."""


from repro.core.system import Astro2System
from repro.sim.metrics import ThroughputMeter
from repro.workloads.drivers import OpenLoopDriver
from repro.workloads.smallbank import (
    SmallbankWorkload,
    bank,
    checking,
    savings,
    shard_assignment,
    smallbank_genesis,
)

OWNERS = 8
SHARDS = 2


def build(shards=SHARDS):
    genesis = smallbank_genesis(OWNERS, num_shards=shards, balance=10**6)
    system = Astro2System(
        num_replicas=4,
        num_shards=shards,
        genesis=genesis,
        seed=13,
        shard_assignment=shard_assignment(OWNERS, shards),
    )
    workload = SmallbankWorkload(OWNERS, num_shards=shards, seed=13)
    return system, workload, genesis


def test_smallbank_settles_and_conserves():
    system, workload, genesis = build()
    meter = ThroughputMeter()
    driver = OpenLoopDriver(
        system, workload, rate=800.0, duration=2.0, meter=meter
    )
    system.run(3.0)
    system.settle_all()
    assert driver.confirmed > 0.9 * driver.injected
    assert system.total_value() == sum(genesis.values())


def test_smallbank_owner_accounts_stay_in_one_shard():
    system, workload, genesis = build()
    for owner in range(OWNERS):
        assert system.directory.shard_of_client(
            checking(owner)
        ) == system.directory.shard_of_client(savings(owner))


def test_smallbank_cross_shard_transactions_settle():
    system, workload, genesis = build()
    driver = OpenLoopDriver(system, workload, rate=800.0, duration=2.5)
    system.run(3.5)
    system.settle_all()
    assert workload.cross_shard_sent > 0
    # Cross-shard credits became spendable dependencies or balances; the
    # global invariant covers both.
    assert system.total_value() == sum(genesis.values())


def test_smallbank_transaction_types_touch_expected_accounts():
    system, workload, genesis = build(shards=1)
    seen_kinds = set()
    for _ in range(300):
        operation = workload.next()
        if operation is None:
            seen_kinds.add("balance")
            continue
        spender, beneficiary, amount = operation
        if spender[0] == "bank":
            seen_kinds.add("deposit_checking")
        elif beneficiary[0] == "bank":
            seen_kinds.add("write_check")
        elif spender[2] == "savings":
            seen_kinds.add("amalgamate")
        elif beneficiary[2] == "savings":
            seen_kinds.add("transact_savings")
        else:
            seen_kinds.add("send_payment")
    assert seen_kinds == {
        "balance",
        "deposit_checking",
        "write_check",
        "amalgamate",
        "transact_savings",
        "send_payment",
    }
