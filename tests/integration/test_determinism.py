"""Determinism: identical seeds produce identical histories.

The simulator's core promise — every experiment is reproducible from its
seed — checked end-to-end through each full system.
"""

from repro.consensus.system import BftSystem
from repro.core.system import Astro1System, Astro2System

GENESIS = {"a": 1000, "b": 1000, "c": 1000, "d": 1000}

WORKLOAD = [("a", "b", 3), ("b", "c", 5), ("c", "d", 7), ("d", "a", 2)] * 5


def run_astro1(seed):
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=seed)
    for transfer in WORKLOAD:
        system.submit(*transfer)
    system.settle_all()
    return (
        system.sim.now,
        system.sim.events_executed,
        tuple(system.settled_counts()),
        system.replica(0).state.snapshot(),
    )


def run_astro2(seed, shards=1):
    system = Astro2System(
        num_replicas=4, num_shards=shards, genesis=dict(GENESIS), seed=seed
    )
    for transfer in WORKLOAD:
        system.submit(*transfer)
    system.settle_all()
    return (
        system.sim.now,
        system.sim.events_executed,
        tuple(system.settled_counts()),
        system.replica(0).state.snapshot(),
    )


def run_bft(seed):
    system = BftSystem(num_replicas=4, genesis=dict(GENESIS), seed=seed)
    for transfer in WORKLOAD:
        system.submit(*transfer)
    system.settle_all(max_time=20)
    return (
        tuple(system.settled_counts()),
        system.replicas[0].state.snapshot(),
    )


def test_astro1_bitwise_reproducible():
    assert run_astro1(123) == run_astro1(123)


def test_astro2_bitwise_reproducible():
    assert run_astro2(456) == run_astro2(456)


def test_astro2_sharded_bitwise_reproducible():
    assert run_astro2(789, shards=2) == run_astro2(789, shards=2)


def test_bft_bitwise_reproducible():
    assert run_bft(321) == run_bft(321)


def test_different_seeds_differ_in_timing():
    # Same final state (the workload is deterministic), different event
    # interleavings (latency jitter differs by seed).
    a = run_astro1(1)
    b = run_astro1(2)
    assert a[3] == b[3]          # same economics
    assert a[0] != b[0] or a[1] != b[1]  # different histories


def test_fault_injection_reproducible():
    def run(seed):
        system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=seed)
        system.faults.crash(3, at=0.05)
        for transfer in WORKLOAD:
            system.submit(*transfer)
        system.settle_all()
        return (
            system.sim.events_executed,
            tuple(r.settled_count for r in system.replicas[:3]),
        )

    assert run(42) == run(42)
