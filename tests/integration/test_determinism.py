"""Determinism: identical seeds produce identical histories.

The simulator's core promise — every experiment is reproducible from its
seed — checked end-to-end through each full system.

Two layers of guarantee:

* run-to-run: two runs with the same seed in this process are identical;
* engine-vs-seed: the optimized engine (memoized digests, Event-free
  fast scheduling path, broadcast fan-out, inlined settle loops) produces
  **byte-identical histories** to the original unoptimized seed
  implementation.  The ``SEED_GOLDEN`` constants below were captured by
  running the seed engine (commit d6978f1) on these exact scenarios; the
  simulated clock is compared via ``float.hex`` so even one reordered or
  re-associated floating-point operation in the hot path fails the test.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

from repro.consensus.system import BftSystem
from repro.core.system import Astro1System, Astro2System

GENESIS = {"a": 1000, "b": 1000, "c": 1000, "d": 1000}

WORKLOAD = [("a", "b", 3), ("b", "c", 5), ("c", "d", 7), ("d", "a", 2)] * 5

#: Histories of the seed engine: (now.hex(), events_executed,
#: settled_counts, sha256 of replica 0's state snapshot repr).
SEED_GOLDEN = {
    "astro1_seed123": (
        "0x1.44cc55d2d9355p-4",
        220,
        (20, 20, 20, 20),
        "c42b5b16ee42ac22dfd3f84a4bb169ce69e947dfde41e93b15ddd13095369e99",
    ),
    "astro2_seed456": (
        "0x1.59ccb19e897f9p-4",
        100,
        (20, 20, 20, 20),
        "1a698c3151a59f1a2d5e8023b91b015cf44a6d34950f5951d2268ba1d8c9da00",
    ),
    "astro2_sharded_seed789": (
        "0x1.70d1790001114p-4",
        108,
        (10, 10, 10, 10, 10, 10, 10, 10),
        "fdeaae19ac9222631d73ef89325aff7f67d32ddfee197423635d5ce0ed9fde7e",
    ),
    "bft_seed321": (
        (20, 20, 20, 20),
        "c42b5b16ee42ac22dfd3f84a4bb169ce69e947dfde41e93b15ddd13095369e99",
    ),
}


def _fingerprint(snapshot) -> str:
    return hashlib.sha256(repr(snapshot).encode()).hexdigest()


def run_astro1(seed):
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=seed)
    for transfer in WORKLOAD:
        system.submit(*transfer)
    system.settle_all()
    return (
        system.sim.now,
        system.sim.events_executed,
        tuple(system.settled_counts()),
        system.replica(0).state.snapshot(),
    )


def run_astro2(seed, shards=1):
    system = Astro2System(
        num_replicas=4, num_shards=shards, genesis=dict(GENESIS), seed=seed
    )
    for transfer in WORKLOAD:
        system.submit(*transfer)
    system.settle_all()
    return (
        system.sim.now,
        system.sim.events_executed,
        tuple(system.settled_counts()),
        system.replica(0).state.snapshot(),
    )


def run_bft(seed):
    system = BftSystem(num_replicas=4, genesis=dict(GENESIS), seed=seed)
    for transfer in WORKLOAD:
        system.submit(*transfer)
    system.settle_all(max_time=20)
    return (
        tuple(system.settled_counts()),
        system.replicas[0].state.snapshot(),
    )


def test_astro1_bitwise_reproducible():
    assert run_astro1(123) == run_astro1(123)


def test_astro2_bitwise_reproducible():
    assert run_astro2(456) == run_astro2(456)


def test_astro2_sharded_bitwise_reproducible():
    assert run_astro2(789, shards=2) == run_astro2(789, shards=2)


def test_bft_bitwise_reproducible():
    assert run_bft(321) == run_bft(321)


def _golden_form(history):
    now, events, settled, snapshot = history
    return (now.hex(), events, settled, _fingerprint(snapshot))


def test_astro1_history_identical_to_seed_engine():
    assert _golden_form(run_astro1(123)) == SEED_GOLDEN["astro1_seed123"]


def test_astro2_history_identical_to_seed_engine():
    assert _golden_form(run_astro2(456)) == SEED_GOLDEN["astro2_seed456"]


def test_astro2_sharded_history_identical_to_seed_engine():
    assert (
        _golden_form(run_astro2(789, shards=2))
        == SEED_GOLDEN["astro2_sharded_seed789"]
    )


def test_bft_history_identical_to_seed_engine():
    settled, snapshot = run_bft(321)
    assert (settled, _fingerprint(snapshot)) == SEED_GOLDEN["bft_seed321"]


def test_different_seeds_differ_in_timing():
    # Same final state (the workload is deterministic), different event
    # interleavings (latency jitter differs by seed).
    a = run_astro1(1)
    b = run_astro1(2)
    assert a[3] == b[3]          # same economics
    assert a[0] != b[0] or a[1] != b[1]  # different histories


# ---------------------------------------------------------------------------
# Hash-seed independence of the *uncovered* protocol paths
# ---------------------------------------------------------------------------
# The figure benchmarks are already proven PYTHONHASHSEED-independent;
# consensus view changes and reconfiguration (membership/DBRB) were not.
# String-keyed sets/dicts iterate in hash-seed-dependent order, so any
# ordering leak from them into message or certificate assembly shows up
# as differing histories between fresh interpreters with different seeds.

_HASHSEED_SNIPPET = """
import hashlib
from repro.consensus.config import BftConfig
from repro.consensus.system import BftSystem
from repro.bench.fig8 import measure_astro_join_series

GENESIS = {"a": 1000, "b": 1000, "c": 1000, "d": 1000}
WORKLOAD = [("a", "b", 3), ("b", "c", 5), ("c", "d", 7), ("d", "a", 2)] * 5

# Consensus view change: the view-0 leader crashes before its proposals
# decide, forcing STOP/STOPDATA/SYNC and re-proposal under a new leader.
config = BftConfig(num_replicas=4, request_timeout=0.4,
                   timeout_check_interval=0.1)
system = BftSystem(num_replicas=4, genesis=dict(GENESIS), config=config,
                   seed=11)
system.faults.crash(system.replicas[0].node_id, at=0.001)
for transfer in WORKLOAD:
    system.submit(*transfer)
system.settle_all(max_time=30)
replica = system.replicas[1]
assert replica.view_changes >= 1, "scenario must exercise a view change"
print("bft", replica.view, replica.view_changes,
      tuple(system.settled_counts()), system.sim.now.hex(),
      hashlib.sha256(repr(replica.state.snapshot()).encode()).hexdigest())

# Reconfiguration: three consensusless joins growing one system 4 -> 6.
latencies = measure_astro_join_series([4, 5, 6], seed=3)
print("reconfig", [latency.hex() for latency in latencies])
"""


def _run_fresh_interpreter(hashseed: int, snippet: str = _HASHSEED_SNIPPET) -> str:
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ, PYTHONHASHSEED=str(hashseed), PYTHONPATH=str(src))
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_view_change_and_reconfig_hashseed_independent():
    outputs = {_run_fresh_interpreter(seed) for seed in (0, 1, 4242)}
    assert len(outputs) == 1, f"histories diverged across hash seeds: {outputs}"


# ---------------------------------------------------------------------------
# Cross-delivery CREDIT coalescing: hash-seed independence
# ---------------------------------------------------------------------------
# The coalesced credit path flushes from the KeyedCoalescer's per-key
# buckets and timers.  Keys are replica node ids but the payments inside
# carry string client ids, so any ordering leak from a set/dict-internals
# iteration in the staging or flush path would diverge across hash seeds.

_COALESCE_SNIPPET = """
import hashlib
from repro.core.config import AstroConfig
from repro.core.system import Astro2System

GENESIS = {"a": 1000, "b": 1000, "c": 1000, "d": 1000}
WORKLOAD = [("a", "b", 3), ("b", "c", 5), ("c", "d", 7), ("d", "a", 2)] * 5

config = AstroConfig(num_replicas=4, batch_delay=0.01,
                     credit_coalesce_delay=0.02)
system = Astro2System(num_replicas=4, genesis=dict(GENESIS), config=config,
                      seed=13)
for index, transfer in enumerate(WORKLOAD):
    # Staggered submissions: several deliveries per coalescing window.
    system.sim.schedule(0.004 * index, system.submit, *transfer)
system.settle_all()
replica = system.replicas[0]
print("coalesced", system.sim.now.hex(), system.sim.events_executed,
      tuple(system.settled_counts()),
      hashlib.sha256(repr(replica.state.snapshot()).encode()).hexdigest())
"""


def test_coalesced_credit_path_hashseed_independent():
    outputs = {
        _run_fresh_interpreter(seed, _COALESCE_SNIPPET)
        for seed in (0, 1, 4242)
    }
    assert len(outputs) == 1, (
        f"coalesced-credit histories diverged across hash seeds: {outputs}"
    )


# ---------------------------------------------------------------------------
# Intra-simulation sharding: shard-count / hash-seed / start-method matrix
# ---------------------------------------------------------------------------
# One fig3-style peak-search cell (tight budget) whose *entire history* —
# every probe's RunResult floats plus per-replica state fingerprints —
# must be byte-identical for REPRO_SIM_SHARDS=1 (the serial engine),
# 2 and 4, in fresh interpreters under different PYTHONHASHSEEDs, and
# under both fork and spawn start methods.

_SHARD_SNIPPET = """
import os
from repro.bench.parallel import ScenarioJob, run_unit
from repro.bench.systems import SYSTEM_BUILDERS

def main():
    shards = int(os.environ.get("TEST_SIM_SHARDS", "1"))
    start_method = os.environ.get("TEST_START_METHOD") or None
    coalesce = os.environ.get("TEST_COALESCE")
    builder_kwargs = (
        dict(credit_coalesce_delay=float(coalesce)) if coalesce else None
    )
    adversary = os.environ.get("TEST_ADVERSARY")
    if adversary:
        # Armed at t=0 with no scheduler event, so every shard worker
        # builds an identical attacked system.
        builder_kwargs = dict(builder_kwargs or {}, adversary=adversary)
    params = dict(system="astro2", size=6, start_rate=800.0, duration=0.5,
                  warmup=0.3, refine_steps=1, payment_budget=6000,
                  max_probes=3, reuse_state=True,
                  builder_kwargs=builder_kwargs)
    if shards > 1 and start_method is not None:
        # drive the engine directly so the start method is selectable
        from repro.bench.peak import find_peak
        from repro.sim.shard import ShardedOpenLoop
        spec = dict(system="astro2", size=6, seed=9,
                    builder_kwargs=builder_kwargs)
        with ShardedOpenLoop(spec, shards=shards,
                             start_method=start_method) as cluster:
            peak = find_peak(
                None, start_rate=800.0, duration=0.5, warmup=0.3,
                refine_steps=1, seed=9, payment_budget=6000, max_probes=3,
                reuse_state=True,
                probe_runner=lambda rate, d, w, fresh: cluster.probe(
                    rate=rate, duration=d, warmup=w, fresh=fresh, seed=9),
            )
    else:
        peak = run_unit(ScenarioJob(
            kind="find_peak", params=dict(params, sim_shards=shards), seed=9))
    for probe in peak.probes:
        print("probe", probe.offered, probe.achieved, probe.injected,
              probe.confirmed,
              probe.latency.mean.hex() if probe.latency.count else None,
              probe.latency.p95.hex() if probe.latency.count else None)
    print("peak", peak.peak_pps, peak.peak_probe_index)

if __name__ == "__main__":
    main()
"""


def _run_shard_snippet(tmp_path, hashseed, shards, start_method=None,
                       coalesce=None, adversary=None):
    script = tmp_path / "shard_snippet.py"
    script.write_text(_SHARD_SNIPPET)
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(
        os.environ,
        PYTHONHASHSEED=str(hashseed),
        PYTHONPATH=str(src),
        TEST_SIM_SHARDS=str(shards),
        REPRO_SIM_SHARDS=str(shards),
    )
    if start_method is not None:
        env["TEST_START_METHOD"] = start_method
    else:
        env.pop("TEST_START_METHOD", None)
    if coalesce is not None:
        env["TEST_COALESCE"] = str(coalesce)
    else:
        env.pop("TEST_COALESCE", None)
    if adversary is not None:
        env["TEST_ADVERSARY"] = str(adversary)
    else:
        env.pop("TEST_ADVERSARY", None)
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_shard_count_and_hashseed_invariant_histories(tmp_path):
    """REPRO_SIM_SHARDS 1/2/4 × PYTHONHASHSEED variation: one history."""
    outputs = {
        _run_shard_snippet(tmp_path, hashseed, shards)
        for shards in (1, 2, 4)
        for hashseed in (0, 4242)
    }
    assert len(outputs) == 1, (
        f"fig3-cell histories diverged across shard counts / hash seeds: "
        f"{outputs}"
    )


def test_coalesced_serial_vs_sharded_identical(tmp_path):
    """With CREDIT coalescing on, the sharded engine must still merge a
    byte-identical history (coalescer timers are shard-local; the bigger
    CREDIT envelopes cross the shard outbox pickled compactly)."""
    outputs = {
        _run_shard_snippet(tmp_path, 0, shards, coalesce="0.02")
        for shards in (1, 2)
    }
    assert len(outputs) == 1, (
        f"coalesced fig3-cell histories diverged serial vs sharded: {outputs}"
    )


def test_coalesced_shard_hashseed_matrix(tmp_path):
    """The ISSUE-6 acceptance matrix: serial baseline vs shards ∈ {2,3,8}
    × PYTHONHASHSEED ∈ {0,1,4242}, all with CREDIT coalescing on, each in
    a fresh interpreter.  shards=8 exceeds the 6-node population, so the
    async engine's empty-shard path (inf channel floors, whole-probe
    slices) is part of the identity claim."""
    baseline = _run_shard_snippet(tmp_path, 0, 1, coalesce="0.02")
    for shards in (2, 3, 8):
        for hashseed in (0, 1, 4242):
            output = _run_shard_snippet(
                tmp_path, hashseed, shards, coalesce="0.02"
            )
            assert output == baseline, (
                f"history diverged from serial at shards={shards}, "
                f"hashseed={hashseed}"
            )


def test_shard_start_method_invariant_histories(tmp_path):
    """fork and spawn workers must produce the same history."""
    outputs = {
        _run_shard_snippet(tmp_path, 0, 2, start_method=method)
        for method in ("fork", "spawn")
    }
    assert len(outputs) == 1, (
        f"histories diverged across start methods: {outputs}"
    )


# ---------------------------------------------------------------------------
# Byzantine adversary timelines: hash-seed and engine invariance
# ---------------------------------------------------------------------------
# Attacked histories must be a pure function of scenario + seed like
# benign ones: behaviours draw from SHA-256 stable_rng streams (never
# hash()), and reactive tampering executes only at the shard worker that
# owns the attacker.  One timeline per system, using attacks that *do*
# consume behaviour RNG (selective's starved-set sample, replay's
# probabilistic redelivery), so the stable-stream claim is actually
# exercised; the forged-CREDIT attack additionally covers forged-message
# construction.

_ADVERSARY_SNIPPET = """
import json
from repro.bench.parallel import ScenarioJob, run_unit

for system, attack in (("astro1", "selective"), ("astro2", "forge_credit"),
                       ("astro2", "replay")):
    cell = run_unit(ScenarioJob(
        kind="adversary_timeline",
        params=dict(system=system, size=7, attack=attack, num_clients=6,
                    warmup=1.0, window=4.0, attack_offset=1.0,
                    monitor_interval=0.5),
        seed=21))
    print(system, attack, [f"{v:.17g}" for v in cell["series"]],
          cell["completed"], cell["tampered"],
          json.dumps(cell["verdict"], sort_keys=True))
"""


def test_adversary_timeline_hashseed_independent():
    outputs = {
        _run_fresh_interpreter(seed, _ADVERSARY_SNIPPET)
        for seed in (0, 1, 4242)
    }
    assert len(outputs) == 1, (
        f"attacked histories diverged across hash seeds: {outputs}"
    )
    # The single shared output must show safe, actually-attacked runs.
    output = outputs.pop()
    assert output.count('"ok": true') == 3, output


def test_adversary_serial_vs_sharded_identical(tmp_path):
    """A Byzantine behavior (equivocating representative) active inside
    the sharded engine must merge a history byte-identical to the serial
    engine: the tap is installed at construction in every worker, arming
    is event-free at t=0, and equivocation is reactive and RNG-free."""
    outputs = {
        _run_shard_snippet(tmp_path, 0, shards, adversary="equivocate")
        for shards in (1, 2)
    }
    assert len(outputs) == 1, (
        f"attacked histories diverged serial vs sharded: {outputs}"
    )


def test_fault_injection_reproducible():
    def run(seed):
        system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=seed)
        system.faults.crash(3, at=0.05)
        for transfer in WORKLOAD:
            system.submit(*transfer)
        system.settle_all()
        return (
            system.sim.events_executed,
            tuple(r.settled_count for r in system.replicas[:3]),
        )

    assert run(42) == run(42)
