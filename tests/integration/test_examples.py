"""The examples are part of the public API surface: run them.

Each example self-checks with assertions and exits non-zero on failure,
so executing them doubles as an end-to-end integration test.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "double_spend_attack.py",
    "reconfiguration.py",
]

SLOW_EXAMPLES = [
    "sharded_smallbank.py",
    "robustness_demo.py",
]


def run_example(name: str, timeout: float) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs_clean(name):
    result = run_example(name, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs_clean(name):
    result = run_example(name, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_examples_directory_complete():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES + SLOW_EXAMPLES) <= present
    assert len(present) >= 3  # deliverable (b): at least three examples
