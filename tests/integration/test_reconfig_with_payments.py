"""Reconfiguration interacting with the payment layer (Appendix A).

The paper pauses payment processing while a new view is agreed and
resumes in the installed view.  These tests exercise the pause/resume
hooks together with a DBRB broadcast in flight.
"""

from repro.crypto import Keychain, replica_owner
from repro.reconfig.dbrb import DynamicBroadcast
from repro.reconfig.membership import ReconfigReplica
from repro.reconfig.views import View
from repro.sim import ConstantLatency, Network, Simulator


def test_join_while_broadcast_in_flight_delivers_to_everyone():
    """A payment broadcast straddling a join reaches the joiner too."""
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.004))
    keychain = Keychain(seed=3)
    view = View(0, range(4))
    membership = {}
    broadcast = {}
    delivered = {i: [] for i in range(5)}
    for node_id in range(5):
        key = keychain.generate(replica_owner(node_id))
        replica = ReconfigReplica(
            sim, node_id, network, view, keychain, key, state_bytes=1_000
        )
        membership[node_id] = replica
        layer = DynamicBroadcast(
            replica, view,
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(node_id),
        )
        broadcast[node_id] = layer
        replica.on_resume = (
            lambda new_view, layer=layer: layer.install_view(new_view)
        )

    # Stall the broadcaster's traffic so the broadcast is pending when
    # the membership changes.
    for dst in range(1, 5):
        network.block(0, dst)
    broadcast[0].broadcast(1, ("pay", "alice", 1, "bob", 10))
    membership[4].request_join()
    sim.run_until_idle()
    network.heal()
    # Reconnected: DBRB retransmits its pending instance in the current
    # (post-join) view.
    broadcast[0].retry_pending()
    sim.run_until_idle()

    final_view = membership[0].view
    assert final_view.n == 5
    for member in final_view.members:
        assert delivered[member] == [(0, 1, ("pay", "alice", 1, "bob", 10))]


def test_view_sequences_identical_across_members():
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.004))
    keychain = Keychain(seed=4)
    view = View(0, range(4))
    replicas = {}
    for node_id in range(7):
        key = keychain.generate(replica_owner(node_id))
        replicas[node_id] = ReconfigReplica(
            sim, node_id, network, view, keychain, key, state_bytes=1_000
        )
    current = view
    for joiner in (4, 5, 6):
        replicas[joiner].view = current
        replicas[joiner].request_join()
        sim.run_until_idle()
        current = replicas[joiner].view
    histories = {
        tuple(v.canonical() for v in replicas[i].installed_history if v.number > 0)
        for i in range(4)
    }
    assert len(histories) == 1, "members installed different view sequences"
