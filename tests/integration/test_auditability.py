"""Auditability: balances are re-derivable from the xlogs (§II).

The paper keeps full per-client logs — rather than just balances and
sequence numbers — "to enable auditability and support a system where
the set of replicas may change".  These tests perform that audit: replay
every xlog from genesis and check the result equals the replicated
balances.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.system import Astro1System, Astro2System

CLIENTS = ["u0", "u1", "u2", "u3"]

transfers = st.lists(
    st.tuples(
        st.sampled_from(CLIENTS), st.sampled_from(CLIENTS),
        st.integers(min_value=1, max_value=80),
    ),
    min_size=1,
    max_size=25,
)


def genesis():
    return {client: 200 for client in CLIENTS}


def audit_astro1(replica, initial):
    """Replay settle_full semantics from the logs."""
    balances = dict(initial)
    events = []
    for client, xlog in replica.state.xlogs.items():
        for payment in xlog:
            events.append(payment)
    # Replay is order-insensitive for final balances: each payment is a
    # single (debit, credit) pair.
    for payment in events:
        balances[payment.spender] -= payment.amount
        balances[payment.beneficiary] = (
            balances.get(payment.beneficiary, 0) + payment.amount
        )
    return balances


def audit_astro2(replica, initial):
    """Replay spend-only semantics plus materialized dependencies."""
    balances = dict(initial)
    for client, xlog in replica.state.xlogs.items():
        for payment in xlog:
            balances[payment.spender] -= payment.amount
    for client, used in replica._used_deps.items():
        # Each used dependency id corresponds to a settled crediting
        # payment; find its amount in the spender's xlog.
        for spender, seq in used:
            crediting = replica.state.xlog(spender)[seq - 1]
            balances[client] = balances.get(client, 0) + crediting.amount
    return balances


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=transfers, seed=st.integers(0, 2**16))
def test_astro1_balances_auditable_from_xlogs(plan, seed):
    system = Astro1System(num_replicas=4, genesis=genesis(), seed=seed)
    for spender, beneficiary, amount in plan:
        if spender != beneficiary:
            system.submit(spender, beneficiary, amount)
    system.settle_all()
    replica = system.replica(0)
    audited = audit_astro1(replica, genesis())
    for client in CLIENTS:
        assert audited[client] == replica.state.balance(client)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=transfers, seed=st.integers(0, 2**16))
def test_astro2_balances_auditable_from_xlogs_and_deps(plan, seed):
    system = Astro2System(num_replicas=4, genesis=genesis(), seed=seed)
    for spender, beneficiary, amount in plan:
        if spender != beneficiary:
            system.submit(spender, beneficiary, amount)
    system.settle_all()
    replica = system.replica(0)
    audited = audit_astro2(replica, genesis())
    for client in CLIENTS:
        assert audited[client] == replica.state.balance(client)


def test_audit_detects_tampering():
    """Sanity: the audit is not vacuous — a manipulated balance fails it."""
    system = Astro1System(num_replicas=4, genesis=genesis(), seed=3)
    system.submit("u0", "u1", 50)
    system.settle_all()
    replica = system.replica(0)
    replica.state.balances["u1"] += 7  # corrupt
    audited = audit_astro1(replica, genesis())
    assert audited["u1"] != replica.state.balance("u1")
