"""Cross-system parity: the same workload ends in the same economic state.

Astro I, Astro II, and the consensus baseline implement the same payment
semantics over different replication layers; applying one funded workload
to each must yield identical *effective* balances (settled + provable
credits) — the end-user-visible outcome the paper holds constant while
comparing the layers underneath.
"""


from repro.consensus.system import BftSystem
from repro.core.system import Astro1System, Astro2System

GENESIS = {"a": 500, "b": 300, "c": 100, "d": 0}

WORKLOAD = [
    ("a", "b", 50),
    ("b", "c", 120),
    ("c", "d", 60),
    ("a", "d", 25),
    ("d", "a", 10),
    ("b", "a", 5),
]


def effective_balances_astro1(system):
    return {c: system.replica(0).balance_of(c) for c in GENESIS}


def effective_balances_astro2(system):
    return {
        c: system.representative_of(c).available_balance(c) for c in GENESIS
    }


def effective_balances_bft(system):
    return {c: system.replicas[0].state.balance(c) for c in GENESIS}


def drive(system):
    for spender, beneficiary, amount in WORKLOAD:
        system.submit(spender, beneficiary, amount)
        system.settle_all() if isinstance(system, BftSystem) else None
    if isinstance(system, BftSystem):
        system.settle_all(max_time=30)
    else:
        system.settle_all()


def expected_balances():
    balances = dict(GENESIS)
    for spender, beneficiary, amount in WORKLOAD:
        balances[spender] -= amount
        balances[beneficiary] += amount
    return balances


def test_astro1_matches_sequential_semantics():
    system = Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=1)
    drive(system)
    assert effective_balances_astro1(system) == expected_balances()


def test_astro2_matches_sequential_semantics():
    system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=1)
    drive(system)
    assert effective_balances_astro2(system) == expected_balances()


def test_bft_matches_sequential_semantics():
    system = BftSystem(num_replicas=4, genesis=dict(GENESIS), seed=1)
    drive(system)
    assert effective_balances_bft(system) == expected_balances()


def test_sharded_astro2_matches_sequential_semantics():
    system = Astro2System(
        num_replicas=4, num_shards=2, genesis=dict(GENESIS), seed=1
    )
    drive(system)
    assert effective_balances_astro2(system) == expected_balances()


def test_all_three_systems_agree_with_each_other():
    results = []
    for build in (
        lambda: Astro1System(num_replicas=4, genesis=dict(GENESIS), seed=2),
        lambda: Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=2),
        lambda: BftSystem(num_replicas=4, genesis=dict(GENESIS), seed=2),
    ):
        system = build()
        drive(system)
        if isinstance(system, Astro2System):
            results.append(effective_balances_astro2(system))
        elif isinstance(system, Astro1System):
            results.append(effective_balances_astro1(system))
        else:
            results.append(effective_balances_bft(system))
    assert results[0] == results[1] == results[2]
