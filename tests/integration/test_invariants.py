"""Property-based system invariants (DESIGN.md §4).

Random workloads over random network schedules must preserve, at every
correct replica of every system: conservation of value, non-negative
balances, per-client sequence monotonicity, cross-replica convergence,
and double-spend freedom.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.system import Astro1System, Astro2System
from repro.consensus.system import BftSystem
from repro.sim import UniformLatency

CLIENTS = ["c0", "c1", "c2", "c3", "c4"]

transfer = st.tuples(
    st.sampled_from(CLIENTS),
    st.sampled_from(CLIENTS),
    st.integers(min_value=1, max_value=120),
)

workload_strategy = st.lists(transfer, min_size=1, max_size=40)

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def genesis():
    return {client: 100 for client in CLIENTS}


def submit_all(system, transfers):
    for spender, beneficiary, amount in transfers:
        if spender == beneficiary:
            continue
        system.submit(spender, beneficiary, amount)


def assert_non_negative(system):
    for replica in system.replicas:
        for client, balance in replica.state.balances.items():
            assert balance >= 0, f"negative balance for {client!r}: {balance}"


def assert_xlogs_sequential(system):
    for replica in system.replicas:
        for xlog in replica.state.xlogs.values():
            assert [p.seq for p in xlog] == list(range(1, len(xlog) + 1))


def assert_no_double_spend(system):
    """No identifier settles with two different beneficiaries anywhere."""
    seen = {}
    for replica in system.replicas:
        for xlog in replica.state.xlogs.values():
            for payment in xlog:
                key = payment.identifier
                fields = (payment.beneficiary, payment.amount)
                assert seen.setdefault(key, fields) == fields


@settings(**SETTINGS)
@given(transfers=workload_strategy, seed=st.integers(0, 2**16))
def test_astro1_invariants(transfers, seed):
    system = Astro1System(
        num_replicas=4,
        genesis=genesis(),
        latency=UniformLatency(0.001, 0.03, seed=seed),
        seed=seed,
    )
    submit_all(system, transfers)
    system.settle_all()
    # Conservation at every replica (Astro I settles atomically).
    for index in range(4):
        assert system.replicas[index].state.total_balance() == 500
    assert_non_negative(system)
    assert_xlogs_sequential(system)
    assert_no_double_spend(system)
    # Convergence: all replicas end in the same state.
    assert len({r.state.snapshot() for r in system.replicas}) == 1


@settings(**SETTINGS)
@given(transfers=workload_strategy, seed=st.integers(0, 2**16))
def test_astro2_invariants(transfers, seed):
    system = Astro2System(
        num_replicas=4,
        genesis=genesis(),
        latency=UniformLatency(0.001, 0.03, seed=seed),
        seed=seed,
    )
    submit_all(system, transfers)
    system.settle_all()
    assert system.total_value() == 500
    assert_non_negative(system)
    assert_xlogs_sequential(system)
    assert_no_double_spend(system)
    assert len({r.state.snapshot() for r in system.replicas}) == 1


@settings(**SETTINGS)
@given(transfers=workload_strategy, seed=st.integers(0, 2**16))
def test_astro2_sharded_invariants(transfers, seed):
    system = Astro2System(
        num_replicas=4,
        num_shards=2,
        genesis=genesis(),
        latency=UniformLatency(0.001, 0.03, seed=seed),
        seed=seed,
    )
    submit_all(system, transfers)
    system.settle_all()
    assert system.total_value() == 500
    assert_non_negative(system)
    assert_xlogs_sequential(system)
    assert_no_double_spend(system)
    for shard in system.directory.shard_ids:
        snapshots = {
            system.replica_by_node(node).state.snapshot()
            for node in system.directory.members(shard)
        }
        assert len(snapshots) == 1


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(transfers=st.lists(transfer, min_size=1, max_size=15),
       seed=st.integers(0, 2**16))
def test_bft_invariants(transfers, seed):
    system = BftSystem(
        num_replicas=4,
        genesis=genesis(),
        latency=UniformLatency(0.001, 0.03, seed=seed),
        seed=seed,
    )
    submit_all(system, transfers)
    system.settle_all(max_time=20)
    for index in range(4):
        assert system.replicas[index].state.total_balance() == 500
    assert_non_negative(system)
    assert_xlogs_sequential(system)
    assert len({r.state.snapshot() for r in system.replicas}) == 1


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    transfers=st.lists(transfer, min_size=1, max_size=25),
    crash_index=st.integers(0, 3),
    crash_at=st.floats(min_value=0.0, max_value=0.2),
    seed=st.integers(0, 2**16),
)
def test_astro2_invariants_with_crash(transfers, crash_index, crash_at, seed):
    """One crash-stop failure anywhere, any time: surviving replicas
    still satisfy every safety invariant and agree pairwise by prefix."""
    system = Astro2System(
        num_replicas=4,
        genesis=genesis(),
        latency=UniformLatency(0.001, 0.03, seed=seed),
        seed=seed,
    )
    victim = system.replicas[crash_index].node_id
    system.faults.crash(victim, at=crash_at)
    submit_all(system, transfers)
    system.settle_all()
    survivors = [r for r in system.replicas if r.node_id != victim]
    for replica in survivors:
        for client, balance in replica.state.balances.items():
            assert balance >= 0
        for xlog in replica.state.xlogs.values():
            assert [p.seq for p in xlog] == list(range(1, len(xlog) + 1))
    assert_no_double_spend(system)
    # Survivors agree on every client's settled prefix.
    for client in CLIENTS:
        logs = [replica.state.xlog(client) for replica in survivors]
        reference = max(logs, key=len)
        for log in logs:
            assert log.is_prefix_of(reference)
