"""Tests for consensusless reconfiguration (Appendix A)."""

import pytest

from repro.crypto import Keychain, replica_owner
from repro.reconfig.membership import ReconfigReplica
from repro.reconfig.views import View
from repro.sim import ConstantLatency, Network, Simulator


def build(initial_members=4, total=8, state_bytes=10_000, latency=None):
    sim = Simulator()
    network = Network(sim, latency=latency or ConstantLatency(0.005))
    keychain = Keychain(seed=77)
    initial = View(0, range(initial_members))
    replicas = {}
    for node_id in range(total):
        key = keychain.generate(replica_owner(node_id))
        replicas[node_id] = ReconfigReplica(
            sim, node_id, network, initial, keychain, key,
            state_bytes=state_bytes,
        )
    return sim, network, replicas


class TestViews:
    def test_with_and_without_member(self):
        view = View(0, range(4))
        bigger = view.with_member(4)
        assert bigger.number == 1
        assert bigger.members == frozenset(range(5))
        smaller = bigger.without_member(0)
        assert smaller.members == frozenset({1, 2, 3, 4})

    def test_quorum_arithmetic(self):
        view = View(0, range(4))
        assert view.f == 1
        assert view.quorum == 3

    def test_invalid_changes(self):
        view = View(0, range(4))
        with pytest.raises(ValueError):
            view.with_member(0)
        with pytest.raises(ValueError):
            view.without_member(99)
        with pytest.raises(ValueError):
            View(0, [])

    def test_equality_and_hash(self):
        assert View(1, [0, 1]) == View(1, [1, 0])
        assert hash(View(1, [0, 1])) == hash(View(1, [1, 0]))


class TestJoin:
    def test_join_installs_successor_view_everywhere(self):
        sim, network, replicas = build()
        replicas[4].request_join()
        sim.run_until_idle()
        for node_id in range(5):
            assert replicas[node_id].view.number == 1
            assert replicas[node_id].view.members == frozenset(range(5))
        assert replicas[4].active
        assert replicas[4].join_latency is not None

    def test_sequential_joins_form_view_sequence(self):
        sim, network, replicas = build()
        current = replicas[0].view
        for joiner_id in (4, 5, 6):
            joiner = replicas[joiner_id]
            joiner.view = current
            joiner.request_join()
            sim.run_until_idle()
            current = joiner.view
        assert current.number == 3
        for node_id in range(7):
            history = [v.number for v in replicas[node_id].installed_history]
            assert history == sorted(history)

    def test_join_latency_includes_state_transfer(self):
        _, _, small = build(state_bytes=1_000)
        _, _, large = build(state_bytes=20_000_000)
        for replicas in (small, large):
            replicas[4].request_join()
            replicas[4].sim.run_until_idle()
        assert large[4].join_latency > small[4].join_latency

    def test_join_tolerates_f_crashed_members(self):
        sim, network, replicas = build()
        network.crash(3)  # f=1 of the 4 members
        replicas[4].request_join()
        sim.run_until_idle()
        assert replicas[4].active
        for node_id in range(3):
            assert replicas[node_id].view.number == 1

    def test_double_join_rejected_locally(self):
        sim, network, replicas = build()
        with pytest.raises(RuntimeError):
            replicas[0].request_join()  # already a member


class TestLeave:
    def test_leave_removes_member(self):
        sim, network, replicas = build()
        replicas[3].request_leave()
        sim.run_until_idle()
        for node_id in range(3):
            assert replicas[node_id].view.members == frozenset({0, 1, 2})
        assert not replicas[3].active

    def test_leave_requires_membership(self):
        sim, network, replicas = build()
        with pytest.raises(RuntimeError):
            replicas[7].request_leave()

    def test_join_then_leave_round_trip(self):
        sim, network, replicas = build()
        replicas[4].request_join()
        sim.run_until_idle()
        joined_view = replicas[4].view
        replicas[4].request_leave()
        sim.run_until_idle()
        for node_id in range(4):
            assert replicas[node_id].view.number == joined_view.number + 1
            assert 4 not in replicas[node_id].view.members


class TestPauseResume:
    def test_processing_pauses_during_reconfig(self):
        sim, network, replicas = build(latency=ConstantLatency(0.02))
        paused = []
        resumed = []
        replicas[0].on_pause = lambda: paused.append(sim.now)
        replicas[0].on_resume = lambda view: resumed.append(view.number)
        replicas[4].request_join()
        sim.run_until_idle()
        assert paused, "member never paused during view agreement"
        assert resumed and resumed[-1] == 1
