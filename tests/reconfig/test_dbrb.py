"""Tests for dynamic Byzantine reliable broadcast (Appendix A-C)."""

from repro.reconfig.dbrb import DynamicBroadcast
from repro.reconfig.views import View
from repro.sim import ConstantLatency, Network, Node, Simulator


def build(members=4, total=6, totality=True):
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.005))
    view = View(0, range(members))
    nodes = [Node(sim, i, network) for i in range(total)]
    delivered = {i: [] for i in range(total)}
    layers = [
        DynamicBroadcast(
            nodes[i], view,
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
            totality=totality,
        )
        for i in range(total)
    ]
    return sim, network, nodes, layers, delivered, view


def test_static_view_behaves_like_bracha():
    sim, network, nodes, layers, delivered, view = build()
    layers[0].broadcast(1, "hello")
    sim.run_until_idle()
    for i in range(4):
        assert delivered[i] == [(0, 1, "hello")]


def test_at_most_once_across_views():
    sim, network, nodes, layers, delivered, view = build()
    layers[0].broadcast(1, "x")
    sim.run_until_idle()
    new_view = view.with_member(4)
    for layer in layers:
        layer.install_view(new_view)
    sim.run_until_idle()
    assert all(len(delivered[i]) <= 1 for i in range(6))


def test_broadcast_survives_view_change():
    """A broadcast started in view v completes in view v+1 and reaches
    the joiner too."""
    sim, network, nodes, layers, delivered, view = build()
    # Partition the broadcaster from everyone so the broadcast stalls.
    for dst in range(1, 6):
        network.block(0, dst)
    layers[0].broadcast(1, "survivor")
    sim.run_until_idle()
    assert all(delivered[i] == [] for i in range(1, 6))
    # Install the successor view (join of node 4) everywhere and heal.
    new_view = view.with_member(4)
    network.heal()
    for layer in layers:
        layer.install_view(new_view)
    sim.run_until_idle()
    for member in new_view.members:
        assert delivered[member] == [(0, 1, "survivor")]


def test_stale_view_messages_ignored():
    sim, network, nodes, layers, delivered, view = build()
    new_view = view.with_member(4)
    # Node 1 already moved on; node 0 broadcasts in the old view.
    layers[1].install_view(new_view)
    layers[0].broadcast(1, "stale")
    sim.run_until_idle()
    assert delivered[1] == []  # old-view traffic does not count in view 1


def test_qdbrb_lacks_ready_amplification():
    sim, network, nodes, layers, delivered, view = build(totality=False)
    layers[0].broadcast(1, "q")
    sim.run_until_idle()
    # QDBRB still delivers in the failure-free case.
    for i in range(4):
        assert delivered[i] == [(0, 1, "q")]


def test_delivered_count():
    sim, network, nodes, layers, delivered, view = build()
    layers[0].broadcast(1, "a")
    layers[1].broadcast(1, "b")
    sim.run_until_idle()
    assert layers[2].delivered_count == 2
