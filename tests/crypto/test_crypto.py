"""Unit tests for the simulated cryptography substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.payment import Payment
from repro.crypto import (
    CryptoError,
    Keychain,
    MacAuthenticator,
    Signature,
    canonical,
    client_owner,
    digest,
    replica_owner,
    sign,
    verify,
)


class TestCanonical:
    def test_primitives_pass_through(self):
        for value in (None, True, 42, 3.14, "s", b"b"):
            assert canonical(value) == value

    def test_lists_and_tuples_normalize(self):
        assert canonical([1, 2]) == canonical((1, 2))

    def test_dict_order_independent(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_nested_structures(self):
        value = {"k": [1, (2, 3)], "s": {4, 5}}
        assert canonical(value) == canonical(value)

    def test_object_with_canonical_method(self):
        class Thing:
            def canonical(self):
                return ("thing", 7)

        assert canonical(Thing()) == ("obj", "Thing", ("thing", 7))

    def test_uncanonicalizable_raises(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestDigest:
    def test_equal_content_equal_digest(self):
        assert digest(("pay", 1, "bob")) == digest(("pay", 1, "bob"))

    def test_different_content_different_digest(self):
        assert digest(("pay", 1)) != digest(("pay", 2))

    # Kept deliberately small: before digests were memoized this property
    # re-canonicalized a pathological nested structure on every example
    # and took ~5s on its own; 25 examples of a flat tuple cover the
    # determinism claim just as well.
    @settings(max_examples=25, deadline=None)
    @given(st.tuples(st.integers(), st.text(), st.booleans()))
    def test_digest_deterministic(self, value):
        assert digest(value) == digest(value)

    def test_nested_structure_deterministic(self):
        value = {"k": [1, (2, 3)], "s": frozenset({4, 5}), "b": b"x"}
        assert digest(value) == digest(value)

    def test_second_digest_of_same_message_hits_cache(self, monkeypatch):
        """Memoization regression: digesting a message object twice must
        answer from the per-object cache, not re-canonicalize."""
        payment = Payment("alice", 1, "bob", 5)
        first = digest(payment)
        monkeypatch.setattr(
            Payment,
            "canonical",
            lambda self: pytest.fail("cache miss: canonical() recomputed"),
        )
        assert digest(payment) == first

    def test_equal_payments_equal_digest_across_objects(self):
        a = Payment("alice", 1, "bob", 5)
        b = Payment("alice", 1, "bob", 5)
        assert digest(a) == digest(b)
        assert digest(a) != digest(Payment("alice", 1, "bob", 6))


class TestSignatures:
    def test_sign_verify_round_trip(self, keychain):
        key = keychain.generate("alice")
        signature = sign(key, ("transfer", 5))
        assert verify(keychain, signature, ("transfer", 5))

    def test_tampered_content_fails(self, keychain):
        key = keychain.generate("alice")
        signature = sign(key, ("transfer", 5))
        assert not verify(keychain, signature, ("transfer", 6))

    def test_forged_token_fails(self, keychain):
        keychain.generate("alice")
        forged = Signature("alice", 0xDEADBEEF)
        assert not verify(keychain, forged, ("anything",))

    def test_signature_binds_signer(self, keychain):
        alice = keychain.generate("alice")
        keychain.generate("bob")
        signature = sign(alice, "msg")
        relabeled = Signature("bob", signature._token)
        assert not verify(keychain, relabeled, "msg")

    def test_unknown_signer_raises(self, keychain):
        with pytest.raises(CryptoError):
            verify(keychain, Signature("ghost", 1), "msg")

    def test_non_signature_rejected(self, keychain):
        assert not verify(keychain, "not-a-signature", "msg")

    def test_duplicate_key_generation_rejected(self, keychain):
        keychain.generate("alice")
        with pytest.raises(CryptoError):
            keychain.generate("alice")

    def test_signature_equality_and_hash(self, keychain):
        key = keychain.generate("alice")
        a = sign(key, "m")
        b = sign(key, "m")
        assert a == b
        assert hash(a) == hash(b)

    def test_keychain_determinism(self):
        first = Keychain(seed=9)
        second = Keychain(seed=9)
        sig_a = sign(first.generate("x"), "m")
        sig_b = sign(second.generate("x"), "m")
        assert sig_a == sig_b

    @given(st.text(min_size=1), st.text(min_size=1))
    def test_distinct_messages_distinct_signatures(self, m1, m2):
        keychain = Keychain(seed=5)
        key = keychain.generate("signer")
        if m1 != m2:
            assert sign(key, m1) != sign(key, m2)


class TestMac:
    def test_tag_round_trip(self, keychain):
        keychain.generate("a")
        keychain.generate("b")
        auth = MacAuthenticator(keychain)
        tag = auth.tag("a", "b", "payload")
        assert auth.verify(tag, "a", "b", "payload")

    def test_tampered_payload_fails(self, keychain):
        keychain.generate("a")
        keychain.generate("b")
        auth = MacAuthenticator(keychain)
        tag = auth.tag("a", "b", "payload")
        assert not auth.verify(tag, "a", "b", "other")

    def test_wrong_pair_fails(self, keychain):
        for owner in ("a", "b", "c"):
            keychain.generate(owner)
        auth = MacAuthenticator(keychain)
        tag = auth.tag("a", "b", "payload")
        assert not auth.verify(tag, "a", "c", "payload")

    def test_either_endpoint_can_tag(self, keychain):
        keychain.generate("a")
        keychain.generate("b")
        auth = MacAuthenticator(keychain)
        tag_ab = auth.tag("a", "b", "m")
        tag_ba = auth.tag("b", "a", "m")
        assert auth.verify(tag_ab, "a", "b", "m")
        assert auth.verify(tag_ba, "b", "a", "m")


class TestOwnerNaming:
    def test_replica_and_client_owners_distinct(self):
        assert replica_owner(1) != client_owner(1)
        assert replica_owner(1) == ("replica", 1)
        assert client_owner("alice") == ("client", "alice")
