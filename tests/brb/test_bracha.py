"""Unit tests for Bracha's BRB (Astro I broadcast layer, Listing 5)."""

import pytest

from repro.brb.bracha import BrachaBroadcast, BrbPrepare, BrbReady
from repro.sim import ConstantLatency, Network, Node, Simulator, UniformLatency


def build(n=4, latency=None, fifo=True):
    sim = Simulator()
    network = Network(sim, latency=latency or ConstantLatency(0.005))
    nodes = [Node(sim, i, network) for i in range(n)]
    delivered = {i: [] for i in range(n)}
    layers = [
        BrachaBroadcast(
            nodes[i],
            range(n),
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
            fifo=fifo,
        )
        for i in range(n)
    ]
    return sim, network, nodes, layers, delivered


def test_reliability_all_correct_deliver():
    sim, network, nodes, layers, delivered = build()
    layers[0].broadcast(1, "payload", 100)
    sim.run_until_idle()
    for i in range(4):
        assert delivered[i] == [(0, 1, "payload")]


def test_fifo_delivery_per_origin():
    sim, network, nodes, layers, delivered = build(latency=UniformLatency(0.001, 0.03, seed=2))
    for seq in range(1, 6):
        layers[0].broadcast(seq, f"m{seq}", 100)
    sim.run_until_idle()
    for i in range(4):
        assert [p for (_, _, p) in delivered[i]] == ["m1", "m2", "m3", "m4", "m5"]


def test_integrity_no_duplicate_delivery():
    sim, network, nodes, layers, delivered = build()
    layers[1].broadcast(1, "once", 100)
    sim.run_until_idle()
    counts = [len(delivered[i]) for i in range(4)]
    assert counts == [1, 1, 1, 1]


def test_concurrent_broadcasters_all_deliver():
    sim, network, nodes, layers, delivered = build()
    for i in range(4):
        layers[i].broadcast(1, f"from-{i}", 100)
    sim.run_until_idle()
    for i in range(4):
        assert sorted(p for (_, _, p) in delivered[i]) == [
            "from-0", "from-1", "from-2", "from-3"
        ]


def test_totality_with_silent_broadcaster_after_prepare():
    """The broadcaster crashes right after PREPARE: echo amplification
    still drives every correct replica to delivery (totality)."""
    sim, network, nodes, layers, delivered = build()
    layers[0].broadcast(1, "x", 100)
    network.crash(0)
    sim.run_until_idle()
    for i in range(1, 4):
        assert delivered[i] == [(0, 1, "x")]


def test_equivocating_broadcaster_agreement():
    """A Byzantine broadcaster sends conflicting payloads to disjoint
    halves.  Correct replicas may deliver nothing, but never deliver
    different payloads for the same identifier."""
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.005))
    n = 4
    nodes = [Node(sim, i, network) for i in range(n)]
    delivered = {i: [] for i in range(n)}
    layers = {
        i: BrachaBroadcast(
            nodes[i], range(n),
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
        )
        for i in range(1, n)  # replica 0 is Byzantine: raw messages only
    }
    byz = Node(sim, 99, network)  # crafting endpoint unused; use node 0
    # Byzantine node 0 sends PREPARE "a" to {1, 2} and "a'" to {3}.
    network.send(0, 1, BrbPrepare(1, "a", 148), size=148)
    network.send(0, 2, BrbPrepare(1, "a", 148), size=148)
    network.send(0, 3, BrbPrepare(1, "conflicting", 148), size=148)
    sim.run_until_idle()
    payloads = {p for i in range(1, n) for (_, _, p) in delivered[i]}
    assert len(payloads) <= 1, f"agreement violated: {payloads}"


def test_byzantine_echo_flood_cannot_force_delivery():
    """f=1: a single Byzantine replica echoes/readies a fabricated payload;
    the 2f+1 quorum keeps correct replicas from delivering it."""
    sim, network, nodes, layers, delivered = build()
    fake = BrbReady(0, 1, "fabricated", 148)
    for _ in range(5):  # repeated READYs from the same Byzantine sender
        network.send(3, 1, fake, size=148)
    sim.run_until_idle()
    assert delivered[1] == []


def test_ready_amplification_from_f_plus_one():
    """f+1 READYs trigger a correct replica's own READY (Listing 5 l.26)."""
    sim, network, nodes, layers, delivered = build(n=4)
    # Simulate two distinct replicas (2 = f+1) sending READY for a payload
    # that replica 1 never saw a PREPARE for.
    ready = BrbReady(0, 1, "amplified", 148)
    network.send(2, 1, ready, size=148)
    network.send(3, 1, ready, size=148)
    sim.run_until_idle()
    instance = layers[1]._instances[(0, 1)]
    assert instance.ready_sent


def test_out_of_order_completion_buffers_for_fifo():
    sim, network, nodes, layers, delivered = build()
    # Broadcast seq 2 before seq 1; FIFO must still deliver 1 then 2.
    layers[0].broadcast(2, "second", 100)
    sim.run(until=0.05)
    layers[0].broadcast(1, "first", 100)
    sim.run_until_idle()
    for i in range(4):
        assert [s for (_, s, _) in delivered[i]] == [1, 2]


def test_non_fifo_mode_delivers_immediately():
    sim, network, nodes, layers, delivered = build(fifo=False)
    layers[0].broadcast(5, "gap", 100)
    sim.run_until_idle()
    assert delivered[1] == [(0, 5, "gap")]


def test_delivered_count():
    sim, network, nodes, layers, delivered = build()
    layers[0].broadcast(1, "x", 100)
    layers[1].broadcast(1, "y", 100)
    sim.run_until_idle()
    assert layers[2].delivered_count == 2


def test_endpoint_must_be_member():
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.01))
    node = Node(sim, 9, network)
    with pytest.raises(ValueError):
        BrachaBroadcast(node, [0, 1, 2], lambda o, s, p: None)


def test_larger_system_with_f_crashes_still_delivers():
    n, f = 10, 3
    sim, network, nodes, layers, delivered = build(n=n)
    for node_id in range(n - f, n):
        network.crash(node_id)
    layers[0].broadcast(1, "resilient", 100)
    sim.run_until_idle()
    for i in range(n - f):
        assert delivered[i] == [(0, 1, "resilient")]
