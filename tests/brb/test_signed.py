"""Unit tests for the signed BRB (Astro II broadcast layer, Listing 6)."""

import pytest

from repro.brb.signed import SbAck, SbCommit, SbPrepare, SignedBroadcast
from repro.crypto import Keychain, replica_owner, sign
from repro.crypto.hashing import digest
from repro.sim import ConstantLatency, Network, Node, Simulator


def build(n=4, latency=None, guards=None):
    sim = Simulator()
    network = Network(sim, latency=latency or ConstantLatency(0.005))
    keychain = Keychain(seed=31)
    nodes = [Node(sim, i, network) for i in range(n)]
    keys = [keychain.generate(replica_owner(i)) for i in range(n)]
    delivered = {i: [] for i in range(n)}
    layers = [
        SignedBroadcast(
            nodes[i],
            range(n),
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
            keychain,
            keys[i],
            ack_guard=guards[i] if guards else None,
        )
        for i in range(n)
    ]
    return sim, network, keychain, nodes, keys, layers, delivered


def test_reliability_all_correct_deliver():
    sim, network, keychain, nodes, keys, layers, delivered = build()
    layers[2].broadcast(1, "payload", 100)
    sim.run_until_idle()
    for i in range(4):
        assert delivered[i] == [(2, 1, "payload")]


def test_integrity_at_most_once():
    sim, network, keychain, nodes, keys, layers, delivered = build()
    layers[0].broadcast(1, "x", 100)
    sim.run_until_idle()
    assert all(len(delivered[i]) == 1 for i in range(4))
    # Replay a valid commit certificate: delivery must not repeat.
    payload_digest = digest("x")
    content = ("brb-ack", 0, 1, payload_digest)
    proof = tuple(sign(keys[i], content) for i in (1, 2, 3))
    network.send(0, 1, SbCommit(0, 1, payload_digest, proof, 264), size=264)
    sim.run_until_idle()
    assert len(delivered[1]) == 1


def test_out_of_order_seq_delivers_without_fifo():
    sim, network, keychain, nodes, keys, layers, delivered = build()
    layers[0].broadcast(7, "gap-ok", 100)
    sim.run_until_idle()
    assert delivered[1] == [(0, 7, "gap-ok")]


def test_equivocation_at_most_one_payload_commits():
    """Conflicting PREPAREs split the ACK vote: quorum intersection means
    at most one payload gathers 2f+1 ACKs."""
    sim, network, keychain, nodes, keys, layers, delivered = build()
    # Byzantine broadcaster 0 sends different payloads to different peers.
    network.send(0, 1, SbPrepare(1, "a", 148), size=148)
    network.send(0, 2, SbPrepare(1, "a", 148), size=148)
    network.send(0, 3, SbPrepare(1, "b", 148), size=148)
    sim.run_until_idle()
    payloads = {p for i in range(1, 4) for (_, _, p) in delivered[i]}
    assert len(payloads) <= 1


def test_forged_commit_certificate_rejected():
    sim, network, keychain, nodes, keys, layers, delivered = build()
    payload_digest = digest("evil")
    bogus_signatures = tuple(
        sign(keys[3], ("wrong-content", i)) for i in range(3)
    )
    commit = SbCommit(0, 1, payload_digest, bogus_signatures, 264)
    network.send(0, 1, SbPrepare(1, "evil", 148), size=148)
    network.send(0, 1, commit, size=264)
    sim.run_until_idle()
    assert delivered[1] == []


def test_commit_needs_distinct_signers():
    """2f+1 copies of ONE valid signature must not form a certificate."""
    sim, network, keychain, nodes, keys, layers, delivered = build()
    payload = "dup-signer"
    payload_digest = digest(payload)
    content = ("brb-ack", 0, 1, payload_digest)
    one_signature = sign(keys[2], content)
    commit = SbCommit(0, 1, payload_digest, (one_signature,) * 3, 264)
    network.send(0, 1, SbPrepare(1, payload, 148), size=148)
    network.send(0, 1, commit, size=264)
    sim.run_until_idle()
    assert delivered[1] == []


def test_commit_before_prepare_is_buffered():
    """A COMMIT arriving before its PREPARE (reordering / Byzantine
    broadcaster) is held until the payload arrives, then delivered."""
    sim, network, keychain, nodes, keys, layers, delivered = build()
    payload = "late-prepare"
    payload_digest = digest(payload)
    content = ("brb-ack", 0, 1, payload_digest)
    proof = tuple(sign(keys[i], content) for i in (1, 2, 3))
    commit = SbCommit(0, 1, payload_digest, proof, 264)
    network.send(0, 1, commit, size=264)
    sim.run(until=0.1)
    assert delivered[1] == []
    network.send(0, 1, SbPrepare(1, payload, 148), size=148)
    sim.run_until_idle()
    assert delivered[1] == [(0, 1, payload)]


def test_no_totality_partial_commit_fanout():
    """The protocol deliberately lacks totality: a Byzantine broadcaster
    can deliver to a strict subset of correct replicas."""
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.005))
    keychain = Keychain(seed=47)
    nodes = [Node(sim, i, network) for i in range(4)]
    keys = [keychain.generate(replica_owner(i)) for i in range(4)]
    delivered = {i: [] for i in range(4)}
    # Node 0 is Byzantine: it gets NO honest protocol endpoint.
    for i in range(1, 4):
        SignedBroadcast(
            nodes[i], range(4),
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
            keychain, keys[i],
        )
    payload = "partial"
    payload_digest = digest(payload)
    content = ("brb-ack", 0, 1, payload_digest)
    proof = tuple(sign(keys[i], content) for i in (1, 2, 3))
    commit = SbCommit(0, 1, payload_digest, proof, 264)
    # PREPARE to everyone (so the proof *could* exist), COMMIT only to 1.
    for dst in (1, 2, 3):
        network.send(0, dst, SbPrepare(1, payload, 148), size=148)
    network.send(0, 1, commit, size=264)
    sim.run_until_idle()
    assert delivered[1] == [(0, 1, payload)]
    assert delivered[2] == []
    assert delivered[3] == []


def test_ack_guard_vetoes_ack():
    vetoed = []

    def veto(origin, seq, payload):
        vetoed.append((origin, seq))
        return False

    guards = [None, veto, veto, veto]
    sim, network, keychain, nodes, keys, layers, delivered = build(guards=guards)
    layers[0].broadcast(1, "blocked", 100)
    sim.run_until_idle()
    # Guarded replicas refused to ACK; only the broadcaster's own ACK
    # exists — no quorum, no delivery anywhere.
    assert all(delivered[i] == [] for i in range(4))
    assert vetoed


def test_ack_signature_must_match_sender():
    """An ACK signed with a key other than the sender's is discarded."""
    sim, network, keychain, nodes, keys, layers, delivered = build()
    layers[0].broadcast(1, "x", 100)
    # Byzantine replica 3 injects an ACK claiming to be from replica 2's
    # channel but signed with its own key: broadcaster must ignore it.
    payload_digest = digest("x")
    content = ("brb-ack", 0, 1, payload_digest)
    forged = SbAck(0, 1, payload_digest, sign(keys[3], content))
    network.send(2, 0, forged, size=112)
    sim.run_until_idle()
    # Normal flow still succeeds (3 honest acks exist regardless).
    assert delivered[0] == [(0, 1, "x")]


def test_delivered_count_and_membership_validation():
    sim, network, keychain, nodes, keys, layers, delivered = build()
    layers[0].broadcast(1, "x", 100)
    sim.run_until_idle()
    assert layers[1].delivered_count == 1
    lone = Node(sim, 77, network)
    with pytest.raises(ValueError):
        SignedBroadcast(lone, [0, 1], lambda o, s, p: None, keychain, keys[0])


def test_crashed_broadcaster_before_commit_no_delivery():
    """If the broadcaster crashes after PREPARE but before COMMIT, nobody
    delivers (no totality) — the payment layer's CREDIT mechanism exists
    precisely to compensate at a higher level."""
    sim, network, keychain, nodes, keys, layers, delivered = build(
        latency=ConstantLatency(0.01)
    )
    layers[0].broadcast(1, "orphan", 100)
    # Crash before ACKs return (one-way latency 10ms; ACK returns at 20ms).
    sim.schedule(0.015, network.crash, 0)
    sim.run_until_idle()
    assert all(delivered[i] == [] for i in range(4))
