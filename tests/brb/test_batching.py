"""Unit tests for the batching layer (§VI-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.brb.batching import (
    Batch,
    Batcher,
    KeyedCoalescer,
    group_by_representative,
)
from repro.brb.quorums import byzantine_quorum, max_faulty, validate_system_size
from repro.core.payment import Payment
from repro.sim import Simulator


class TestBatch:
    def test_size_accounting_plain_payments(self):
        batch = Batch([Payment("a", 1, "b", 5), Payment("a", 2, "b", 5)])
        assert batch.batch_items == 2
        assert batch.size_bytes == 200

    def test_digest_cached_and_stable(self):
        batch = Batch([Payment("a", 1, "b", 5)])
        assert batch.cached_digest == batch.cached_digest

    def test_equal_content_equal_digest(self):
        a = Batch([Payment("a", 1, "b", 5)])
        b = Batch([Payment("a", 1, "b", 5)])
        assert a.cached_digest == b.cached_digest

    def test_different_content_different_digest(self):
        a = Batch([Payment("a", 1, "b", 5)])
        b = Batch([Payment("a", 1, "c", 5)])
        assert a.cached_digest != b.cached_digest

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch([])

    def test_iteration_and_len(self):
        payments = [Payment("a", i, "b", 1) for i in range(1, 4)]
        batch = Batch(payments)
        assert list(batch) == payments
        assert len(batch) == 3


class TestBatcher:
    def test_flush_on_size(self):
        sim = Simulator()
        flushed = []
        batcher = Batcher(sim, flushed.append, max_size=3, max_delay=10.0)
        for i in range(3):
            batcher.add(i)
        assert flushed == [[0, 1, 2]]
        assert batcher.pending_count == 0

    def test_flush_on_timeout(self):
        sim = Simulator()
        flushed = []
        batcher = Batcher(sim, flushed.append, max_size=100, max_delay=0.05)
        batcher.add("x")
        sim.run_until_idle()
        assert flushed == [["x"]]

    def test_timer_measured_from_first_item(self):
        sim = Simulator()
        flush_times = []
        batcher = Batcher(
            sim, lambda items: flush_times.append(sim.now),
            max_size=100, max_delay=0.05,
        )
        sim.schedule(0.02, batcher.add, "a")
        sim.schedule(0.04, batcher.add, "b")
        sim.run_until_idle()
        assert flush_times == [pytest.approx(0.07)]

    def test_manual_flush_cancels_timer(self):
        sim = Simulator()
        flushed = []
        batcher = Batcher(sim, flushed.append, max_size=100, max_delay=0.05)
        batcher.add("x")
        batcher.flush()
        sim.run_until_idle()
        assert flushed == [["x"]]

    def test_flush_empty_is_noop(self):
        sim = Simulator()
        flushed = []
        batcher = Batcher(sim, flushed.append)
        batcher.flush()
        assert flushed == []

    def test_add_many(self):
        sim = Simulator()
        flushed = []
        batcher = Batcher(sim, flushed.append, max_size=2, max_delay=1.0)
        batcher.add_many([1, 2, 3])
        assert flushed == [[1, 2]]
        assert batcher.pending_count == 1

    def test_batches_flushed_counter(self):
        sim = Simulator()
        batcher = Batcher(sim, lambda items: None, max_size=1)
        batcher.add("a")
        batcher.add("b")
        assert batcher.batches_flushed == 2

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Batcher(sim, lambda items: None, max_size=0)
        with pytest.raises(ValueError):
            Batcher(sim, lambda items: None, max_delay=-1.0)

    @given(st.lists(st.integers(), min_size=1, max_size=50))
    def test_no_items_lost(self, items):
        sim = Simulator()
        flushed = []
        batcher = Batcher(sim, flushed.extend, max_size=7, max_delay=0.01)
        for item in items:
            batcher.add(item)
        sim.run_until_idle()
        assert flushed == items


class TestKeyedCoalescer:
    def _make(self, sim, **kwargs):
        flushed = []
        coalescer = KeyedCoalescer(
            sim, lambda key, items: flushed.append((key, list(items))), **kwargs
        )
        return coalescer, flushed

    def test_keys_have_independent_windows(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=100, max_delay=0.05)
        coalescer.add("a", 1)
        sim.schedule(0.03, coalescer.add, "b", 2)
        sim.run_until_idle()
        # a's window opened at t=0, b's at t=0.03: two flushes, a first.
        assert flushed == [("a", [1]), ("b", [2])]

    def test_flush_on_size_per_key(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=2, max_delay=10.0)
        coalescer.add("a", 1)
        coalescer.add("b", 9)
        coalescer.add("a", 2)
        assert flushed == [("a", [1, 2])]
        assert coalescer.pending_for("b") == 1
        sim.run_until_idle()
        assert flushed == [("a", [1, 2]), ("b", [9])]

    def test_items_coalesce_across_adds_within_window(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=100, max_delay=0.05)
        coalescer.add("a", 1)
        sim.schedule(0.02, coalescer.add, "a", 2)
        sim.schedule(0.04, coalescer.add, "a", 3)
        sim.run_until_idle()
        # One flush, timed from the key's *first* pending item.
        assert flushed == [("a", [1, 2, 3])]
        assert sim.now == pytest.approx(0.05)
        assert coalescer.flushes == 1
        assert coalescer.items_coalesced == 3

    def test_max_size_one_flushes_immediately_without_timer(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=1, max_delay=5.0)
        coalescer.add("a", 1)
        assert flushed == [("a", [1])]
        assert sim.pending == 0  # no timer left behind

    def test_flush_all_in_key_insertion_order(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=100, max_delay=1.0)
        coalescer.add_many("b", [1, 2])
        coalescer.add("a", 3)
        coalescer.flush_all()
        assert flushed == [("b", [1, 2]), ("a", [3])]
        assert coalescer.pending_count == 0
        sim.run_until_idle()
        assert len(flushed) == 2  # cancelled timers do not re-flush

    def test_manual_flush_key_cancels_timer(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=100, max_delay=0.05)
        coalescer.add("a", 1)
        coalescer.flush_key("a")
        sim.run_until_idle()
        assert flushed == [("a", [1])]

    def test_flush_empty_key_is_noop(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim)
        coalescer.flush_key("missing")
        assert flushed == []
        assert coalescer.flushes == 0

    def test_window_reopens_after_flush(self):
        sim = Simulator()
        coalescer, flushed = self._make(sim, max_size=100, max_delay=0.05)
        coalescer.add("a", 1)
        sim.run_until_idle()
        coalescer.add("a", 2)
        sim.run_until_idle()
        assert flushed == [("a", [1]), ("a", [2])]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            KeyedCoalescer(sim, lambda k, items: None, max_size=0)
        with pytest.raises(ValueError):
            KeyedCoalescer(sim, lambda k, items: None, max_delay=-0.1)

    def test_weight_fn_counts_against_size_cap(self):
        """With ``weight_fn`` the size cut fires on accumulated weight,
        not item count (CREDIT windows weigh sub-batches by payments)."""
        sim = Simulator()
        coalescer, flushed = self._make(
            sim, max_size=5, max_delay=10.0, weight_fn=len
        )
        coalescer.add("a", [1, 2])
        assert flushed == []
        coalescer.add("a", [3, 4, 5])  # weight 2 + 3 >= 5
        assert flushed == [("a", [[1, 2], [3, 4, 5]])]
        assert coalescer.pending_for("a") == 0

    def test_weight_fn_oversized_first_item_flushes_immediately(self):
        sim = Simulator()
        coalescer, flushed = self._make(
            sim, max_size=4, max_delay=10.0, weight_fn=len
        )
        coalescer.add("a", [1, 2, 3, 4, 5])
        assert flushed == [("a", [[1, 2, 3, 4, 5]])]
        assert sim.pending == 0  # no timer left behind

    def test_weight_resets_after_flush(self):
        sim = Simulator()
        coalescer, flushed = self._make(
            sim, max_size=4, max_delay=0.05, weight_fn=len
        )
        coalescer.add("a", [1, 2, 3])
        sim.run_until_idle()  # timer flush at weight 3
        coalescer.add("a", [4, 5, 6])
        sim.run_until_idle()  # fresh window: weight restarts from 0
        assert flushed == [("a", [[1, 2, 3]]), ("a", [[4, 5, 6]])]

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers()), min_size=1,
                    max_size=60))
    def test_no_items_lost_and_none_reordered_within_key(self, items):
        sim = Simulator()
        flushed = []
        coalescer = KeyedCoalescer(
            sim, lambda key, group: flushed.extend((key, x) for x in group),
            max_size=5, max_delay=0.01,
        )
        for key, value in items:
            coalescer.add(key, value)
        sim.run_until_idle()
        assert sorted(flushed) == sorted(items)
        for key in {k for k, _v in items}:
            assert [v for k, v in flushed if k == key] == [
                v for k, v in items if k == key
            ]


class TestGrouping:
    def test_group_by_representative(self):
        payments = [Payment("a", 1, "b", 1), Payment("a", 2, "c", 1),
                    Payment("x", 1, "b", 1)]
        reps = {"b": 10, "c": 20}
        groups = group_by_representative(payments, lambda p: reps[p.beneficiary])
        assert set(groups) == {10, 20}
        assert [p.beneficiary for p in groups[10]] == ["b", "b"]
        assert [p.beneficiary for p in groups[20]] == ["c"]


class TestQuorums:
    def test_max_faulty(self):
        assert max_faulty(4) == 1
        assert max_faulty(10) == 3
        assert max_faulty(100) == 33

    def test_quorum_is_2f_plus_1_at_optimal_size(self):
        for f in range(1, 34):
            n = 3 * f + 1
            assert byzantine_quorum(n, f) == 2 * f + 1

    def test_quorum_intersection_property(self):
        """Two quorums always intersect in at least one correct replica."""
        for n in range(4, 40):
            f = max_faulty(n)
            q = byzantine_quorum(n, f)
            assert 2 * q - n >= f + 1

    def test_validate_system_size(self):
        validate_system_size(4, 1)
        with pytest.raises(ValueError):
            validate_system_size(3, 1)
        with pytest.raises(ValueError):
            validate_system_size(4, -1)
