"""Property-based tests of the BRB guarantees under random schedules.

These drive both protocols over randomized latency samples, broadcast
interleavings, and crash subsets, asserting the §IV properties hold in
every execution.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.brb.bracha import BrachaBroadcast
from repro.brb.signed import SignedBroadcast
from repro.crypto import Keychain, replica_owner
from repro.sim import Network, Node, Simulator, UniformLatency

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_bracha(n, seed):
    sim = Simulator()
    network = Network(sim, latency=UniformLatency(0.001, 0.02, seed=seed))
    nodes = [Node(sim, i, network) for i in range(n)]
    delivered = {i: [] for i in range(n)}
    layers = [
        BrachaBroadcast(
            nodes[i], range(n),
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
        )
        for i in range(n)
    ]
    return sim, network, layers, delivered


def build_signed(n, seed):
    sim = Simulator()
    network = Network(sim, latency=UniformLatency(0.001, 0.02, seed=seed))
    keychain = Keychain(seed=seed + 1)
    nodes = [Node(sim, i, network) for i in range(n)]
    keys = [keychain.generate(replica_owner(i)) for i in range(n)]
    delivered = {i: [] for i in range(n)}
    layers = [
        SignedBroadcast(
            nodes[i], range(n),
            (lambda i: lambda o, s, p: delivered[i].append((o, s, p)))(i),
            keychain, keys[i],
        )
        for i in range(n)
    ]
    return sim, network, layers, delivered


broadcast_plan = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 5)),  # (origin, count)
    min_size=1,
    max_size=6,
)


@settings(**SETTINGS)
@given(plan=broadcast_plan, seed=st.integers(0, 2**16))
def test_bracha_agreement_integrity_fifo(plan, seed):
    sim, network, layers, delivered = build_bracha(4, seed)
    sequences = {i: 0 for i in range(4)}
    for origin, count in plan:
        for _ in range(count):
            sequences[origin] += 1
            layers[origin].broadcast(
                sequences[origin], f"m-{origin}-{sequences[origin]}", 100
            )
    sim.run_until_idle()
    reference = delivered[0]
    for i in range(4):
        # Reliability: everything broadcast is delivered...
        assert len(delivered[i]) == sum(sequences.values())
        # Integrity: ...exactly once.
        assert len(set(delivered[i])) == len(delivered[i])
        # Agreement: same payload per identifier everywhere.
        assert dict(((o, s), p) for o, s, p in delivered[i]) == dict(
            ((o, s), p) for o, s, p in reference
        )
        # FIFO per origin.
        for origin in range(4):
            seqs = [s for (o, s, _) in delivered[i] if o == origin]
            assert seqs == sorted(seqs)


@settings(**SETTINGS)
@given(plan=broadcast_plan, seed=st.integers(0, 2**16))
def test_signed_agreement_integrity(plan, seed):
    sim, network, layers, delivered = build_signed(4, seed)
    sequences = {i: 0 for i in range(4)}
    for origin, count in plan:
        for _ in range(count):
            sequences[origin] += 1
            layers[origin].broadcast(
                sequences[origin], f"m-{origin}-{sequences[origin]}", 100
            )
    sim.run_until_idle()
    for i in range(4):
        assert len(delivered[i]) == sum(sequences.values())
        assert len(set(delivered[i])) == len(delivered[i])
        assert dict(((o, s), p) for o, s, p in delivered[i]) == dict(
            ((o, s), p) for o, s, p in delivered[0]
        )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    crash_subset=st.sets(st.integers(0, 6), max_size=2),
    crash_at=st.floats(min_value=0.0, max_value=0.05),
)
def test_bracha_totality_with_crashes(seed, crash_subset, crash_at):
    """n=7, f=2: any ≤f crash subset (possibly including the broadcaster,
    possibly mid-protocol): either nobody correct delivers, or every
    correct replica delivers the same payload (totality + agreement)."""
    n = 7
    sim, network, layers, delivered = build_bracha(n, seed)
    layers[0].broadcast(1, "payload", 100)
    for victim in crash_subset:
        sim.schedule(crash_at, network.crash, victim)
    sim.run_until_idle()
    correct = [i for i in range(n) if i not in crash_subset]
    outcomes = {tuple(delivered[i]) for i in correct}
    assert outcomes in (
        {()},
        {((0, 1, "payload"),)},
    ), f"mixed outcomes violate totality: {outcomes}"


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    crash_subset=st.sets(st.integers(1, 6), max_size=2),
)
def test_signed_reliability_with_non_broadcaster_crashes(seed, crash_subset):
    """n=7, f=2: with a CORRECT broadcaster, ≤f crashes elsewhere cannot
    prevent delivery at the remaining correct replicas."""
    n = 7
    sim, network, layers, delivered = build_signed(n, seed)
    for victim in crash_subset:
        network.crash(victim)
    layers[0].broadcast(1, "payload", 100)
    sim.run_until_idle()
    for i in range(n):
        if i in crash_subset:
            continue
        assert delivered[i] == [(0, 1, "payload")]
