"""Tests for workload generators and load drivers."""

import pytest

from repro.core.system import Astro2System
from repro.workloads.drivers import ClosedLoopDriver, OpenLoopDriver
from repro.workloads.smallbank import (
    SmallbankWorkload,
    bank,
    checking,
    savings,
    shard_assignment,
    smallbank_genesis,
)
from repro.workloads.uniform import UniformWorkload, uniform_genesis
from repro.sim.metrics import LatencyRecorder, ThroughputMeter


class TestUniformWorkload:
    def test_round_robin_spenders(self):
        workload = UniformWorkload(["a", "b", "c"], seed=1)
        spenders = [workload.next()[0] for _ in range(6)]
        assert spenders == ["a", "b", "c", "a", "b", "c"]

    def test_never_self_transfer(self):
        workload = UniformWorkload(["a", "b"], seed=2)
        for _ in range(50):
            spender, beneficiary, _ = workload.next()
            assert spender != beneficiary

    def test_amounts_in_range(self):
        workload = UniformWorkload(["a", "b"], seed=3, min_amount=5, max_amount=9)
        for _ in range(50):
            assert 5 <= workload.next()[2] <= 9

    def test_needs_two_clients(self):
        with pytest.raises(ValueError):
            UniformWorkload(["solo"])

    def test_next_for_fixed_spender(self):
        workload = UniformWorkload(["a", "b", "c"], seed=4)
        for _ in range(20):
            spender, beneficiary, _ = workload.next_for("b")
            assert spender == "b"
            assert beneficiary != "b"

    def test_genesis_builder(self):
        genesis = uniform_genesis(5, balance=42)
        assert len(genesis) == 5
        assert all(value == 42 for value in genesis.values())


class TestSmallbank:
    def test_genesis_contains_two_accounts_per_owner_plus_banks(self):
        genesis = smallbank_genesis(4, num_shards=2)
        assert checking(0) in genesis
        assert savings(0) in genesis
        assert bank(0) in genesis and bank(1) in genesis
        assert len(genesis) == 4 * 2 + 2

    def test_shard_assignment_keeps_owner_accounts_together(self):
        assignment = shard_assignment(8, 4)
        for owner in range(8):
            assert assignment[checking(owner)] == assignment[savings(owner)]

    def test_write_operations_reference_known_accounts(self):
        genesis = smallbank_genesis(6, num_shards=2)
        workload = SmallbankWorkload(6, num_shards=2, seed=5)
        for _ in range(200):
            spender, beneficiary, amount = workload.next_write()
            assert spender in genesis
            assert beneficiary in genesis
            assert amount > 0

    def test_balance_queries_counted(self):
        workload = SmallbankWorkload(4, seed=6)
        outputs = [workload.next() for _ in range(400)]
        nones = outputs.count(None)
        assert nones == workload.balance_queries
        assert 20 < nones < 120  # ≈15% of the mix

    def test_cross_shard_fraction_near_12_5_percent(self):
        workload = SmallbankWorkload(64, num_shards=4, seed=7)
        for _ in range(6000):
            workload.next()
        # Fraction of WRITES that crossed; the paper's 12.5% is of all
        # transactions — compare accordingly.
        total_ops = workload.total_writes + workload.balance_queries
        cross_of_all = workload.cross_shard_sent / total_ops
        assert 0.09 <= cross_of_all <= 0.16

    def test_single_shard_never_crosses(self):
        workload = SmallbankWorkload(8, num_shards=1, seed=8)
        for _ in range(500):
            workload.next()
        assert workload.cross_shard_sent == 0

    def test_custom_mix_respected(self):
        workload = SmallbankWorkload(
            4, seed=9, mix={"send_payment": 100}
        )
        for _ in range(50):
            spender, beneficiary, _ = workload.next_write()
            assert spender[2] == "checking"
            assert beneficiary[2] == "checking"

    def test_needs_two_owners(self):
        with pytest.raises(ValueError):
            SmallbankWorkload(1)


GENESIS = {"a": 10**6, "b": 10**6, "c": 10**6, "d": 10**6}


class TestDrivers:
    def test_open_loop_injects_at_rate(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=1)
        workload = UniformWorkload(list(GENESIS), seed=1)
        meter = ThroughputMeter()
        driver = OpenLoopDriver(
            system, workload, rate=500.0, duration=2.0, meter=meter
        )
        system.run(3.0)
        assert driver.injected == pytest.approx(1000, abs=10)
        assert driver.confirmed > 800

    def test_open_loop_skips_read_only_ops(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=1)

        class OnlyReads:
            def next(self):
                return None

        driver = OpenLoopDriver(system, OnlyReads(), rate=100.0, duration=1.0)
        system.run(1.5)
        assert driver.injected == 0

    def test_open_loop_rejects_bad_rate(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=1)
        with pytest.raises(ValueError):
            OpenLoopDriver(system, None, rate=0.0, duration=1.0)

    def test_closed_loop_one_in_flight(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=2)
        workload = UniformWorkload(list(GENESIS), seed=2)
        meter = ThroughputMeter()
        recorder = LatencyRecorder()
        driver = ClosedLoopDriver(
            system, ["a", "b"], workload, stop_at=2.0,
            meter=meter, recorder=recorder,
        )
        system.run(3.0)
        assert driver.completed > 4
        for node in driver.nodes:
            assert node.in_flight <= 1
        assert recorder.count == driver.completed

    def test_closed_loop_think_time_slows_rate(self):
        def run(think):
            system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=3)
            workload = UniformWorkload(list(GENESIS), seed=3)
            driver = ClosedLoopDriver(
                system, ["a"], workload, stop_at=3.0, think_time=think
            )
            system.run(3.5)
            return driver.completed

        assert run(0.0) > run(0.5)

    def test_closed_loop_stops_at_deadline(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=4)
        workload = UniformWorkload(list(GENESIS), seed=4)
        meter = ThroughputMeter()
        ClosedLoopDriver(system, ["a"], workload, stop_at=1.0, meter=meter)
        system.run(5.0)
        assert meter.count_between(2.0, 5.0) == 0


class TestWorkloadsOnArrayStore:
    """Drivers and workloads against the array-backed account store.

    Smallbank's tuple ClientIds and the drivers' submission paths all
    funnel through the interner + slab views that replaced the
    dict-of-objects store; these runs pin the integration.
    """

    def test_smallbank_open_loop_settles_on_array_store(self):
        genesis = smallbank_genesis(8)
        system = Astro2System(num_replicas=4, genesis=genesis, seed=5)
        workload = SmallbankWorkload(8, seed=5)
        driver = OpenLoopDriver(
            system, workload, rate=300.0, duration=2.0
        )
        system.run(3.0)
        system.settle_all()
        assert driver.confirmed > 100
        state = system.replicas[0].state
        # Tuple client ids round-trip through the interner and views.
        assert checking(0) in state.balances
        # Σ balances + settled-but-unmaterialized credits is conserved.
        assert system.total_value() == sum(genesis.values())
        assert state.snapshot() == system.replicas[1].state.snapshot()

    def test_closed_loop_settles_on_array_store(self):
        system = Astro2System(num_replicas=4, genesis=dict(GENESIS), seed=6)
        workload = UniformWorkload(list(GENESIS), seed=6)
        driver = ClosedLoopDriver(
            system, ["a", "c"], workload, stop_at=2.0
        )
        system.run(3.0)
        system.settle_all()
        assert driver.completed > 4
        state = system.replicas[0].state
        assert state.seqnum("a") > 0
        assert len(state.xlog("a")) == state.seqnum("a")
