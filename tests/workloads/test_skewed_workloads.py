"""Zipf and merchant workloads, the Workload registry, REPRO_WORKLOAD."""

import pytest

from repro.bench.runner import run_open_loop
from repro.bench.systems import build_astro2, client_ids_of
from repro.workloads import (
    MERCHANT_BALANCE,
    MerchantWorkload,
    UniformWorkload,
    Workload,
    ZipfWorkload,
    make_workload,
    merchant_genesis,
    merchant_split,
    resolve_workload_name,
    uniform_genesis,
    workload_genesis,
)

CLIENTS = [f"client-{i}" for i in range(20)]


class TestZipfWorkload:
    def test_deterministic_across_instances(self):
        a = ZipfWorkload(CLIENTS, seed=7)
        b = ZipfWorkload(CLIENTS, seed=7)
        assert [a.next() for _ in range(100)] == [
            b.next() for _ in range(100)
        ]

    def test_different_seeds_differ(self):
        a = ZipfWorkload(CLIENTS, seed=1)
        b = ZipfWorkload(CLIENTS, seed=2)
        assert [a.next() for _ in range(50)] != [b.next() for _ in range(50)]

    def test_skews_toward_low_ranks(self):
        workload = ZipfWorkload([f"c{i:03d}" for i in range(200)], seed=0)
        draws = [workload.next()[0] for _ in range(4000)]
        top_share = sum(1 for c in draws if c < "c010") / len(draws)
        uniform_share = 10 / 200
        assert top_share > 4 * uniform_share

    def test_never_self_transfer(self):
        workload = ZipfWorkload(["a", "b"], seed=3)
        for _ in range(100):
            spender, beneficiary, _ = workload.next()
            assert spender != beneficiary

    def test_amounts_in_range(self):
        workload = ZipfWorkload(CLIENTS, seed=4, min_amount=5, max_amount=9)
        for _ in range(100):
            assert 5 <= workload.next()[2] <= 9

    def test_next_for_fixed_spender(self):
        workload = ZipfWorkload(CLIENTS, seed=5)
        for _ in range(50):
            spender, beneficiary, _ = workload.next_for("client-3")
            assert spender == "client-3"
            assert beneficiary != "client-3"

    def test_guards(self):
        with pytest.raises(ValueError):
            ZipfWorkload(["solo"])
        with pytest.raises(ValueError):
            ZipfWorkload(CLIENTS, exponent=0.0)


class TestMerchantWorkload:
    def test_genesis_tight_merchants(self):
        genesis = merchant_genesis(100)
        merchants = {c for c in genesis if str(c).startswith("merchant-")}
        assert len(merchants) == 5
        assert all(genesis[m] == MERCHANT_BALANCE for m in merchants)
        assert all(
            genesis[c] == 10**9 for c in genesis if c not in merchants
        )

    def test_genesis_guards(self):
        with pytest.raises(ValueError):
            merchant_genesis(1)

    def test_split_by_prefix_and_fallback(self):
        genesis = merchant_genesis(40)
        consumers, merchants = merchant_split(sorted(genesis, key=repr))
        assert all(str(m).startswith("merchant-") for m in merchants)
        assert len(consumers) + len(merchants) == 40
        # Populations without merchant ids use their tail.
        plain = [f"c{i:04d}" for i in range(40)]
        consumers, merchants = merchant_split(plain)
        assert merchants == plain[-2:]

    def test_flows_touch_a_merchant(self):
        genesis = merchant_genesis(40)
        workload = MerchantWorkload(sorted(genesis, key=repr), seed=1)
        for _ in range(300):
            spender, beneficiary, amount = workload.next()
            assert spender != beneficiary
            assert str(spender).startswith("merchant-") or str(
                beneficiary
            ).startswith("merchant-")
            assert amount > 0
        assert workload.purchases > workload.payouts > 0

    def test_deterministic(self):
        population = sorted(merchant_genesis(30), key=repr)
        a = MerchantWorkload(population, seed=9)
        b = MerchantWorkload(population, seed=9)
        assert [a.next() for _ in range(80)] == [b.next() for _ in range(80)]

    def test_next_for_merchant_pays_out(self):
        population = sorted(merchant_genesis(30), key=repr)
        workload = MerchantWorkload(population, seed=2)
        merchant = workload.merchants[0]
        spender, beneficiary, amount = workload.next_for(merchant)
        assert spender == merchant
        assert not str(beneficiary).startswith("merchant-")
        assert amount >= workload.payout_min
        consumer = workload.consumers[0]
        _, beneficiary, _ = workload.next_for(consumer)
        assert str(beneficiary).startswith("merchant-")

    def test_guards(self):
        with pytest.raises(ValueError):
            MerchantWorkload(["solo"])
        with pytest.raises(ValueError):
            MerchantWorkload(CLIENTS, purchase_fraction=1.0)


class TestWorkloadKnob:
    def test_default_is_uniform(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOAD", raising=False)
        assert resolve_workload_name() == "uniform"
        monkeypatch.setenv("REPRO_WORKLOAD", "")
        assert resolve_workload_name() == "uniform"

    def test_env_resolution_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD", "zipf")
        assert resolve_workload_name() == "zipf"
        assert resolve_workload_name("merchant") == "merchant"

    def test_invalid_name_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD", "hotspot")
        with pytest.raises(ValueError, match="REPRO_WORKLOAD"):
            resolve_workload_name()
        with pytest.raises(ValueError):
            make_workload("hotspot", CLIENTS)
        with pytest.raises(ValueError):
            workload_genesis("hotspot", 10)

    def test_uniform_factory_matches_legacy_default(self):
        made = make_workload("uniform", CLIENTS, seed=5)
        legacy = UniformWorkload(CLIENTS, seed=5)
        assert [made.next() for _ in range(50)] == [
            legacy.next() for _ in range(50)
        ]

    def test_factories_satisfy_protocol(self):
        for name in ("uniform", "zipf", "merchant"):
            assert isinstance(make_workload(name, CLIENTS), Workload)

    def test_genesis_registry(self):
        assert workload_genesis("uniform", 8) == uniform_genesis(8)
        assert workload_genesis("zipf", 8) == uniform_genesis(8)
        merchant = workload_genesis("merchant", 8)
        assert any(str(c).startswith("merchant-") for c in merchant)


class TestUniformGuards:
    def test_genesis_rejects_empty_population(self):
        with pytest.raises(ValueError, match="at least one client"):
            uniform_genesis(0)
        with pytest.raises(ValueError):
            uniform_genesis(-4)
        with pytest.raises(ValueError, match="balance"):
            uniform_genesis(3, balance=-1)

    def test_next_raises_when_population_shrinks_to_one(self):
        workload = UniformWorkload(["a", "b"], seed=0)
        workload.clients.pop()
        with pytest.raises(ValueError, match="at least two clients"):
            workload.next()
        with pytest.raises(ValueError, match="at least two clients"):
            workload.next_for("a")


class TestMerchantEndToEnd:
    def test_tight_merchants_force_dependency_certificates(self, monkeypatch):
        """Credit-funded payouts settle end to end on Astro II."""
        monkeypatch.setenv("REPRO_WORKLOAD", "merchant")
        system = build_astro2(4, seed=0)
        merchants = [
            c for c in client_ids_of(system)
            if str(c).startswith("merchant-")
        ]
        assert merchants
        assert all(system.genesis[m] == MERCHANT_BALANCE for m in merchants)
        result = run_open_loop(system, rate=300, duration=2.0, warmup=0.5)
        system.settle_all()
        assert result.confirmed > 0
        minted = sum(
            r._collector.minted_subbatches for r in system.replicas
        )
        assert minted > 0
        deps_settled = sum(
            1
            for xlog in system.replicas[0].state.xlogs.values()
            for payment in xlog
            if payment.deps
        )
        assert deps_settled > 0
        assert all(not r.rejected for r in system.replicas)
