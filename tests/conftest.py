"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.crypto import Keychain, replica_owner
from repro.sim import ConstantLatency, Network, Node, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim, latency=ConstantLatency(0.005))


@pytest.fixture
def keychain() -> Keychain:
    return Keychain(seed=1234)


def make_nodes(sim: Simulator, network: Network, count: int) -> list:
    return [Node(sim, node_id, network) for node_id in range(count)]


def replica_keys(keychain: Keychain, count: int) -> list:
    return [keychain.generate(replica_owner(node_id)) for node_id in range(count)]
