"""InvariantMonitor unit tests: each invariant actually detects its
violation when correct-replica state is tampered with directly, and a
clean run stays clean."""

import pytest

from repro.adversary import InvariantMonitor
from repro.bench.systems import SYSTEM_BUILDERS, client_ids_of
from repro.core.payment import Payment


def build(system_name="astro1", size=4, seed=1):
    system = SYSTEM_BUILDERS[system_name](size, seed=seed)
    monitor = InvariantMonitor(system, interval=0.5, until=2.0)
    return system, monitor


def drive(system, payments=8):
    clients = client_ids_of(system)
    for index in range(payments):
        system.submit(clients[index % 4], clients[(index + 1) % 4], 10)
    system.run(2.5)


def violated(monitor):
    return {violation["invariant"] for violation in monitor.violations}


def test_clean_run_is_clean():
    system, monitor = build()
    drive(system)
    monitor.sample()
    verdict = monitor.verdict()
    assert verdict["ok"]
    assert verdict["first_violation"] is None
    # Sampled on cadence during the run (0.5 .. 2.0) plus the final call.
    assert monitor.samples == 5


def test_monitor_excludes_byzantine_replicas():
    system = SYSTEM_BUILDERS["astro1"](4, seed=1)
    last = system.replica_node_ids[-1]
    monitor = InvariantMonitor(system, byzantine_ids=(last,), until=1.0)
    assert all(r.node_id != last for r in monitor.replicas)
    # Tampering with the Byzantine replica's state is not a violation.
    system.replica_by_node(last).state.balances["client-0"] = -1
    monitor.sample()
    assert monitor.verdict()["ok"]


def test_negative_balance_detected():
    system, monitor = build()
    drive(system)
    system.replicas[0].state.balances["client-0"] = -5
    monitor.sample()
    assert "non_negative" in violated(monitor)


def test_seqnum_xlog_mismatch_detected():
    system, monitor = build()
    drive(system)
    replica = system.replicas[1]
    client = next(c for c, log in replica.state.xlogs.items() if len(log))
    replica.state.seqnums[client] += 1
    monitor.sample()
    assert "sequence" in violated(monitor)


def test_xlog_shrink_detected():
    system, monitor = build()
    drive(system)
    monitor.sample()
    assert monitor.verdict()["ok"]
    replica = system.replicas[2]
    client = next(c for c, log in replica.state.xlogs.items() if len(log))
    replica.state.xlogs[client]._entries.pop()
    replica.state.seqnums[client] -= 1
    monitor.sample()
    assert "sequence" in violated(monitor)


def test_double_spend_detected():
    system, monitor = build()
    drive(system)
    # Two correct replicas settle conflicting payments for one identifier.
    clients = client_ids_of(system)
    spare = clients[5]
    for replica, beneficiary in ((system.replicas[0], clients[6]),
                                 (system.replicas[1], clients[7])):
        replica.state.xlogs[spare]._entries.append(
            Payment(spare, 1, beneficiary, 10)
        )
        replica.state.seqnums[spare] = 1
        replica.state.balances[spare] -= 10
        replica.state.balances[beneficiary] = (
            replica.state.balances.get(beneficiary, 0) + 10
        )
    monitor.sample()
    assert "double_spend" in violated(monitor)


def test_conservation_detected_atomic():
    system, monitor = build("astro1")
    drive(system)
    system.replicas[0].state.balances["client-1"] += 999
    monitor.sample()
    assert "conservation" in violated(monitor)


def test_conservation_detected_astro2():
    system, monitor = build("astro2")
    drive(system)
    system.replicas[0].state.balances["client-1"] += 999
    monitor.sample()
    assert "conservation" in violated(monitor)


def test_unvouched_dependency_detected():
    """A materialized dependency no correct replica's xlog can explain is
    itself a conservation violation (fabricated certificate)."""
    system, monitor = build("astro2")
    drive(system)
    replica = system.replicas[0]
    replica._used_deps.setdefault("client-0", set()).add(("ghost", 1))
    monitor.sample()
    records = [v for v in monitor.violations if "unknown_dep" in v]
    assert records, monitor.violations


def test_divergent_xlogs_detected():
    system, monitor = build()
    drive(system)
    clients = client_ids_of(system)
    spare = clients[5]
    # Same length, different content: neither log is a prefix of the other.
    system.replicas[0].state.xlogs[spare]._entries.append(
        Payment(spare, 1, clients[6], 10)
    )
    system.replicas[1].state.xlogs[spare]._entries.append(
        Payment(spare, 1, clients[6], 20)
    )
    for replica in system.replicas[:2]:
        replica.state.seqnums[spare] = 1
        replica.state.balances[spare] -= 10
    monitor.sample()
    assert "convergence" in violated(monitor)


def test_first_violation_time_recorded():
    system = SYSTEM_BUILDERS["astro1"](4, seed=1)
    monitor = InvariantMonitor(system, interval=0.5, until=4.0)

    def corrupt():
        system.replicas[0].state.balances["client-0"] = -1

    system.sim.schedule_at(2.1, corrupt)
    drive(system, payments=4)
    system.run(4.0)
    verdict = monitor.verdict()
    assert not verdict["ok"]
    # Corruption at t=2.1 is caught at the next sampling tick (t=2.5).
    assert 2.1 < verdict["first_violation"] <= 2.6
    assert verdict["first_violation"] == monitor.first_violation()


def test_monitor_requires_a_correct_replica():
    system = SYSTEM_BUILDERS["astro1"](4, seed=1)
    with pytest.raises(ValueError, match="no correct replicas"):
        InvariantMonitor(
            system, byzantine_ids=tuple(system.replica_node_ids)
        )


def test_stop_halts_sampling():
    system, monitor = build()
    monitor.stop()
    system.run(2.5)
    assert monitor.samples == 0
