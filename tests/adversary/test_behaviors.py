"""Every attack, on every applicable system, under live monitoring.

The acceptance bar for the attack library: all five DESIGN §4 safety
invariants hold at *correct* replicas while each attack runs, checked
online by the :class:`InvariantMonitor` on a sub-second cadence plus a
final post-run sample.  The forged-CREDIT and attacker-sized-signature
attacks double as regression tests for the PR 5 hardening (first-arrival
digest validation in ``DependencyCollector.add_credit``; O(1) tuple-shape
and distinct-signer rejection in ``verify_certificate``).
"""

import functools

import pytest

from repro.adversary import ATTACKS, InvariantMonitor, install_adversary
from repro.bench.systems import SYSTEM_BUILDERS
from repro.bench.timeline import run_timeline

SIZE = 7  # f = 2 Byzantine replicas
WARMUP = 1.0
WINDOW = 3.0
ARM_AT = 1.5  # 0.5 s into the observation window
END = WARMUP + WINDOW

COMBOS = [
    (system, name)
    for system in ("astro1", "astro2")
    for name, cls in sorted(ATTACKS.items())
    if system in cls.systems
]


@functools.lru_cache(maxsize=None)
def run_attacked(system_name, attack):
    """One attacked timeline; cached so targeted tests reuse the run."""
    system = SYSTEM_BUILDERS[system_name](SIZE, seed=7)
    adversary = install_adversary(
        system, {"attack": attack, "at": ARM_AT}, seed=7
    )
    monitor = InvariantMonitor(
        system, interval=0.25, byzantine_ids=adversary.byzantine_ids,
        until=END,
    )
    result = run_timeline(
        system, num_clients=6, warmup=WARMUP, window=WINDOW, seed=7,
    )
    monitor.stop()
    monitor.sample()
    return system, adversary, monitor, result


def correct_replicas(system, adversary):
    return [
        system.replica_by_node(node_id)
        for node_id in system.replica_node_ids
        if node_id not in adversary.byzantine_ids
    ]


@pytest.mark.parametrize("system_name,attack", COMBOS)
def test_invariants_hold_under_attack(system_name, attack):
    system, adversary, monitor, result = run_attacked(system_name, attack)
    assert adversary.byzantine_ids == tuple(system.replica_node_ids[-2:])
    assert adversary.tampered > 0, "attack never fired"
    assert result.completed > 0, "no payments settled under attack"
    assert monitor.samples >= 10, "monitor must sample during the run"
    verdict = monitor.verdict()
    assert verdict["ok"], f"safety violated: {monitor.violations[:3]}"
    assert verdict["first_violation"] is None


@pytest.mark.parametrize("system_name,attack", COMBOS)
def test_attack_armed_at_configured_time(system_name, attack):
    _, adversary, _, _ = run_attacked(system_name, attack)
    assert adversary.armed_at == ARM_AT
    for behavior in adversary.behaviors:
        assert behavior.active


def test_forged_credits_never_certify_inflated_amounts():
    """PR 5 regression: the collector's first-arrival digest check is the
    only thing standing between a forged CREDIT payload and a certificate
    over inflated amounts."""
    system, adversary, _, result = run_attacked("astro2", "forge_credit")
    # Forgeries were actually sent...
    assert adversary.tampered > 0
    # ...yet no inflated amount (forgery pattern: 100·a + 1) ever settled
    # or materialized at a correct replica.
    for replica in correct_replicas(system, adversary):
        for log in replica.state.xlogs.values():
            for payment in log.entries():
                assert payment.amount < 10_000
    # Certificates still mint from the >= f+1 correct settlers: progress
    # continued after the attack armed.
    assert result.after_fault() > 0


def test_stuffed_certificates_rejected_but_batch_settles():
    """PR 5 regression: oversized tuples die on the O(1) length check,
    undersized ones on the distinct-signer threshold — while the stuffed
    batch's *real* payments settle untouched at correct replicas."""
    system, adversary, _, _ = run_attacked("astro2", "cert_stuffing")
    assert adversary.tampered > 0
    stuffed_seen = 0
    for replica in correct_replicas(system, adversary):
        # No ghost dependency was ever materialized.
        for used in replica._used_deps.values():
            for dep_id in used:
                spender = dep_id[0]
                assert not (
                    isinstance(spender, tuple) and spender
                    and spender[0] == "ghost"
                )
        # No ghost client ever gained a balance or an xlog.
        for client in replica.state.balances:
            assert not (
                isinstance(client, tuple) and client
                and client[0] == "ghost"
            )
        for log in replica.state.xlogs.values():
            for payment in log.entries():
                stuffed_seen += sum(
                    1 for cert in payment.deps
                    if isinstance(cert.payment.spender, tuple)
                    and cert.payment.spender[0] == "ghost"
                )
    # The stuffed batch itself reached correct replicas' xlogs (the
    # attacker's forged digest gathered its own ACK quorum).
    assert stuffed_seen > 0


def test_mute_replicas_do_not_stop_settlement():
    _, adversary, _, result = run_attacked("astro1", "mute")
    assert adversary.tampered > 0
    assert result.after_fault() > 0


def test_flood_victim_survives():
    system, adversary, _, result = run_attacked("astro2", "flood")
    victim = min(
        n for n in system.replica_node_ids
        if n not in adversary.byzantine_ids
    )
    replica = system.replica_by_node(victim)
    # The ghost spender never corrupted client state at the victim.
    for client in replica.state.seqnums:
        assert not (
            isinstance(client, tuple) and client and client[0] == "flood"
        )
    assert result.after_fault() > 0


def test_equivocation_keeps_correct_replicas_convergent():
    system, adversary, monitor, _ = run_attacked("astro2", "equivocate")
    assert adversary.tampered > 0
    # Spot-check beyond the monitor: every pair of correct replicas in
    # the (single) shard agrees by prefix on every client's xlog.
    replicas = correct_replicas(system, adversary)
    for client in system.genesis:
        logs = [
            r.state.xlogs[client] for r in replicas
            if client in r.state.xlogs
        ]
        reference = max(logs, key=len)
        assert all(log.is_prefix_of(reference) for log in logs)


def test_tap_forwards_verbatim_until_armed():
    """Before the arm time an attacked run is byte-identical to benign."""
    def run(adversary_spec):
        system = SYSTEM_BUILDERS["astro2"](4, seed=5)
        if adversary_spec is not None:
            install_adversary(system, adversary_spec, seed=5)
        for index, transfer in enumerate(
            [("c", "d", 3), ("d", "c", 5)] * 4
        ):
            clients = sorted(system.genesis, key=repr)
            system.submit(clients[index % 2], clients[2], 1)
        system.run(0.5)
        return (
            system.sim.now,
            system.sim.events_executed,
            tuple(system.settled_counts()),
        )

    benign = run(None)
    armed_later = run({"attack": "mute", "at": 100.0})
    assert benign == armed_later


def test_attack_applicability_enforced():
    system = SYSTEM_BUILDERS["astro1"](4, seed=1)
    with pytest.raises(ValueError, match="applies to"):
        install_adversary(system, "forge_credit", seed=1)
    with pytest.raises(ValueError, match="unknown attack"):
        install_adversary(system, "nonexistent", seed=1)
    with pytest.raises(ValueError, match="count"):
        install_adversary(system, {"attack": "mute", "count": 4}, seed=1)
