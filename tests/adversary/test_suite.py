"""run_byzantine_robustness: enumeration, knobs, verdicts, JSON shape."""

import json

import pytest

from repro.adversary import ATTACKS
from repro.bench.adversary import (
    applicable_attacks,
    run_byzantine_robustness,
)

FAST = dict(size=4, warmup=0.5, window=2.0, monitor_interval=0.5)


def test_applicable_attacks_catalog():
    assert applicable_attacks("astro2") == sorted(
        applicable_attacks("astro2"), key=list(ATTACKS).index
    )
    assert set(applicable_attacks("astro2")) == set(ATTACKS)
    astro1 = set(applicable_attacks("astro1"))
    assert "forge_credit" not in astro1
    assert "cert_stuffing" not in astro1
    assert {"equivocate", "mute", "selective", "replay", "flood"} <= astro1
    with pytest.raises(ValueError, match="unknown attack"):
        applicable_attacks("astro2", ["no_such_attack"])


def test_suite_runs_all_cells_and_stays_safe():
    suite = run_byzantine_robustness(seed=3, **FAST)
    expected = {
        (system, attack)
        for system in ("astro1", "astro2")
        for attack in applicable_attacks(system)
    }
    assert set(suite.cells) == expected
    assert len(suite.cells) == 12
    assert suite.all_safe
    for (system, attack), cell in suite.cells.items():
        assert cell["system"] == system
        assert cell["attack"] == attack
        assert cell["verdict"]["ok"]
        assert cell["verdict"]["samples"] > 0
        assert cell["tampered"] > 0
        assert len(cell["byzantine"]) == 1  # f = 1 at N = 4
    # The report is JSON-serializable and carries every cell.
    document = json.loads(json.dumps(suite.report()))
    assert document["all_safe"] is True
    assert len(document["cells"]) == 12
    assert {c["attack"] for c in document["cells"]} == set(ATTACKS)
    # The human-readable table mentions every attack and verdict.
    table = suite.table()
    for attack in ATTACKS:
        assert attack in table
    assert "SAFE" in table and "VIOLATED" not in table


def test_attack_and_system_filters():
    suite = run_byzantine_robustness(
        seed=3, systems=("astro2",), attacks=("mute", "forge_credit"),
        **FAST,
    )
    assert set(suite.cells) == {
        ("astro2", "mute"), ("astro2", "forge_credit"),
    }


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_ADVERSARY_ATTACKS", "mute")
    monkeypatch.setenv("REPRO_ADVERSARY_COUNT", "1")
    monkeypatch.setenv("REPRO_ADVERSARY_INTERVAL", "0.25")
    suite = run_byzantine_robustness(
        seed=3, systems=("astro1",), size=7, warmup=0.5, window=2.0,
    )
    assert set(suite.cells) == {("astro1", "mute")}
    cell = suite.cells[("astro1", "mute")]
    assert len(cell["byzantine"]) == 1  # REPRO_ADVERSARY_COUNT beats f=2
    # 0.25 s cadence over a 2.5 s run plus the final sample.
    assert cell["verdict"]["samples"] >= 9


def test_unsupported_system_rejected():
    with pytest.raises(ValueError, match="adversary suite supports"):
        run_byzantine_robustness(systems=("bft",), **FAST)


def test_cells_are_deterministic():
    first = run_byzantine_robustness(
        seed=5, systems=("astro2",), attacks=("equivocate",), **FAST
    )
    second = run_byzantine_robustness(
        seed=5, systems=("astro2",), attacks=("equivocate",), **FAST
    )
    assert first.report() == second.report()
