"""Live-cluster assembly and in-process end-to-end settlement.

The multi-process runner is exercised by the CI ``live-smoke`` job; here
we pin the pieces that make it correct — deterministic cross-process
assembly, and the same protocol objects reaching settlement over real
TCP sockets — with all N transports on one in-process event loop so the
test stays fast and debuggable.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List

import pytest

from repro.core.messages import ClientConfirm, ClientSubmit
from repro.core.payment import Payment
from repro.core.system import Astro2System
from repro.crypto.signatures import sign
from repro.transport.cluster import (
    StatsReply,
    StatsRequest,
    _build_directory,
    build_replica,
    default_genesis,
)
from repro.transport.tcp import TcpTransport

SECRET = b"in-process-cluster"


# ---------------------------------------------------------------------------
# Deterministic assembly
# ---------------------------------------------------------------------------
def test_directory_matches_simulator_assignment():
    """The cluster's independently derived client→representative map must
    equal the one Astro2System builds for a single-shard simulation."""
    n = 4
    genesis = default_genesis(n)
    cluster_dir = _build_directory(n, list(genesis))
    system = Astro2System(num_replicas=n, genesis=dict(genesis), seed=0)
    sim_dir = system.directory
    assert cluster_dir.rep_map == sim_dir.rep_map
    assert cluster_dir.members(0) == sim_dir.members(0)


def test_build_replica_is_deterministic_across_processes():
    """Two builds of the same node id produce identical key material and
    client registration (the cross-process consistency requirement)."""
    n = 4
    genesis = default_genesis(n)

    def build(node_id: int):
        return build_replica(
            "astro2",
            n,
            TcpTransport(node_id, SECRET),
            genesis,
            seed=3,
            loadgen_node=n,
        )

    first, second = build(2), build(2)
    assert sign(first.key, ("probe",)) == sign(second.key, ("probe",))
    assert first.client_nodes == second.client_nodes
    # Clients of other replicas are not re-homed to the loadgen.
    other = build_replica(
        "astro1", n, TcpTransport(0, SECRET), genesis, loadgen_node=n
    )
    rep_map = _build_directory(n, list(genesis)).rep_map
    for client, node in other.client_nodes.items():
        assert node == n and rep_map[client] == 0


def test_build_replica_rejects_unknown_system():
    with pytest.raises(ValueError):
        build_replica("astro9", 4, TcpTransport(0, SECRET), default_genesis(4))


# ---------------------------------------------------------------------------
# In-process end-to-end settlement over real sockets
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("system", ["astro1", "astro2"])
def test_in_process_cluster_settles_payments(system):
    async def scenario():
        n = 4
        genesis = default_genesis(n)
        loop = asyncio.get_running_loop()

        transports: List[TcpTransport] = []
        replicas = []
        for node_id in range(n):
            transport = TcpTransport(node_id, SECRET)
            await transport.start()
            transports.append(transport)
        loadgen = TcpTransport(n, SECRET)
        await loadgen.start()

        peer_map = {
            t.node_id: ("127.0.0.1", t.port) for t in transports
        }
        peer_map[n] = ("127.0.0.1", loadgen.port)
        for transport in transports:
            replicas.append(
                build_replica(
                    system, n, transport, genesis, loadgen_node=n
                )
            )
            transport.connect(peer_map)
        loadgen.connect(peer_map)

        confirms: List[Payment] = []
        loadgen.on(
            ClientConfirm, lambda src, msg: confirms.append(msg.payment)
        )
        stats: Dict[int, StatsReply] = {}
        loadgen.on(
            StatsReply, lambda src, msg: stats.__setitem__(msg.node_id, msg)
        )
        for transport in transports:
            replica = replicas[transport.node_id]
            transport.on(
                StatsRequest,
                lambda src, msg, r=replica, t=transport: t.send(
                    src,
                    StatsReply(
                        t.node_id, msg.tag, r.settled_count, len(r.rejected)
                    ),
                ),
            )

        rep_map = _build_directory(n, list(genesis)).rep_map
        clients = sorted(genesis, key=repr)
        num_payments = 40
        for index in range(num_payments):
            spender = clients[index % len(clients)]
            beneficiary = clients[(index + 1) % len(clients)]
            seq = index // len(clients) + 1
            payment = Payment(spender, seq, beneficiary, 1)
            loadgen.send(rep_map[spender], ClientSubmit(payment))

        deadline = loop.time() + 20.0
        while len(confirms) < num_payments:
            if loop.time() > deadline:
                pytest.fail(
                    f"only {len(confirms)}/{num_payments} confirmed in time"
                )
            await asyncio.sleep(0.05)

        # Every replica settled the full batch set, none rejected.
        for transport in transports:
            loadgen.send(transport.node_id, StatsRequest(1))
        deadline = loop.time() + 5.0
        while len(stats) < n and loop.time() < deadline:
            await asyncio.sleep(0.02)
        assert sorted(stats) == list(range(n))
        for reply in stats.values():
            assert reply.settled == num_payments
            assert reply.rejected == 0

        await loadgen.close()
        for transport in transports:
            await transport.close()

    asyncio.run(scenario())
