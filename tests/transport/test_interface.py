"""Transport/Clock contract conformance across both backends.

The tentpole guarantee: protocol objects are written against
:class:`repro.transport.interface.Transport` and run unchanged on the
simulator :class:`~repro.sim.node.Node` or the asyncio
:class:`~repro.transport.tcp.TcpTransport`.  These tests pin the shared
surface (runtime-checkable protocols, liveness accessors, endpoint
delegation) so a drift in either backend fails here, not in a live run.
"""

from __future__ import annotations

import asyncio
from typing import Any, List

import pytest

from repro.sim import ConstantLatency, Network, Node, Simulator
from repro.transport.clock import RealTimeClock
from repro.transport.endpoint import ProtocolEndpoint
from repro.transport.interface import Clock, Transport
from repro.transport.tcp import TcpTransport


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def network(sim):
    return Network(sim, ConstantLatency(0.005))


# ---------------------------------------------------------------------------
# Structural conformance
# ---------------------------------------------------------------------------
def test_simulator_node_satisfies_transport(sim, network):
    node = Node(sim, 0, network)
    assert isinstance(node, Transport)
    assert isinstance(node.clock, Clock)
    assert isinstance(sim, Clock)


def test_tcp_transport_satisfies_transport():
    transport = TcpTransport(0, b"secret")
    assert isinstance(transport, Transport)
    assert isinstance(transport.clock, Clock)
    assert isinstance(RealTimeClock(), Clock)


def test_both_backends_share_handler_registration(sim, network):
    class Msg:
        pass

    for transport in (Node(sim, 0, network), TcpTransport(0, b"secret")):
        transport.on(Msg, lambda src, msg: None)
        assert transport._handlers[Msg] is not None


# ---------------------------------------------------------------------------
# Liveness accessors (PR satellite: no private Network state pokes)
# ---------------------------------------------------------------------------
def test_crashed_view_is_live_and_shared(sim, network):
    node = Node(sim, 3, network)
    view = network.crashed_view()
    assert node.alive
    network.crash(3)
    assert 3 in view  # mutated in place, never replaced
    assert not node.alive
    assert network.is_crashed(3)
    network.recover(3)
    assert node.alive
    assert 3 not in view


def test_executes_unsharded_and_sharded(sim, network):
    assert network.executes(0) and network.executes(99)
    node = Node(sim, 0, network)
    other = Node(sim, 1, network)
    assert node.owns(0) and node.owns(1)
    network.configure_sharding(frozenset({0}), [])
    assert network.executes(0)
    assert not network.executes(1)
    assert node.owns(0) and not node.owns(1)
    assert not other.owns(1)


def test_tcp_owns_only_itself():
    transport = TcpTransport(7, b"secret")
    assert transport.owns(7)
    assert not transport.owns(0)
    assert transport.alive


# ---------------------------------------------------------------------------
# ProtocolEndpoint delegation
# ---------------------------------------------------------------------------
class _Echo:
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def test_endpoint_delegates_to_simulator_node(sim, network):
    sender = ProtocolEndpoint(Node(sim, 0, network))
    receiver = Node(sim, 1, network)
    inbox: List[Any] = []
    receiver.on(_Echo, lambda src, msg: inbox.append((src, msg.value)))

    assert sender.node_id == 0
    assert sender.clock is sim
    assert sender.alive
    sender.send(1, _Echo("direct"))
    sender.broadcast([1], _Echo("fanout"))
    fired: List[str] = []
    sender.set_timer(0.5, fired.append, "timer")
    sim.run()
    assert ("0-resolved", fired) == ("0-resolved", ["timer"])
    assert sorted(v for _, v in inbox) == ["direct", "fanout"]
    # sim-backend-only conveniences resolve through the transport
    assert sender.sim is sim
    assert sender.network is network
    assert sender.cpu is sender.transport.cpu


def test_endpoint_send_sees_tap_installed_after_construction(sim, network):
    """Taps installed through the endpoint mid-run must intercept the
    endpoint's cached send/broadcast (install/remove re-resolve them)."""
    node = Node(sim, 0, network)
    endpoint = ProtocolEndpoint(node)
    receiver = Node(sim, 1, network)
    receiver.on(_Echo, lambda src, msg: None)

    intercepted: List[Any] = []

    class Tap:
        def bind(self, raw_send, raw_broadcast):
            self._raw_send = raw_send
            self._raw_broadcast = raw_broadcast

        def send(self, dst, payload, size=256, recv_cost=None, send_cost=0.0):
            intercepted.append(("send", dst, payload.value))

        def broadcast(
            self, targets, payload, size=256, recv_cost=None, send_cost=0.0
        ):
            intercepted.append(("broadcast", tuple(targets), payload.value))

    endpoint.install_egress_tap(Tap())
    endpoint.send(1, _Echo("tapped"))
    endpoint.broadcast([1], _Echo("tapped-bcast"))
    assert intercepted == [
        ("send", 1, "tapped"),
        ("broadcast", (1,), "tapped-bcast"),
    ]
    endpoint.remove_egress_tap()
    endpoint.send(1, _Echo("clear"))
    assert len(intercepted) == 2


def test_endpoint_sim_properties_raise_on_tcp_backend():
    endpoint = ProtocolEndpoint(TcpTransport(0, b"secret"))
    with pytest.raises(AttributeError):
        endpoint.sim
    with pytest.raises(AttributeError):
        endpoint.network


# ---------------------------------------------------------------------------
# RealTimeClock semantics
# ---------------------------------------------------------------------------
def test_real_time_clock_schedule_and_cancel():
    async def scenario():
        clock = RealTimeClock()
        fired: List[str] = []
        clock.schedule(0.01, fired.append, "a")
        handle = clock.schedule(0.01, fired.append, "never")
        handle.cancel()
        handle.cancel()  # idempotent
        clock.schedule_at(clock.now + 0.02, fired.append, "b")
        with pytest.raises(ValueError):
            clock.schedule(-1.0, fired.append, "negative")
        await asyncio.sleep(0.05)
        assert fired == ["a", "b"]
        assert clock.now > 0

    asyncio.run(scenario())
