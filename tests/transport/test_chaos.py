"""Chaos harness: timeline grammar, injectors, link faults, monitor feed.

The point of the harness is that ONE timeline spec drives both backends:
:func:`apply_timeline` schedules the same events on the simulator's
``FaultInjector`` and on a :class:`LiveFaultInjector` wired to process
kill/restart callables.  These tests pin the grammar, both injectors'
logs, TCP-level link-fault shaping, and the live adapter that feeds the
invariant monitor replica snapshots instead of simulator objects.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Any, Dict, List

import pytest

from repro.adversary.monitor import InvariantMonitor
from repro.bench.systems import SYSTEM_BUILDERS, client_ids_of
from repro.core.payment import Payment
from repro.core.persistence import state_fingerprint
from repro.sim.events import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import europe_wan
from repro.sim.network import Network
from repro.transport.chaos import (
    FaultEvent,
    LinkFault,
    LiveFaultInjector,
    LiveMonitorFeed,
    StateSnapshotReply,
    apply_link_fault,
    apply_timeline,
    parse_timeline,
    replica_state_view,
)
from repro.transport.cluster import ReplicaProcessError, _ClusterProcs
from repro.transport.tcp import TcpTransport

SECRET = b"chaos-test-secret"


class Ping:
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __reduce__(self):
        return (Ping, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ping) and other.value == self.value


async def wait_for(predicate, timeout: float = 5.0, interval: float = 0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail("condition not reached within timeout")
        await asyncio.sleep(interval)


async def make_pair():
    a = TcpTransport(0, SECRET)
    b = TcpTransport(1, SECRET)
    pa, pb = await a.start(), await b.start()
    peers = {0: ("127.0.0.1", pa), 1: ("127.0.0.1", pb)}
    a.connect(peers)
    b.connect(peers)
    return a, b


def collect(transport: TcpTransport) -> List[Any]:
    inbox: List[Any] = []
    transport.on(Ping, lambda src, msg: inbox.append((src, msg)))
    return inbox


# ---------------------------------------------------------------------------
# Timeline grammar
# ---------------------------------------------------------------------------
def test_parse_timeline_full_grammar():
    events = parse_timeline(
        "recover:1@10; crash:1@5;delay:2x0.05@3;drop:2x0.3@3;"
        "partition:0,1|2,3@4;heal@8"
    )
    assert events == [
        FaultEvent(3.0, "delay", (2, 0.05)),
        FaultEvent(3.0, "drop", (2, 0.3)),
        FaultEvent(4.0, "partition", ((0, 1), (2, 3))),
        FaultEvent(5.0, "crash", (1,)),
        FaultEvent(8.0, "heal", ()),
        FaultEvent(10.0, "recover", (1,)),
    ]


def test_parse_timeline_ignores_empty_chunks():
    assert parse_timeline("") == []
    assert parse_timeline(" ; crash:0@1 ; ") == [FaultEvent(1.0, "crash", (0,))]


@pytest.mark.parametrize(
    "spec",
    [
        "crash:1",  # no @time
        "delay:2@3",  # missing 'x' separator
        "partition:0,1@4",  # missing '|'
        "reboot:1@5",  # unknown action
        "crash:x@5",  # non-integer node
    ],
)
def test_parse_timeline_rejects_malformed(spec):
    with pytest.raises(ValueError):
        parse_timeline(spec)


# ---------------------------------------------------------------------------
# apply_timeline on the simulator injector
# ---------------------------------------------------------------------------
def _sim_injector() -> FaultInjector:
    sim = Simulator()
    network = Network(sim, europe_wan(8, seed=0))
    return FaultInjector(sim, network)


def test_apply_timeline_drives_sim_injector():
    injector = _sim_injector()
    apply_timeline(
        injector,
        parse_timeline("crash:1@0.5;delay:2x0.1@1.0;recover:1@1.5;heal@2.0"),
    )
    injector.sim.run(until=3.0)
    assert injector.log == [
        (0.5, "crash", 1),
        (1.0, "delay", (2, 0.1)),
        (1.5, "recover", 1),
        (2.0, "heal", None),
    ]


def test_drop_is_live_only():
    """The sim injector has no probabilistic loss; the spec must say so."""
    with pytest.raises(ValueError, match="does not support"):
        apply_timeline(_sim_injector(), parse_timeline("drop:1x0.5@1"))


# ---------------------------------------------------------------------------
# LiveFaultInjector
# ---------------------------------------------------------------------------
def test_live_injector_executes_schedule():
    crashed: List[int] = []
    recovered: List[int] = []
    shipped: List[Any] = []

    async def recover_fn(node_id: int) -> None:  # coroutine fault fn
        recovered.append(node_id)

    injector = LiveFaultInjector(
        crash_fn=crashed.append,
        recover_fn=recover_fn,
        link_fn=lambda node_id, fault: shipped.append((node_id, fault)),
        replica_ids=[0, 1, 2, 3],
    )
    apply_timeline(
        injector,
        parse_timeline(
            "crash:1@0.01;delay:2x0.05@0.02;drop:3x0.25@0.03;"
            "partition:0,1|2,3@0.04;recover:1@0.05;heal@0.06"
        ),
    )

    async def scenario():
        await injector.run(asyncio.get_running_loop().time())

    asyncio.run(scenario())

    assert crashed == [1]
    assert recovered == [1]
    assert [action for _, action, _ in injector.log] == [
        "crash", "delay", "drop", "partition", "recover", "heal",
    ]
    delay_order = shipped[0]
    assert delay_order[0] == 2 and delay_order[1].delay == 0.05
    drop_order = shipped[1]
    assert drop_order[0] == 3 and drop_order[1].drop == 0.25
    # Partition ships a block order to every member of both groups.
    partition_orders = shipped[2:6]
    assert {(n, f.targets) for n, f in partition_orders} == {
        (0, (2, 3)), (1, (2, 3)), (2, (0, 1)), (3, (0, 1)),
    }
    assert all(f.block for _, f in partition_orders)
    # Heal clears shaping on every replica.
    heal_orders = shipped[6:]
    assert [n for n, _ in heal_orders] == [0, 1, 2, 3]
    assert all(f.clear for _, f in heal_orders)


def test_live_injector_rejects_overlapping_partition():
    injector = LiveFaultInjector(
        crash_fn=lambda n: None,
        recover_fn=lambda n: None,
        link_fn=lambda n, f: None,
        replica_ids=[0, 1, 2],
    )
    with pytest.raises(ValueError, match="disjoint"):
        injector.partition([0, 1], [1, 2])


# ---------------------------------------------------------------------------
# LinkFault shaping on a real transport pair
# ---------------------------------------------------------------------------
def test_link_fault_block_and_clear_on_tcp_pair():
    async def scenario():
        a, b = await make_pair()
        inbox = collect(b)

        a.send(1, Ping("before"))
        await wait_for(lambda: len(inbox) == 1)

        apply_link_fault(a, LinkFault((1,), block=True))
        for value in range(5):
            a.send(1, Ping(value))
        await wait_for(lambda: a.stats.fault_dropped == 5)
        assert len(inbox) == 1

        apply_link_fault(a, LinkFault(None, clear=True))
        a.send(1, Ping("after"))
        await wait_for(lambda: len(inbox) == 2)
        assert inbox[-1][1] == Ping("after")

        await a.close()
        await b.close()

    asyncio.run(scenario())


def test_link_fault_all_peers_skips_self():
    async def scenario():
        a, b = await make_pair()
        # targets=None expands to all known peers minus the sender.
        apply_link_fault(a, LinkFault(None, block=True))
        a.send(1, Ping("blocked"))
        await wait_for(lambda: a.stats.fault_dropped == 1)
        await a.close()
        await b.close()

    asyncio.run(scenario())


def test_link_fault_pickle_roundtrip():
    fault = LinkFault((1, 2), block=True, drop=0.25, delay=0.05, clear=False)
    clone = pickle.loads(pickle.dumps(fault))
    assert (
        clone.targets, clone.block, clone.drop, clone.delay, clone.clear
    ) == ((1, 2), True, 0.25, 0.05, False)


# ---------------------------------------------------------------------------
# Live monitor feed: snapshots from a driven system
# ---------------------------------------------------------------------------
def _driven_astro2():
    system = SYSTEM_BUILDERS["astro2"](4, seed=11)
    clients = client_ids_of(system)
    for index in range(16):
        system.submit(clients[index % 16], clients[(index + 1) % 16], 2)
    system.settle_all()
    return system


def test_live_feed_samples_real_snapshots_safe():
    system = _driven_astro2()
    feed = LiveMonitorFeed(
        range(4), dict(system.genesis), system.directory, deps=True
    )
    monitor = InvariantMonitor(feed, autostart=False, dep_grace=1)
    assert monitor.mode == "deps"

    for round_no in (1, 2):
        for replica in system.replicas:
            reply = StateSnapshotReply(
                round_no, replica.node_id, replica_state_view(replica)
            )
            feed.update(reply, now=float(round_no))
        monitor.sample(now=float(round_no))
    assert monitor.verdict()["ok"]
    expected = {
        r.node_id: state_fingerprint(r.state) for r in system.replicas
    }
    assert feed.fingerprints() == expected
    # The wire round trip preserves the view verbatim.
    view = replica_state_view(system.replicas[0])
    assert pickle.loads(pickle.dumps(view))["fingerprint"] == (
        view["fingerprint"]
    )


def test_live_feed_frozen_crashed_view_stays_safe():
    """A crashed replica's view stops updating; old state must still pass."""
    system = _driven_astro2()
    feed = LiveMonitorFeed(
        range(4), dict(system.genesis), system.directory, deps=True
    )
    monitor = InvariantMonitor(feed, autostart=False, dep_grace=1)
    for replica in system.replicas:
        feed.update(
            StateSnapshotReply(1, replica.node_id, replica_state_view(replica)),
            now=1.0,
        )
    monitor.sample(now=1.0)
    # Replica 1 "crashes": rounds 2..4 only update the survivors.
    for round_no in (2, 3, 4):
        for replica in system.replicas:
            if replica.node_id == 1:
                continue
            feed.update(
                StateSnapshotReply(
                    round_no, replica.node_id, replica_state_view(replica)
                ),
                now=float(round_no),
            )
        monitor.sample(now=float(round_no))
    assert monitor.verdict()["ok"]


def test_live_feed_flags_tampered_balance():
    system = _driven_astro2()
    feed = LiveMonitorFeed(
        range(4), dict(system.genesis), system.directory, deps=True
    )
    monitor = InvariantMonitor(feed, autostart=False, dep_grace=1)
    for replica in system.replicas:
        view = replica_state_view(replica)
        if replica.node_id == 2:
            victim = next(iter(view["balances"]))
            view["balances"][victim] = -5
        feed.update(StateSnapshotReply(1, replica.node_id, view), now=1.0)
    monitor.sample(now=1.0)
    verdict = monitor.verdict()
    assert not verdict["ok"]
    assert any(
        v["invariant"] == "non_negative" and v["replica"] == 2
        for v in verdict["violations"]
    )


def test_atomic_mode_detected_without_deps():
    feed = LiveMonitorFeed(range(4), {"a": 10}, None, deps=False)
    monitor = InvariantMonitor(feed, autostart=False)
    assert monitor.mode == "atomic"
    monitor.sample(now=0.5)
    assert monitor.verdict()["ok"]


# ---------------------------------------------------------------------------
# dep_grace: sampling skew between live captures
# ---------------------------------------------------------------------------
def _deps_feed() -> LiveMonitorFeed:
    genesis = {"a": 100, "z": 100}
    return LiveMonitorFeed(range(2), genesis, None, deps=True)


def _settler_view(resolved_credit: bool) -> Dict[str, Any]:
    """Replica 0 materialized ("z", 1) crediting 5 to client "a"."""
    return {
        "balances": {"a": 105 if resolved_credit else 100, "z": 100},
        "seqnums": {},
        "xlogs": {},
        "used_deps": {"a": {("z", 1)}},
        "settled": 0,
        "fingerprint": "irrelevant",
    }


def _crediting_view() -> Dict[str, Any]:
    """Replica 1 logged the payment z#1 that funds the dependency."""
    return {
        "balances": {"a": 100, "z": 95},
        "seqnums": {"z": 1},
        "xlogs": {"z": (Payment("z", 1, "a", 5),)},
        "settled": 1,
        "fingerprint": "irrelevant",
        "used_deps": {},
    }


def test_dep_grace_absorbs_one_sample_of_skew():
    feed = _deps_feed()
    monitor = InvariantMonitor(feed, autostart=False, dep_grace=1)
    # Round 1: the settler's capture arrived before the crediting
    # replica's — the dependency looks unknown for exactly one sample.
    feed.update(StateSnapshotReply(1, 0, _settler_view(True)), now=1.0)
    monitor.sample(now=1.0)
    assert monitor.verdict()["ok"]
    # Round 2: the crediting payment shows up; the dependency resolves.
    feed.update(StateSnapshotReply(2, 1, _crediting_view()), now=2.0)
    monitor.sample(now=2.0)
    monitor.sample(now=3.0)
    assert monitor.verdict()["ok"]


def test_dep_grace_still_flags_fabricated_certificates():
    feed = _deps_feed()
    monitor = InvariantMonitor(feed, autostart=False, dep_grace=1)
    feed.update(StateSnapshotReply(1, 0, _settler_view(True)), now=1.0)
    monitor.sample(now=1.0)
    assert monitor.verdict()["ok"]  # within grace
    monitor.sample(now=2.0)  # never resolves: flag it
    verdict = monitor.verdict()
    assert not verdict["ok"]
    assert any(
        v["invariant"] == "conservation" and "unknown_dep" in v
        for v in verdict["violations"]
    )


def test_dep_grace_zero_keeps_simulator_strictness():
    feed = _deps_feed()
    monitor = InvariantMonitor(feed, autostart=False, dep_grace=0)
    feed.update(StateSnapshotReply(1, 0, _settler_view(True)), now=1.0)
    monitor.sample(now=1.0)
    assert not monitor.verdict()["ok"]


# ---------------------------------------------------------------------------
# Watchdog: unexpected process death is a named, fail-fast error
# ---------------------------------------------------------------------------
class _FakeProc:
    def __init__(self, exitcode):
        self.exitcode = exitcode


def test_poll_unexpected_names_the_dead_replica():
    cluster = _ClusterProcs(None, None, b"", None)
    cluster.procs = {0: _FakeProc(None), 1: _FakeProc(None), 2: _FakeProc(-9)}
    with pytest.raises(ReplicaProcessError, match="replica 2 .*-9"):
        cluster.poll_unexpected()


def test_poll_unexpected_exempts_planned_kills():
    cluster = _ClusterProcs(None, None, b"", None)
    cluster.procs = {0: _FakeProc(None), 1: _FakeProc(-9)}
    cluster.down = {1}
    cluster.poll_unexpected()  # no raise: replica 1 is down on purpose
