"""Framing layer: length-prefixed pickle frames and wire-class round-trips.

The property tests pin the PR-4 compact ``__reduce__`` wire classes to
the TCP framing: every protocol payload must survive
pickle → length-framed encode → decode *bit-identically* (re-pickling
the decoded object yields the original pickle bytes), so the simulator's
cross-shard outbox and the live cluster ship interchangeable frames.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.brb.batching import Batch
from repro.brb.bracha import BrbEcho, BrbPrepare, BrbReady
from repro.brb.signed import SbAck, SbCommit, SbPrepare
from repro.core.dependencies import (
    CreditBundle,
    CreditMessage,
    DependencyCertificate,
)
from repro.core.messages import ClientConfirm, ClientSubmit
from repro.core.payment import Payment
from repro.crypto import Keychain, replica_owner
from repro.crypto.signatures import Signature, sign
from repro.transport.framing import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    decode_exactly_one,
    encode_frame,
)

SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_KEYCHAIN = Keychain(seed=99)
_KEYS = [_KEYCHAIN.generate(replica_owner(i)) for i in range(4)]


def roundtrip(payload):
    """Frame-encode, decode, and assert pickle-level bit identity."""
    frame = encode_frame(payload)
    decoded = decode_exactly_one(frame)
    original = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    rebuilt = pickle.dumps(decoded, protocol=pickle.HIGHEST_PROTOCOL)
    assert rebuilt == original
    return decoded


# ---------------------------------------------------------------------------
# Hypothesis strategies for wire content
# ---------------------------------------------------------------------------
client_ids = st.text(
    alphabet="abcdefgh", min_size=1, max_size=6
).map(lambda s: f"cl-{s}")

amounts = st.integers(min_value=0, max_value=10**9)
seqs = st.integers(min_value=1, max_value=10**6)


@st.composite
def payments(draw, with_deps: bool = False):
    payment = Payment(
        draw(client_ids),
        draw(seqs),
        draw(client_ids),
        draw(amounts),
        submitted_at=draw(
            st.one_of(st.none(), st.floats(0, 1e6, allow_nan=False))
        ),
    )
    if with_deps and draw(st.booleans()):
        cert = draw(certificates())
        payment = Payment(
            payment.spender,
            payment.seq,
            payment.beneficiary,
            payment.amount,
            deps=(cert,),
            submitted_at=payment.submitted_at,
        )
    return payment


@st.composite
def credit_messages(draw):
    signer = draw(st.integers(min_value=0, max_value=3))
    items = draw(st.lists(payments(), min_size=1, max_size=4))
    return CreditMessage.create(_KEYS[signer], 0, tuple(items))


@st.composite
def certificates(draw):
    items = tuple(draw(st.lists(payments(), min_size=1, max_size=3)))
    target = draw(st.integers(min_value=0, max_value=len(items) - 1))
    sigs = tuple(
        sign(_KEYS[i], ("cert", idx))
        for idx, i in enumerate(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=3),
                    min_size=1,
                    max_size=2,
                )
            )
        )
    )
    return DependencyCertificate(items[target], 0, items, sigs)


@st.composite
def batches(draw):
    return Batch(draw(st.lists(payments(with_deps=True), min_size=1, max_size=6)))


# ---------------------------------------------------------------------------
# Property tests: every wire class round-trips bit-identically
# ---------------------------------------------------------------------------
@settings(**SETTINGS)
@given(payments(with_deps=True))
def test_payment_roundtrip(payment):
    decoded = roundtrip(payment)
    # DependencyCertificate compares by identity, so compare the core and
    # the identifier rather than the full Payment equality.
    assert decoded.core == payment.core
    assert decoded.identifier == payment.identifier
    assert len(decoded.deps) == len(payment.deps)
    # Derived caches rebuild identically in-process (one hash seed).
    assert decoded.cached_digest == payment.cached_digest


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=7), st.integers())
def test_signature_roundtrip(signer, token):
    signature = Signature(signer, token)
    assert roundtrip(signature) == signature


@settings(**SETTINGS)
@given(batches())
def test_batch_roundtrip(batch):
    decoded = roundtrip(batch)
    assert [p.identifier for p in decoded.items] == [
        p.identifier for p in batch.items
    ]
    assert decoded.size_bytes == batch.size_bytes
    assert decoded.cached_digest == batch.cached_digest


@settings(**SETTINGS)
@given(credit_messages())
def test_credit_message_roundtrip(message):
    decoded = roundtrip(message)
    assert decoded.subbatch_digest == message.subbatch_digest
    assert decoded.signature == message.signature


@settings(**SETTINGS)
@given(st.lists(credit_messages(), min_size=1, max_size=3))
def test_credit_bundle_roundtrip(messages):
    bundle = CreditBundle(tuple(messages))
    decoded = roundtrip(bundle)
    assert len(decoded.messages) == len(bundle.messages)


@settings(**SETTINGS)
@given(certificates())
def test_dependency_certificate_roundtrip(cert):
    decoded = roundtrip(cert)
    assert decoded.payment == cert.payment
    assert decoded.signatures == cert.signatures


@settings(**SETTINGS)
@given(seqs, batches())
def test_brb_wire_messages_roundtrip(seq, batch):
    size = batch.size_bytes
    for message in (
        BrbPrepare(seq, batch, size),
        BrbEcho(1, seq, batch, size),
        BrbReady(2, seq, batch, size),
        SbPrepare(seq, batch, size),
        SbAck(1, seq, batch.cached_digest, sign(_KEYS[1], ("ack", seq))),
        SbCommit(
            0,
            seq,
            batch.cached_digest,
            (sign(_KEYS[1], ("a",)), sign(_KEYS[2], ("b",))),
            size,
        ),
    ):
        roundtrip(message)


@settings(**SETTINGS)
@given(payments())
def test_client_messages_roundtrip(payment):
    roundtrip(ClientSubmit(payment))
    roundtrip(ClientConfirm(payment, 12.5))


# ---------------------------------------------------------------------------
# Decoder mechanics
# ---------------------------------------------------------------------------
def test_encode_frame_layout():
    frame = encode_frame("hello")
    body_len = int.from_bytes(frame[:HEADER_BYTES], "big")
    assert body_len == len(frame) - HEADER_BYTES
    assert pickle.loads(frame[HEADER_BYTES:]) == "hello"


def test_multiple_frames_single_feed():
    decoder = FrameDecoder()
    data = b"".join(encode_frame(i) for i in range(5))
    assert decoder.feed(data) == [0, 1, 2, 3, 4]
    assert not decoder.truncated
    assert decoder.frames_decoded == 5


@settings(**SETTINGS)
@given(st.lists(payments(), min_size=1, max_size=5), st.integers(1, 7))
def test_byte_at_a_time_reassembly(items, chunk):
    """Frames survive arbitrary stream segmentation."""
    stream = b"".join(encode_frame(p) for p in items)
    decoder = FrameDecoder()
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[start : start + chunk]))
    assert [p.identifier for p in out] == [p.identifier for p in items]
    assert not decoder.truncated


def test_truncated_frame_is_pending_not_error():
    frame = encode_frame(("x", 123))
    decoder = FrameDecoder()
    assert decoder.feed(frame[:-2]) == []
    assert decoder.truncated
    assert decoder.pending_bytes == len(frame) - 2
    assert decoder.feed(frame[-2:]) == [("x", 123)]
    assert not decoder.truncated


def test_oversized_frame_rejected():
    frame = encode_frame(b"x" * 256)
    decoder = FrameDecoder(max_frame=64)
    with pytest.raises(FrameError):
        decoder.feed(frame)


def test_zero_length_frame_rejected():
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(b"\x00\x00\x00\x00")


def test_undecodable_body_rejected():
    body = b"\x01garbage-not-pickle"
    frame = len(body).to_bytes(4, "big") + body
    with pytest.raises(FrameError):
        FrameDecoder().feed(frame)


def test_encode_rejects_payload_above_cap():
    with pytest.raises(FrameError):
        encode_frame(b"y" * 128, max_frame=64)
    assert MAX_FRAME_BYTES == 16 * 1024 * 1024


def test_decode_exactly_one_rejects_trailing_and_truncation():
    one = encode_frame(1)
    with pytest.raises(FrameError):
        decode_exactly_one(one + encode_frame(2))
    with pytest.raises(FrameError):
        decode_exactly_one(one[:-1])
    assert decode_exactly_one(one) == 1
