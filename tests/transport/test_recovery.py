"""Crash-recovery end to end: WAL replay, catch-up, and sim parity.

The slow test here is the in-process twin of the CI ``chaos-smoke``
lane: N=4 astro2 replicas with WAL+snapshots on, all transports on one
event loop.  Replica 1 "dies" (transport and store closed, object
dropped) mid-load, is rebuilt from scratch, replays its WAL to the
pre-crash fingerprint, catches up from a peer, and the cluster settles
100% of the offered payments.  The same workload and an equivalent
crash/recover timeline then run on the simulator (``sim/faults.py``) and
the live cluster's post-recovery settled state must match the
simulator's prediction for the correct replicas — same fingerprint
formula on both backends.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Set

import pytest

from repro.core.config import AstroConfig
from repro.core.messages import ClientConfirm, ClientSubmit
from repro.core.persistence import (
    CatchUpReply,
    CatchUpRequest,
    ReplicaStore,
    serve_catch_up,
    state_fingerprint,
)
from repro.core.system import Astro2System
from repro.sim.faults import FaultInjector
from repro.transport.chaos import apply_timeline, parse_timeline
from repro.transport.cluster import (
    StatsRequest,
    _build_directory,
    _run_catch_up,
    build_replica,
    default_genesis,
    payment_stream,
)
from repro.transport.tcp import TcpTransport

SECRET = b"recovery-test-secret"

N = 4
PHASE_A = 24  # settled before the crash
PHASE_B = 12  # offered while replica 1 is down

#: Crash replica 1 after phase A settles, offer phase B, recover.
TIMELINE = "crash:1@1.0;recover:1@2.0"


async def wait_for(predicate, timeout: float = 30.0, interval: float = 0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail("condition not reached within timeout")
        await asyncio.sleep(interval)


def _simulator_prediction():
    """Run the same workload + timeline on the simulator backend.

    Returns (correct-replica fingerprint, correct settled count, crashed
    replica's settled count).  The sim's asynchronous network never
    redelivers frames dropped while a node is down, so its recovered
    replica keeps only what it held at the crash — the delta to the live
    cluster is exactly what WAL catch-up contributes.
    """
    genesis = default_genesis(N)
    system = Astro2System(
        num_replicas=N,
        genesis=dict(genesis),
        config=AstroConfig(num_replicas=N),
        seed=0,
    )
    injector = FaultInjector(system.sim, system.network)
    apply_timeline(injector, parse_timeline(TIMELINE))

    clients = sorted(genesis, key=repr)
    stream = payment_stream(clients)
    phase_a = [next(stream) for _ in range(PHASE_A)]
    phase_b = [next(stream) for _ in range(PHASE_B)]
    for payment in phase_a:
        system.submit_payment(payment)

    def _offer_phase_b() -> None:
        for payment in phase_b:
            system.submit_payment(payment)

    rep_map = _build_directory(N, clients).rep_map

    def _retry_lost() -> None:
        # The sim network dropped the submissions addressed to the downed
        # representative; the live load generator's retry loop re-offers
        # unconfirmed payments, so the prediction models the same retry
        # after recovery.
        for payment in phase_b:
            if rep_map[payment.spender] == 1:
                system.submit_payment(payment)

    # Offered mid-outage: replica 1 misses these BRB instances for good.
    system.sim.schedule_at(1.3, _offer_phase_b)
    system.sim.schedule_at(2.3, _retry_lost)
    system.run(3.0)
    system.settle_all()

    correct = [r for r in system.replicas if r.node_id != 1]
    crashed = next(r for r in system.replicas if r.node_id == 1)
    prints = {state_fingerprint(r.state) for r in correct}
    assert len(prints) == 1
    counts = {r.settled_count for r in correct}
    assert counts == {PHASE_A + PHASE_B}
    assert [time for time, action, _ in injector.log] == [1.0, 2.0]
    return prints.pop(), PHASE_A + PHASE_B, crashed.settled_count


class _LiveReplica:
    """One in-process live replica: transport + protocol object + store."""

    def __init__(self, node_id: int, genesis: Dict[str, int], wal_root: str):
        self.node_id = node_id
        self.transport = TcpTransport(node_id, SECRET)
        self.replica = build_replica(
            "astro2", N, self.transport, genesis,
            loadgen_node=N, resend_acks=True,
        )
        self.store = ReplicaStore(
            wal_root, node_id, snapshot_interval=8, fingerprint_interval=4
        )
        self.report = self.replica.bind_persistence(self.store)
        self.catch_up_replies: asyncio.Queue = asyncio.Queue()
        self.transport.on(
            CatchUpRequest,
            lambda src, msg: self.transport.send(
                src, serve_catch_up(self.store, msg)
            ),
        )
        self.transport.on(
            CatchUpReply,
            lambda src, msg: self.catch_up_replies.put_nowait(msg),
        )

    async def start(self, port: int = 0) -> int:
        for attempt in range(50):
            try:
                return await self.transport.start(port)
            except OSError:
                if attempt == 49:
                    raise
                await asyncio.sleep(0.05)

    async def crash(self) -> None:
        """Drop everything a SIGKILL would: sockets, store, object."""
        await self.transport.close()
        self.store.close()


@pytest.mark.slow
def test_live_crash_recovery_matches_sim_prediction(tmp_path):
    expected_fp, expected_settled, sim_crashed_settled = (
        _simulator_prediction()
    )
    # Protocol-level recovery alone loses the mid-outage payments; the
    # live cluster's WAL catch-up must close exactly this gap.
    assert sim_crashed_settled < expected_settled

    async def scenario():
        genesis = default_genesis(N)
        wal_root = str(tmp_path)
        loop = asyncio.get_running_loop()

        nodes = [_LiveReplica(i, genesis, wal_root) for i in range(N)]
        for node in nodes:
            assert node.report.replayed == 0  # first boot: empty store
        loadgen = TcpTransport(N, SECRET)

        ports = [await node.start() for node in nodes]
        await loadgen.start()
        peer_map = {i: ("127.0.0.1", ports[i]) for i in range(N)}
        peer_map[N] = ("127.0.0.1", loadgen.port)
        for node in nodes:
            node.transport.connect(peer_map)
        loadgen.connect(peer_map)

        confirmed: Set[Any] = set()
        loadgen.on(
            ClientConfirm,
            lambda src, msg: confirmed.add(msg.payment.identifier),
        )

        rep_map = _build_directory(N, list(genesis)).rep_map
        clients = sorted(genesis, key=repr)
        stream = payment_stream(clients)

        def submit(count: int) -> List[Any]:
            payments = [next(stream) for _ in range(count)]
            for payment in payments:
                loadgen.send(rep_map[payment.spender], ClientSubmit(payment))
            return payments

        phase_a = submit(PHASE_A)
        await wait_for(
            lambda: {p.identifier for p in phase_a} <= confirmed
        )

        victim = nodes[1]
        pre_crash_fp = state_fingerprint(victim.replica.state)
        pre_crash_settled = victim.replica.settled_count
        await victim.crash()
        # Prove the loadgen's sender is back in its redial loop (where it
        # never dequeues) before offering phase B, so no ClientSubmit can
        # be lost in flight to the dead peer.
        failures = loadgen.stats.connect_failures
        while loadgen.stats.connect_failures == failures:
            loadgen.send(1, StatsRequest(0))
            await asyncio.sleep(0.05)

        phase_b = submit(PHASE_B)
        assert any(rep_map[p.spender] == 1 for p in phase_b)

        # Rebuild replica 1 from nothing but its directory on disk.
        revived = _LiveReplica(1, genesis, wal_root)
        assert revived.report.fingerprint == pre_crash_fp
        assert state_fingerprint(revived.replica.state) == pre_crash_fp
        assert revived.replica.settled_count == pre_crash_settled
        await revived.start(ports[1])  # same address: peers just redial
        revived.transport.connect(peer_map)
        nodes[1] = revived

        started = loop.time()
        await _run_catch_up(
            revived.replica,
            revived.transport,
            revived.catch_up_replies,
            [0, 2, 3],
        )
        revived.replica.relaunch_pending()
        recovery_latency = loop.time() - started
        assert recovery_latency < 30.0

        everything = {p.identifier for p in phase_a + phase_b}
        await wait_for(lambda: everything <= confirmed)
        await wait_for(
            lambda: all(
                node.replica.settled_count == expected_settled
                for node in nodes
            )
        )

        prints = {state_fingerprint(node.replica.state) for node in nodes}
        assert prints == {expected_fp}
        assert all(not node.replica.rejected for node in nodes)

        await loadgen.close()
        for node in nodes:
            await node.crash()

    asyncio.run(scenario())
