"""TcpTransport failure paths: refusal, reconnect, framing, handshake.

No pytest-asyncio in the environment, so each test drives its own event
loop through ``asyncio.run``.  All sockets bind 127.0.0.1 port 0.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

import pytest

from repro.transport.tcp import (
    _MAGIC,
    _NONCE_BYTES,
    _TAG_BYTES,
    _tag,
    TcpTransport,
)

SECRET = b"test-cluster-secret"


class Ping:
    """Minimal wire payload with stable equality."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __reduce__(self):
        return (Ping, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ping) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Ping", self.value))


async def wait_for(predicate, timeout: float = 5.0, interval: float = 0.01):
    """Poll until *predicate* is truthy; fail the test on timeout."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail("condition not reached within timeout")
        await asyncio.sleep(interval)


async def make_pair(
    **kwargs,
) -> Tuple[TcpTransport, TcpTransport]:
    """Two connected transports (ids 0 and 1) on fresh ports."""
    a = TcpTransport(0, SECRET, **kwargs.get("a", {}))
    b = TcpTransport(1, SECRET, **kwargs.get("b", {}))
    pa, pb = await a.start(), await b.start()
    peers = {0: ("127.0.0.1", pa), 1: ("127.0.0.1", pb)}
    a.connect(peers)
    b.connect(peers)
    return a, b


def collect(transport: TcpTransport) -> List[Tuple[int, Any]]:
    inbox: List[Tuple[int, Any]] = []
    transport.on(Ping, lambda src, msg: inbox.append((src, msg)))
    return inbox


def free_port() -> int:
    """A port that was just free (and is closed again) — dialing it
    before anything rebinds gets ECONNREFUSED."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# Connection refusal and late peer start
# ---------------------------------------------------------------------------
def test_connect_refused_then_peer_appears():
    async def scenario():
        port = free_port()
        a = TcpTransport(0, SECRET)
        await a.start()
        a.connect({1: ("127.0.0.1", port)})
        a.send(1, Ping("early"))  # queued while the peer is down
        await wait_for(lambda: a.stats.connect_failures >= 2)

        b = TcpTransport(1, SECRET)
        await b.start(port)  # the peer finally boots on that port
        inbox = collect(b)
        await wait_for(lambda: inbox)
        assert inbox == [(0, Ping("early"))]
        assert a.stats.connects == 1
        assert a.stats.reconnects == 0
        await a.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Mid-stream disconnect: frames lost, sender redials with backoff
# ---------------------------------------------------------------------------
def test_disconnect_reconnect_and_redelivery():
    async def scenario():
        a, b = await make_pair()
        inbox = collect(b)
        a.send(1, Ping(0))
        await wait_for(lambda: inbox)

        # Kill B's inbound connection out from under A.
        for task in list(b._receiver_tasks):
            task.cancel()
        await asyncio.sleep(0)

        # Keep sending until A notices the dead stream and redials.
        seq = 1
        while a.stats.reconnects == 0:
            a.send(1, Ping(seq))
            seq += 1
            await asyncio.sleep(0.02)
            if seq > 500:
                pytest.fail("sender never reconnected")
        assert a.stats.stream_errors >= 1

        # Post-reconnect traffic flows again (earlier frames may be lost
        # — asynchronous-network semantics, no retransmission).
        a.send(1, Ping("after"))
        await wait_for(lambda: (0, Ping("after")) in inbox)
        await a.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Oversized frame: receiver drops the stream, sender recovers
# ---------------------------------------------------------------------------
def test_oversized_frame_drops_connection_then_recovers():
    async def scenario():
        a, b = await make_pair(b={"max_frame": 1024})
        inbox = collect(b)
        a.send(1, Ping("x" * 4096))  # above B's cap, below A's
        await wait_for(lambda: b.stats.stream_errors >= 1)
        assert inbox == []

        # The first post-error frame may be consumed by the stale writer
        # and lost (no retransmission); keep sending until one lands.
        for _ in range(500):
            a.send(1, Ping("small"))
            await asyncio.sleep(0.02)
            if inbox:
                break
        assert inbox and inbox[0] == (0, Ping("small"))
        assert a.stats.reconnects >= 1
        await a.close()
        await b.close()

    asyncio.run(scenario())


def test_sender_side_cap_drops_before_wire():
    async def scenario():
        a, b = await make_pair(a={"max_frame": 512})
        inbox = collect(b)
        a.send(1, Ping("y" * 2048))
        assert a.stats.frames_dropped == 1
        a.send(1, Ping("fits"))
        await wait_for(lambda: inbox)
        assert inbox == [(0, Ping("fits"))]
        await a.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Truncated frame then EOF: nothing dispatched, no crash
# ---------------------------------------------------------------------------
def test_truncated_frame_is_not_dispatched():
    async def scenario():
        b = TcpTransport(1, SECRET)
        port = await b.start()
        inbox = collect(b)

        # Hand-rolled dialer: real handshake, then half a frame and EOF.
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        import os as _os

        nonce_d = _os.urandom(_NONCE_BYTES)
        writer.write(_MAGIC + struct.pack(">I", 7) + nonce_d)
        await writer.drain()
        reply = await reader.readexactly(
            len(_MAGIC) + 4 + _NONCE_BYTES + _TAG_BYTES
        )
        nonce_a = reply[len(_MAGIC) + 4 : len(_MAGIC) + 4 + _NONCE_BYTES]
        writer.write(_tag(SECRET, b"dial", nonce_a, 7))
        await writer.drain()

        from repro.transport.framing import encode_frame

        frame = encode_frame(Ping("never-arrives"))
        writer.write(frame[: len(frame) // 2])
        await writer.drain()
        writer.close()
        await asyncio.sleep(0.1)
        assert inbox == []
        assert b.stats.frames_received == 0
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Handshake authentication
# ---------------------------------------------------------------------------
def test_wrong_secret_is_rejected_both_sides():
    async def scenario():
        a = TcpTransport(0, b"secret-one")
        b = TcpTransport(1, b"secret-two")
        await a.start()
        port = await b.start()
        inbox = collect(b)
        a.connect({1: ("127.0.0.1", port)})
        a.send(1, Ping("stolen"))
        await wait_for(
            lambda: a.stats.handshake_failures >= 2
            and b.stats.handshake_failures >= 2
        )
        assert a.stats.connects == 0
        assert inbox == []
        await a.close()
        await b.close()

    asyncio.run(scenario())


def test_bad_magic_is_rejected():
    async def scenario():
        b = TcpTransport(1, SECRET)
        port = await b.start()
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"HTTP" + b"\x00" * (4 + _NONCE_BYTES))
        await writer.drain()
        await wait_for(lambda: b.stats.handshake_failures >= 1)
        writer.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Local semantics: loopback, unknown destination, timers, taps
# ---------------------------------------------------------------------------
def test_loopback_is_asynchronous():
    async def scenario():
        a = TcpTransport(0, SECRET)
        inbox = collect(a)
        a.send(0, Ping("self"))
        assert inbox == []  # never reentrant in the caller's frame
        await wait_for(lambda: inbox)
        assert inbox == [(0, Ping("self"))]
        await a.close()

    asyncio.run(scenario())


def test_unknown_destination_silently_dropped():
    async def scenario():
        a = TcpTransport(0, SECRET)
        a.send(42, Ping("void"))
        assert a.stats.frames_dropped == 1
        await a.close()

    asyncio.run(scenario())


def test_timers_fire_cancel_and_gate_on_close():
    async def scenario():
        a = TcpTransport(0, SECRET)
        fired: List[str] = []
        a.set_timer(0.01, fired.append, "kept")
        cancelled = a.set_timer(0.01, fired.append, "cancelled")
        cancelled.cancel()
        late = a.set_timer(0.05, fired.append, "late")
        await asyncio.sleep(0.02)
        await a.close()  # late timer still pending; alive-gate holds it
        await asyncio.sleep(0.06)
        assert fired == ["kept"]
        assert late is not None

    asyncio.run(scenario())


class _DropTap:
    """Minimal egress tap honouring the Node/Transport bind contract."""

    def __init__(self) -> None:
        self.seen: List[Any] = []
        self._raw_send = None
        self._raw_broadcast = None

    def bind(self, raw_send, raw_broadcast) -> None:
        self._raw_send = raw_send
        self._raw_broadcast = raw_broadcast

    def send(self, dst, payload, size=256, recv_cost=None, send_cost=0.0):
        self.seen.append(("send", dst, payload))
        if payload == Ping("drop-me"):
            return
        self._raw_send(dst, payload, size=size, recv_cost=recv_cost)

    def broadcast(
        self, targets, payload, size=256, recv_cost=None, send_cost=0.0
    ):
        self.seen.append(("broadcast", tuple(targets), payload))
        self._raw_broadcast(targets, payload, size=size, recv_cost=recv_cost)


def test_egress_tap_intercepts_and_removal_restores():
    async def scenario():
        a, b = await make_pair()
        inbox = collect(b)
        tap = _DropTap()
        a.install_egress_tap(tap)

        a.send(1, Ping("drop-me"))
        a.broadcast([1], Ping("through"))
        await wait_for(lambda: inbox)
        assert inbox == [(0, Ping("through"))]
        assert ("send", 1, Ping("drop-me")) in tap.seen
        assert ("broadcast", (1,), Ping("through")) in tap.seen

        a.remove_egress_tap()
        a.send(1, Ping("untapped"))
        await wait_for(lambda: len(inbox) == 2)
        assert len(tap.seen) == 2  # tap saw nothing after removal
        await a.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Bounded outbound queues: drop-oldest on overflow, per-peer counters
# ---------------------------------------------------------------------------
def test_outbound_queue_overflow_drops_oldest():
    async def scenario():
        port = free_port()  # nobody listening: the queue can only grow
        a = TcpTransport(0, SECRET, max_queue=8)
        await a.start()
        a.connect({1: ("127.0.0.1", port)})
        for i in range(20):
            a.send(1, Ping(i))
        assert a.stats.queue_dropped == 12
        assert a.dropped_by_peer[1] == 12
        assert a.queue_depth(1) <= 8

        # The survivors are the *newest* frames: once the peer appears,
        # the first delivery is not Ping(0).
        b = TcpTransport(1, SECRET)
        await b.start(port)
        inbox = collect(b)
        await wait_for(lambda: len(inbox) >= 8)
        assert [msg.value for _, msg in inbox[:8]] == list(range(12, 20))
        await a.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Reconnect backoff: caps at reconnect_cap, resets after a success
# ---------------------------------------------------------------------------
def test_backoff_caps_then_resets_after_reconnect():
    async def scenario():
        port = free_port()
        a = TcpTransport(
            0, SECRET, reconnect_initial=0.01, reconnect_cap=0.08
        )
        await a.start()
        a.connect({1: ("127.0.0.1", port)})
        a.send(1, Ping("pending"))
        # 0.01 → 0.02 → 0.04 → 0.08 → 0.08 …: the cap holds.
        await wait_for(lambda: a.backoff_by_peer.get(1) == 0.08)
        failures = a.stats.connect_failures
        await asyncio.sleep(0.25)
        assert a.backoff_by_peer[1] == 0.08
        assert a.stats.connect_failures > failures

        b = TcpTransport(1, SECRET)
        await b.start(port)
        inbox = collect(b)
        await wait_for(lambda: inbox)
        # A successful (re)connect resets the backoff to the initial
        # value, so the *next* outage is probed quickly again.
        assert a.backoff_by_peer[1] == 0.01
        await a.close()
        await b.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Queued frames survive a peer restart (only in-flight frames are lost)
# ---------------------------------------------------------------------------
def test_queued_frames_survive_peer_restart():
    async def scenario():
        a, b = await make_pair(a={"reconnect_initial": 0.01})
        inbox = collect(b)
        a.send(1, Ping("before"))
        await wait_for(lambda: inbox)
        port = b.port

        # Peer crashes; probe until the sender notices the dead stream
        # and enters its redial loop (probes in flight are lost).
        await b.close()
        failures = a.stats.connect_failures
        probes = 0
        while a.stats.connect_failures <= failures:
            a.send(1, Ping("probe"))
            probes += 1
            await asyncio.sleep(0.02)
            if probes > 500:
                pytest.fail("sender never entered its redial loop")

        # Frames sent while the peer is down wait in the bounded queue
        # (the sender only dequeues after a successful dial).
        for i in range(10):
            a.send(1, Ping(i))
        assert a.queue_depth(1) >= 10

        # Peer restarts on the same port: the backlog drains in order;
        # only frames in flight at the crash moment were lost — the hole
        # the WAL catch-up path repairs at the protocol layer.
        b2 = TcpTransport(1, SECRET)
        await b2.start(port)
        inbox2 = collect(b2)
        await wait_for(
            lambda: [m.value for _, m in inbox2 if m.value != "probe"]
            == list(range(10))
        )
        await a.close()
        await b2.close()

    asyncio.run(scenario())


def test_handler_exception_does_not_kill_receiver():
    async def scenario():
        a, b = await make_pair()
        good: List[Any] = []

        def handler(src: int, msg: Ping) -> None:
            if msg.value == "boom":
                raise RuntimeError("handler bug")
            good.append(msg.value)

        b.on(Ping, handler)
        a.send(1, Ping("boom"))
        a.send(1, Ping("fine"))
        await wait_for(lambda: good)
        assert good == ["fine"]
        assert b.stats.handler_errors == 1
        await a.close()
        await b.close()

    asyncio.run(scenario())
