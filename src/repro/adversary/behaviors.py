"""Byzantine behaviour library: egress-level attacks on Astro replicas.

A :class:`ByzantineBehavior` wraps one replica at the
:meth:`~repro.sim.node.Node.send` / :meth:`~repro.sim.node.Node.broadcast`
boundary (via :meth:`~repro.sim.node.Node.install_egress_tap`).  The
replica keeps running the *honest* protocol code underneath — only what
leaves the node is tampered with, which is exactly the power model of a
Byzantine network adversary that controls a replica's link but must still
produce messages correct replicas might accept.

Every behaviour draws randomness from a :func:`~repro.sim.rng.stable_rng`
stream handed in by the controller, so injected faults are deterministic
and independent of ``PYTHONHASHSEED`` (golden/byte-identity tests compare
attacked histories across fresh interpreters).

Sharded engines (``REPRO_SIM_SHARDS`` > 1) build the full system — taps
included — in every worker.  *Reactive* tampering (triggered by an
outgoing message) executes only at the worker that owns the attacker, so
it is shard-safe by construction.  Behaviours that start their own timers
(:class:`OverloadClient`) gate on shard ownership in :meth:`on_arm`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional, Sequence, Tuple

from ..brb.batching import Batch
from ..brb.bracha import BrbPrepare
from ..brb.signed import SbPrepare
from ..core.dependencies import (
    CreditBundle,
    CreditMessage,
    DependencyCertificate,
    credit_content,
    subbatch_digest_of,
)
from ..core.messages import SUBMIT_BYTES, ClientSubmit
from ..core.payment import Payment
from ..crypto.signatures import sign

__all__ = [
    "ByzantineBehavior",
    "EquivocatingRepresentative",
    "ForgedCreditSettler",
    "CertStuffingRepresentative",
    "MuteReplica",
    "SelectiveDelivery",
    "ReplayStaleTraffic",
    "OverloadClient",
]


def _forged_copy(payment: Payment, bump: int = 1) -> Payment:
    """A payment with the same identifier but conflicting content."""
    return Payment(
        payment.spender,
        payment.seq,
        payment.beneficiary,
        payment.amount + bump,
        deps=payment.deps,
        submitted_at=payment.submitted_at,
    )


class ByzantineBehavior:
    """Strategy interface for one Byzantine replica's egress.

    Lifecycle: the controller calls :meth:`attach` (which installs the
    egress tap; the node's raw bound methods arrive via :meth:`bind`),
    then :meth:`arm` at the attack's start time.  Until armed, the tap
    forwards verbatim — an attacked run before its arm time is
    byte-identical to a benign one.

    Subclasses override :meth:`filter_send` / :meth:`filter_broadcast`
    (and optionally :meth:`on_arm`) and bump :attr:`tampered` whenever
    they mutate, drop, or inject traffic, so tests can assert the attack
    actually fired.
    """

    #: Registry name (controller + ``REPRO_ADVERSARY_ATTACKS`` knob).
    name = "base"
    #: System kinds the attack applies to.
    systems: Tuple[str, ...] = ("astro1", "astro2")

    def __init__(self) -> None:
        self.replica: Any = None
        self.system: Any = None
        self.rng: Any = None
        self.adversary_ids: Tuple[int, ...] = ()
        self.active = False
        #: Number of tampering decisions taken while armed.
        self.tampered = 0
        self._raw_send: Any = None
        self._raw_broadcast: Any = None

    # -- wiring ---------------------------------------------------------
    def attach(
        self,
        replica: Any,
        system: Any,
        rng: Any,
        adversary_ids: Sequence[int] = (),
    ) -> None:
        self.replica = replica
        self.system = system
        self.rng = rng
        self.adversary_ids = tuple(adversary_ids)
        replica.install_egress_tap(self)

    def bind(self, raw_send: Any, raw_broadcast: Any) -> None:
        """Receive the node's untapped bound methods (Node tap protocol)."""
        self._raw_send = raw_send
        self._raw_broadcast = raw_broadcast

    def arm(self) -> None:
        if not self.active:
            self.active = True
            self.on_arm()

    def on_arm(self) -> None:
        """Hook run once when the attack starts (timers, target choice)."""

    # -- tap entry points (shadow Node.send / Node.broadcast) -----------
    def send(
        self,
        dst: int,
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        if not self.active:
            self._raw_send(
                dst, payload, size=size, recv_cost=recv_cost, send_cost=send_cost
            )
            return
        self.filter_send(dst, payload, size, recv_cost, send_cost)

    def broadcast(
        self,
        targets: Sequence[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        if not self.active:
            self._raw_broadcast(
                targets, payload, size=size, recv_cost=recv_cost,
                send_cost=send_cost,
            )
            return
        self.filter_broadcast(targets, payload, size, recv_cost, send_cost)

    # -- overridables (default: forward verbatim) -----------------------
    def filter_send(
        self,
        dst: int,
        payload: Any,
        size: int,
        recv_cost: Optional[float],
        send_cost: float,
    ) -> None:
        self._raw_send(
            dst, payload, size=size, recv_cost=recv_cost, send_cost=send_cost
        )

    def filter_broadcast(
        self,
        targets: Sequence[int],
        payload: Any,
        size: int,
        recv_cost: Optional[float],
        send_cost: float,
    ) -> None:
        self._raw_broadcast(
            targets, payload, size=size, recv_cost=recv_cost,
            send_cost=send_cost,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        node = getattr(self.replica, "node_id", None)
        return f"<{type(self).__name__} attack={self.name} node={node}>"


class EquivocatingRepresentative(ByzantineBehavior):
    """Different batches to different quorum halves (§IV equivocation).

    The real batch goes to enough correct replicas that — together with
    the attacker's own local ACK/ECHO — it still reaches the 2f+1 quorum;
    a forged variant (every payment's amount bumped by one, so the
    identifiers collide but the content conflicts) goes to the remaining
    third of the targets.  In Astro I totality drags the starved replicas
    to the real batch via READY amplification; in Astro II they simply
    never deliver that batch (the commit certificate names a digest they
    did not ACK), so their xlogs lag as a prefix.  Either way at most one
    payload per identifier can ever gather a certificate.  RNG-free, so
    the attack is usable in serial-vs-sharded byte-identity tests.
    """

    name = "equivocate"
    systems = ("astro1", "astro2")

    def filter_broadcast(
        self, targets, payload, size, recv_cost, send_cost
    ) -> None:
        inner = getattr(payload, "payload", None)
        if isinstance(payload, (SbPrepare, BrbPrepare)) and isinstance(
            inner, Batch
        ):
            targets = list(targets)
            starve = max(1, len(targets) // 3)
            forged_batch = Batch(
                tuple(_forged_copy(p) for p in inner.items)
            )
            forged = type(payload)(payload.seq, forged_batch, payload.size)
            self.tampered += 1
            honest = targets[:-starve]
            if honest:
                self._raw_broadcast(
                    honest, payload, size=size, recv_cost=recv_cost,
                    send_cost=send_cost,
                )
            self._raw_broadcast(
                targets[-starve:], forged, size=size, recv_cost=recv_cost,
                send_cost=send_cost,
            )
            return
        self._raw_broadcast(
            targets, payload, size=size, recv_cost=recv_cost,
            send_cost=send_cost,
        )


class ForgedCreditSettler(ByzantineBehavior):
    """CREDITs whose payload disagrees with their signed digest.

    Every outgoing CREDIT keeps its (valid) signature and claimed
    sub-batch digest but ships payments with inflated amounts — the
    forgery PR 5 hardened :meth:`DependencyCollector.add_credit` against:
    the collector recomputes ``subbatch_digest_of(payments)`` on first
    arrival and must discard the message, so no certificate ever binds
    the inflated amounts.  Certificates still mint from the >= f+1
    correct settlers.
    """

    name = "forge_credit"
    systems = ("astro2",)

    def filter_send(self, dst, payload, size, recv_cost, send_cost) -> None:
        if isinstance(payload, CreditMessage):
            payload = self._forge(payload)
            self.tampered += 1
        elif isinstance(payload, CreditBundle):
            payload = CreditBundle(
                tuple(self._forge(m) for m in payload.messages)
            )
            self.tampered += 1
        self._raw_send(
            dst, payload, size=size, recv_cost=recv_cost, send_cost=send_cost
        )

    @staticmethod
    def _forge(message: CreditMessage) -> CreditMessage:
        inflated = tuple(
            Payment(
                p.spender, p.seq, p.beneficiary, p.amount * 100 + 1,
                submitted_at=p.submitted_at,
            )
            for p in message.payments
        )
        # Same claimed digest and signature, conflicting payload: the
        # receiver's first-arrival digest check is the only defence.
        return CreditMessage(
            message.shard_id, inflated, message.signature,
            subbatch_digest=message.subbatch_digest,
        )


class CertStuffingRepresentative(ByzantineBehavior):
    """Attacker-sized signature tuples on fabricated dependency certs.

    Each payment in an outgoing batch gains a forged certificate for a
    ghost crediting payment (a client that does not exist paying the
    spender a fortune).  The sub-batch digest and the attacker's own
    signature over ``credit_content`` are *well-formed*; what is wrong is
    the signature tuple's shape, alternating between the two PR 5
    hardening targets: oversized (f+2 copies — rejected O(1) on length
    before any signature verification) and undersized (one signature —
    rejected by the distinct-signer >= f+1 threshold after a single
    verify).  Correct replicas deliver the stuffed batch (the attacker's
    own BRB endpoint collects the stuffed digest's ACK quorum), reject
    every ghost certificate in ``_cert_valid``, and settle the real
    payments untouched.
    """

    name = "cert_stuffing"
    systems = ("astro2",)

    def __init__(self) -> None:
        super().__init__()
        self._ghost_seq = 0

    def filter_broadcast(
        self, targets, payload, size, recv_cost, send_cost
    ) -> None:
        if isinstance(payload, SbPrepare) and isinstance(
            payload.payload, Batch
        ):
            stuffed = Batch(
                tuple(self._stuff(p) for p in payload.payload.items)
            )
            delta = stuffed.size_bytes - payload.payload.size_bytes
            forged = SbPrepare(payload.seq, stuffed, payload.size + delta)
            self.tampered += 1
            self._raw_broadcast(
                list(targets), forged, size=forged.size, recv_cost=recv_cost,
                send_cost=send_cost,
            )
            return
        self._raw_broadcast(
            targets, payload, size=size, recv_cost=recv_cost,
            send_cost=send_cost,
        )

    def _stuff(self, payment: Payment) -> Payment:
        self._ghost_seq += 1
        ghost = Payment(
            ("ghost", self.replica.node_id, self._ghost_seq),
            1,
            payment.spender,
            1 << 30,
        )
        subbatch = (ghost,)
        batch_digest = subbatch_digest_of(subbatch)
        signature = sign(
            self.replica.key,
            credit_content(self.replica.shard_id, batch_digest),
        )
        faulty_bound = self.system.config.f
        if self._ghost_seq % 2:
            signatures = (signature,) * (faulty_bound + 2)  # oversized
        else:
            signatures = (signature,)  # undersized (distinct signers < f+1)
        cert = DependencyCertificate(
            ghost, self.replica.shard_id, subbatch, signatures,
            subbatch_digest=batch_digest,
        )
        return Payment(
            payment.spender, payment.seq, payment.beneficiary, payment.amount,
            deps=payment.deps + (cert,), submitted_at=payment.submitted_at,
        )


class MuteReplica(ByzantineBehavior):
    """Drops every outgoing message while still receiving and processing.

    Distinct from a crash: the replica's local state keeps advancing, so
    a later un-muting (or state inspection) sees a live but silent
    participant — the classic "receive-only" omission fault.
    """

    name = "mute"
    systems = ("astro1", "astro2")

    def filter_send(self, dst, payload, size, recv_cost, send_cost) -> None:
        self.tampered += 1

    def filter_broadcast(
        self, targets, payload, size, recv_cost, send_cost
    ) -> None:
        self.tampered += 1


class SelectiveDelivery(ByzantineBehavior):
    """Delivers to one half of the replicas and starves the other.

    The starved set is drawn once at arm time from the behaviour's stable
    RNG stream, so which replicas are starved is deterministic per
    (seed, attacker).  Client-facing traffic (confirmations) passes.
    """

    name = "selective"
    systems = ("astro1", "astro2")

    def on_arm(self) -> None:
        others = [
            r for r in self.system.replica_node_ids
            if r != self.replica.node_id
        ]
        self.starve = frozenset(self.rng.sample(others, len(others) // 2))

    def filter_send(self, dst, payload, size, recv_cost, send_cost) -> None:
        if dst in self.starve:
            self.tampered += 1
            return
        self._raw_send(
            dst, payload, size=size, recv_cost=recv_cost, send_cost=send_cost
        )

    def filter_broadcast(
        self, targets, payload, size, recv_cost, send_cost
    ) -> None:
        kept = [t for t in targets if t not in self.starve]
        if len(kept) != len(targets):
            self.tampered += 1
        if kept:
            self._raw_broadcast(
                kept, payload, size=size, recv_cost=recv_cost,
                send_cost=send_cost,
            )


class ReplayStaleTraffic(ByzantineBehavior):
    """Re-sends stale batches, ACKs, and CREDITs at random delays.

    Keeps a bounded buffer of recently sent unicasts and broadcast copies;
    on each new send it (probabilistically, from the stable stream)
    schedules one stale message for redelivery.  Correct endpoints must
    shrug: duplicate PREPAREs hit the idempotent instance state, stale
    CREDITs hit the collector's straggler/dedup paths, duplicate commits
    are delivered-once.  Replays ride the replica's own timer, so they
    stop if the attacker crashes and only ever run at the shard worker
    that owns the attacker.
    """

    name = "replay"
    systems = ("astro1", "astro2")

    #: Bounded history so memory stays O(1) over long runs.
    BUFFER = 32
    REPLAY_PROB = 0.3
    MIN_DELAY = 0.05
    MAX_DELAY = 0.5

    def on_arm(self) -> None:
        self._stale: deque = deque(maxlen=self.BUFFER)

    def filter_send(self, dst, payload, size, recv_cost, send_cost) -> None:
        self._raw_send(
            dst, payload, size=size, recv_cost=recv_cost, send_cost=send_cost
        )
        self._maybe_replay()
        self._stale.append((dst, payload, size, recv_cost))

    def filter_broadcast(
        self, targets, payload, size, recv_cost, send_cost
    ) -> None:
        self._raw_broadcast(
            targets, payload, size=size, recv_cost=recv_cost,
            send_cost=send_cost,
        )
        self._maybe_replay()
        for dst in targets:
            self._stale.append((dst, payload, size, recv_cost))

    def _maybe_replay(self) -> None:
        if self._stale and self.rng.random() < self.REPLAY_PROB:
            dst, payload, size, recv_cost = self._stale[
                self.rng.randrange(len(self._stale))
            ]
            self.tampered += 1
            self.replica.set_timer(
                self.rng.uniform(self.MIN_DELAY, self.MAX_DELAY),
                self._raw_send, dst, payload, size, recv_cost,
            )


class OverloadClient(ByzantineBehavior):
    """Floods the lowest-id correct replica with bogus client submits.

    The spender is a ghost client unknown to the representative map, so
    every submit is dropped after the ingest CPU charge — a pure
    computational DoS against one correct representative that must not
    corrupt any client's sequence state.  The flood ticker is a timer the
    behaviour starts itself, so :meth:`on_arm` refuses to start it at
    shard workers that do not own the attacker (flood cells are run on
    the serial engine; see the module docstring).
    """

    name = "flood"
    systems = ("astro1", "astro2")

    #: ~8000 submits/s: BURST per TICK seconds.
    TICK = 0.002
    BURST = 16

    def on_arm(self) -> None:
        if not self.replica.owns(self.replica.node_id):
            return
        correct = [
            r for r in self.system.replica_node_ids
            if r not in self.adversary_ids
        ]
        self.victim = correct[0]
        self._ghost = ("flood", self.replica.node_id)
        self._sink = ("flood-sink", self.replica.node_id)
        self._next_seq = 0
        self.replica.set_timer(self.TICK, self._tick)

    def _tick(self) -> None:
        if not self.active:
            return
        ingest_cost = getattr(self.system.config, "ingest_cost", None)
        for _ in range(self.BURST):
            self._next_seq += 1
            bogus = Payment(self._ghost, self._next_seq, self._sink, 1)
            self.tampered += 1
            self._raw_send(
                self.victim, ClientSubmit(bogus), SUBMIT_BYTES, ingest_cost
            )
        self.replica.set_timer(self.TICK, self._tick)


#: Every concrete behaviour, in catalog order.
ALL_BEHAVIORS: List[type] = [
    EquivocatingRepresentative,
    ForgedCreditSettler,
    CertStuffingRepresentative,
    MuteReplica,
    SelectiveDelivery,
    ReplayStaleTraffic,
    OverloadClient,
]
