"""Adversary installation: attack registry, placement, arming.

:func:`install_adversary` turns an attack descriptor into taps on the
last ``count`` replicas of a system (default ``count = f``, the paper's
fault bound).  Placement at the *end* of the sorted replica-id range is
deliberate: benchmark builders place representatives across the full
range, so the adversary set overlaps representatives without special
casing, and the correct-replica set is a stable prefix for the monitor
and for flood-victim selection.

Arming is either synchronous (``at`` not in the future — no event is
scheduled, so construction-time installs stay byte-identical across
sharded workers) or via one simulator event at ``at``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.system import Astro1System, Astro2System
from ..sim.rng import stable_rng
from .behaviors import ALL_BEHAVIORS, ByzantineBehavior

__all__ = ["ATTACKS", "Adversary", "install_adversary", "system_kind"]

#: Attack-name -> behaviour class, in catalog order.
ATTACKS: Dict[str, type] = {cls.name: cls for cls in ALL_BEHAVIORS}


def system_kind(system: Any) -> str:
    """The builder name of ``system`` (attack applicability is keyed on it)."""
    if isinstance(system, Astro2System):
        return "astro2"
    if isinstance(system, Astro1System):
        return "astro1"
    raise TypeError(
        f"adversary supports Astro systems, got {type(system).__name__}"
    )


class Adversary:
    """Handle over one installed attack: behaviours, placement, arm time."""

    def __init__(
        self,
        system: Any,
        attack: str,
        behaviors: Sequence[ByzantineBehavior],
        byzantine_ids: Tuple[int, ...],
        armed_at: float,
    ) -> None:
        self.system = system
        self.attack = attack
        self.behaviors = list(behaviors)
        self.byzantine_ids = byzantine_ids
        self.armed_at = armed_at

    @property
    def tampered(self) -> int:
        """Total tampering decisions across all Byzantine replicas."""
        return sum(behavior.tampered for behavior in self.behaviors)

    def _arm_all(self) -> None:
        for behavior in self.behaviors:
            behavior.arm()

    def remove(self) -> None:
        """Detach every tap (the replicas return to honest egress)."""
        for behavior in self.behaviors:
            behavior.replica.remove_egress_tap()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Adversary attack={self.attack} nodes={self.byzantine_ids} "
            f"at={self.armed_at}>"
        )


def install_adversary(
    system: Any,
    spec: Union[str, Dict[str, Any]],
    seed: int = 0,
) -> Adversary:
    """Install a Byzantine attack on ``system``.

    ``spec`` is an attack name or a dict with keys:

    * ``attack`` — name from :data:`ATTACKS` (required);
    * ``count`` — number of Byzantine replicas (default ``config.f``);
    * ``at`` — simulated arm time (default ``0.0``: armed immediately,
      with no scheduler event, so builder-time installs are shard-safe).

    Each behaviour draws from ``stable_rng(seed, "adversary", attack,
    node_id)`` — hashseed-independent and private per attacker.  The
    returned handle is also stored as ``system.adversary``.
    """
    if isinstance(spec, str):
        spec = {"attack": spec}
    attack = spec.get("attack")
    cls = ATTACKS.get(attack)
    if cls is None:
        raise ValueError(
            f"unknown attack {attack!r}: known attacks are {sorted(ATTACKS)}"
        )
    kind = system_kind(system)
    if kind not in cls.systems:
        raise ValueError(
            f"attack {attack!r} applies to {cls.systems}, not {kind!r}"
        )
    count: Optional[int] = spec.get("count")
    if count is None:
        count = system.config.f
    replica_ids = system.replica_node_ids
    if not 0 < count <= len(replica_ids) - 1:
        raise ValueError(
            f"adversary count must be in 1..{len(replica_ids) - 1} "
            f"(at least one correct replica), got {count}"
        )
    byzantine = tuple(replica_ids[-count:])
    behaviors: List[ByzantineBehavior] = []
    for node_id in byzantine:
        behavior = cls()
        behavior.attach(
            system.replica_by_node(node_id),
            system,
            stable_rng(seed, "adversary", attack, node_id),
            adversary_ids=byzantine,
        )
        behaviors.append(behavior)
    at = float(spec.get("at", 0.0))
    adversary = Adversary(system, attack, behaviors, byzantine, at)
    if at <= system.sim.now:
        adversary._arm_all()
    else:
        system.sim.schedule_at(at, adversary._arm_all)
    system.adversary = adversary
    return adversary
