"""Byzantine adversary subsystem: attacks, installation, live monitoring.

Layered on top of the benign tier (:mod:`repro.sim.faults`): behaviours
tamper with a replica's egress at the node send/broadcast boundary,
:func:`install_adversary` places them at the paper's f = ⌊(N−1)/3⌋ bound,
and :class:`InvariantMonitor` asserts the DESIGN §4 safety invariants at
correct replicas *while* the attack runs.  The benchmark harness lives in
:mod:`repro.bench.adversary`.
"""

from .behaviors import (
    ALL_BEHAVIORS,
    ByzantineBehavior,
    CertStuffingRepresentative,
    EquivocatingRepresentative,
    ForgedCreditSettler,
    MuteReplica,
    OverloadClient,
    ReplayStaleTraffic,
    SelectiveDelivery,
)
from .controller import ATTACKS, Adversary, install_adversary, system_kind
from .monitor import InvariantMonitor

__all__ = [
    "ALL_BEHAVIORS",
    "ATTACKS",
    "Adversary",
    "ByzantineBehavior",
    "CertStuffingRepresentative",
    "EquivocatingRepresentative",
    "ForgedCreditSettler",
    "InvariantMonitor",
    "MuteReplica",
    "OverloadClient",
    "ReplayStaleTraffic",
    "SelectiveDelivery",
    "install_adversary",
    "system_kind",
]
