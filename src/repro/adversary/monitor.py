"""Live safety-invariant monitoring of correct replicas (DESIGN §4).

The :class:`InvariantMonitor` samples the *correct* replicas of a running
system on a simulated-time cadence — during the run, not only at the end —
and asserts the five safety invariants online:

1. **non-negative balances** — no correct replica ever records a negative
   balance;
2. **per-client sequence monotonicity** — each xlog is exactly
   ``1..len``, ``sn[c] == len(xlog[c])`` moves in lockstep, and no xlog
   ever shrinks between samples;
3. **double-spend freedom** — across every correct replica and every
   sample, a payment identifier ``(spender, seq)`` settles with at most
   one ``(beneficiary, amount)``;
4. **conservation of value** — Astro I (and the consensus baseline)
   settle atomically, so each replica's total balance equals its genesis
   total; Astro II never credits directly, so per client
   ``bal[c] == genesis[c] − Σ xlog[c] + Σ materialized dependencies``,
   with each materialized dependency resolved against the crediting
   payment in some correct replica's xlog (an f+1 certificate implies at
   least one correct settler logged it — a dependency no correct replica
   can vouch for is itself a violation);
5. **cross-replica convergence** — within a shard, every correct
   replica's xlog for a client is a prefix of the longest one.

Violations are recorded with their simulated first-violation time;
:meth:`verdict` summarizes for timeline results and
``BENCH_byzantine.json``.

The monitor is strictly read-only and is meant for serial timelines (its
sampling events would perturb sharded event interleaving; byte-identity
tests run the attacks without a monitor and compare histories instead).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["InvariantMonitor"]

#: Stop appending violation records past this many (a broken run can
#: violate at every sample; the first few carry all the signal).
_MAX_RECORDED = 100


class InvariantMonitor:
    """Samples correct replicas of ``system`` every ``interval`` sim-seconds.

    ``byzantine_ids`` are excluded from sampling (their state is allowed
    to be arbitrary).  Crashed correct replicas stay included: their
    frozen state must still satisfy every invariant.  ``until`` bounds
    rescheduling so drain loops (``run_until_idle``) terminate; the
    final post-run state can be checked explicitly with :meth:`sample`.
    """

    def __init__(
        self,
        system: Any,
        interval: float = 1.0,
        byzantine_ids: Sequence[int] = (),
        start: Optional[float] = None,
        until: Optional[float] = None,
        autostart: bool = True,
        dep_grace: int = 0,
    ) -> None:
        self.system = system
        self.interval = float(interval)
        self.byzantine = frozenset(byzantine_ids)
        self.until = until
        #: Samples an unknown dependency may stay unresolved before it is
        #: recorded.  0 (simulator: all replicas sampled at one instant)
        #: records immediately.  Live feeds capture replicas milliseconds
        #: apart, so a dependency materialized mid-round can precede its
        #: crediting payment's appearance in a settler's view by one
        #: sample — ``dep_grace=1`` absorbs exactly that skew.
        self.dep_grace = int(dep_grace)
        self.samples = 0
        self.violations: List[Dict[str, Any]] = []
        self.replicas = [
            system.replica_by_node(node_id)
            for node_id in system.replica_node_ids
            if node_id not in self.byzantine
        ]
        if not self.replicas:
            raise ValueError("no correct replicas left to monitor")
        #: Astro II replicas materialize dependencies (``_used_deps``);
        #: Astro I and the consensus baseline settle atomically.
        self.mode = (
            "deps" if hasattr(self.replicas[0], "_used_deps") else "atomic"
        )
        #: Genesis snapshot per correct replica, taken at construction
        #: (the monitor must be created before the run starts).
        self._genesis = [dict(r.state.balances) for r in self.replicas]
        self._genesis_totals = [sum(g.values()) for g in self._genesis]
        #: Convergence groups: replicas of one shard agree on xlogs.
        self._groups = self._shard_groups()
        #: (replica, client) -> xlog length at the previous sample.
        self._prev_len: Dict[Tuple[int, Any], int] = {}
        #: Global settled-payment index: identifier -> (beneficiary,
        #: amount).  Grows across replicas *and* samples, so a conflicting
        #: late settle is caught against history.
        self._payment_index: Dict[Any, Tuple[Any, int]] = {}
        #: (replica, dep_id) -> sample number first seen unresolved.
        self._dep_pending: Dict[Tuple[int, str], int] = {}
        self._stopped = False
        if autostart:
            first = (start if start is not None else system.sim.now) + self.interval
            system.sim.schedule_at(first, self._tick)
        # With ``autostart=False`` the owner drives :meth:`sample`
        # explicitly (live-cluster feeds have no simulator to tick on;
        # they pass wall-clock ``now`` instead).

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        self.sample()
        next_at = self.system.sim.now + self.interval
        if self.until is None or next_at <= self.until + 1e-9:
            self.system.sim.schedule_at(next_at, self._tick)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> None:
        """Check all five invariants against current replica state."""
        if now is None:
            now = self.system.sim.now
        self.samples += 1
        for idx, replica in enumerate(self.replicas):
            self._check_balances(now, replica)
            self._check_sequences(now, replica)
            self._index_payments(now, replica)
        for idx, replica in enumerate(self.replicas):
            self._check_conservation(now, idx, replica)
        self._check_convergence(now)

    def first_violation(self) -> Optional[float]:
        return self.violations[0]["time"] if self.violations else None

    def verdict(self) -> Dict[str, Any]:
        """JSON-ready summary for timeline results / BENCH_byzantine."""
        return {
            "ok": not self.violations,
            "samples": self.samples,
            "first_violation": self.first_violation(),
            "violations": [dict(v) for v in self.violations[:10]],
        }

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _record(self, now: float, invariant: str, **detail: Any) -> None:
        if len(self.violations) < _MAX_RECORDED:
            record: Dict[str, Any] = {"time": now, "invariant": invariant}
            record.update(detail)
            self.violations.append(record)

    def _check_balances(self, now: float, replica: Any) -> None:
        for client, balance in replica.state.balances.items():
            if balance < 0:
                self._record(
                    now, "non_negative", replica=replica.node_id,
                    client=repr(client), balance=balance,
                )

    def _check_sequences(self, now: float, replica: Any) -> None:
        state = replica.state
        for client, log in state.xlogs.items():
            entries = log.entries()
            for position, payment in enumerate(entries):
                if payment.seq != position + 1:
                    self._record(
                        now, "sequence", replica=replica.node_id,
                        client=repr(client), expected=position + 1,
                        got=payment.seq,
                    )
                    break
            if state.seqnums.get(client, 0) != len(entries):
                self._record(
                    now, "sequence", replica=replica.node_id,
                    client=repr(client), seqnum=state.seqnums.get(client, 0),
                    xlog_len=len(entries),
                )
            key = (replica.node_id, client)
            previous = self._prev_len.get(key, 0)
            if len(entries) < previous:
                self._record(
                    now, "sequence", replica=replica.node_id,
                    client=repr(client), shrank_from=previous,
                    shrank_to=len(entries),
                )
            self._prev_len[key] = len(entries)

    def _index_payments(self, now: float, replica: Any) -> None:
        index = self._payment_index
        for client, log in replica.state.xlogs.items():
            for payment in log.entries():
                seen = index.get(payment.identifier)
                effect = (payment.beneficiary, payment.amount)
                if seen is None:
                    index[payment.identifier] = effect
                elif seen != effect:
                    self._record(
                        now, "double_spend", replica=replica.node_id,
                        identifier=repr(payment.identifier),
                        first=repr(seen), second=repr(effect),
                    )

    def _check_conservation(self, now: float, idx: int, replica: Any) -> None:
        state = replica.state
        if self.mode == "atomic":
            total = sum(state.balances.values())
            if total != self._genesis_totals[idx]:
                self._record(
                    now, "conservation", replica=replica.node_id,
                    total=total, genesis=self._genesis_totals[idx],
                )
            return
        genesis = self._genesis[idx]
        used_deps = replica._used_deps
        index = self._payment_index
        for client, initial in genesis.items():
            spent = 0
            log = state.xlogs.get(client)
            if log is not None:
                for payment in log.entries():
                    spent += payment.amount
            credited = 0
            unresolved = 0
            for dep_id in used_deps.get(client, ()):
                effect = index.get(dep_id)
                if effect is None:
                    # No correct replica can (yet) vouch for this
                    # dependency.  Past the grace window it means a
                    # fabricated certificate was materialized.
                    key = (replica.node_id, repr(dep_id))
                    first = self._dep_pending.setdefault(key, self.samples)
                    if self.samples - first >= self.dep_grace:
                        self._record(
                            now, "conservation", replica=replica.node_id,
                            client=repr(client), unknown_dep=repr(dep_id),
                        )
                    unresolved += 1
                    continue
                self._dep_pending.pop((replica.node_id, repr(dep_id)), None)
                credited += effect[1]
            if unresolved and self.dep_grace > 0:
                # Credits cannot be summed yet; re-check next sample.
                continue
            expected = initial - spent + credited
            if state.balances.get(client, 0) != expected:
                self._record(
                    now, "conservation", replica=replica.node_id,
                    client=repr(client), balance=state.balances.get(client, 0),
                    expected=expected,
                )

    def _check_convergence(self, now: float) -> None:
        for group in self._groups:
            clients: Dict[Any, List[Any]] = {}
            for replica in group:
                for client, log in replica.state.xlogs.items():
                    if len(log):
                        clients.setdefault(client, []).append(log)
            for client, logs in clients.items():
                reference = max(logs, key=len)
                for log in logs:
                    if log is reference:
                        continue
                    if not log.is_prefix_of(reference):
                        self._record(
                            now, "convergence", client=repr(client),
                            lengths=[len(entry) for entry in logs],
                        )
                        break

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _shard_groups(self) -> List[List[Any]]:
        directory = getattr(self.system, "directory", None)
        if directory is None:
            return [list(self.replicas)]
        groups: Dict[Any, List[Any]] = {}
        for replica in self.replicas:
            shard = directory.shard_of_replica(replica.node_id)
            groups.setdefault(shard, []).append(replica)
        return list(groups.values())
