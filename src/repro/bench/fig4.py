"""Fig. 4 — latency vs throughput at the largest system size (§VI-C1).

Paper observations at N=100: the consensus baseline runs at sub-second
average latency (p95 1.3–1.5 s) up to ≈334 pps; Astro I sits at
400–500 ms up to ≈2K pps; Astro II at ≈200 ms average (p95 <240 ms at low
load) up to ≈5K pps.  The reproduced claims: Astro II has the lowest and
flattest latency curve, Astro I sits between, and each system's curve
bends upward as it approaches its Fig. 3 saturation point.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .peak import find_peak
from .report import format_table
from .runner import run_open_loop
from .scale import BenchScale, current_scale
from .systems import build_astro1, build_astro2, build_bft

__all__ = ["Fig4Result", "run_fig4"]

_BUILDERS = {"bft": build_bft, "astro1": build_astro1, "astro2": build_astro2}
_START_RATES = {"bft": 400.0, "astro1": 2000.0, "astro2": 4000.0}


@dataclass
class Fig4Result:
    size: int
    #: system -> list of (throughput pps, mean latency s, p95 latency s)
    curves: Dict[str, List[Tuple[float, float, float]]]

    def table(self) -> str:
        headers = ["system", "throughput (pps)", "mean latency (ms)", "p95 (ms)"]
        rows = []
        for name, curve in self.curves.items():
            for throughput, mean, p95 in curve:
                rows.append(
                    [name, f"{throughput:.0f}", f"{mean * 1e3:.0f}", f"{p95 * 1e3:.0f}"]
                )
        return format_table(
            headers, rows,
            title=f"Fig. 4 — latency/throughput at N={self.size}",
        )


def run_fig4(
    size: int = 0,
    points: int = 0,
    seed: int = 0,
    scale: BenchScale = None,
    systems: Sequence[str] = ("bft", "astro1", "astro2"),
) -> Fig4Result:
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.fig4_size
    if points == 0:
        points = scale.fig4_rates_per_system
    curves: Dict[str, List[Tuple[float, float, float]]] = {}
    for name in systems:
        factory = functools.partial(_BUILDERS[name], size, seed=seed)
        peak = find_peak(
            factory,
            start_rate=_START_RATES[name],
            duration=scale.peak_duration,
            warmup=scale.peak_warmup,
            refine_steps=2,
            seed=seed,
        )
        curve: List[Tuple[float, float, float]] = []
        for step in range(1, points + 1):
            rate = peak.peak_pps * step / points
            if rate < 1:
                continue
            result = run_open_loop(
                factory(),
                rate=rate,
                duration=scale.peak_duration,
                warmup=scale.peak_warmup,
                seed=seed,
            )
            if result.latency.count:
                curve.append(
                    (result.achieved, result.latency.mean, result.latency.p95)
                )
        curves[name] = curve
    return Fig4Result(size=size, curves=curves)
