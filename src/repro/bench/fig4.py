"""Fig. 4 — latency vs throughput at the largest system size (§VI-C1).

Paper observations at N=100: the consensus baseline runs at sub-second
average latency (p95 1.3–1.5 s) up to ≈334 pps; Astro I sits at
400–500 ms up to ≈2K pps; Astro II at ≈200 ms average (p95 <240 ms at low
load) up to ≈5K pps.  The reproduced claims: Astro II has the lowest and
flattest latency curve, Astro I sits between, and each system's curve
bends upward as it approaches its Fig. 3 saturation point.

Execution model: one ``fig4_curve`` job per system (the sampled rates
depend on that system's measured peak, so a curve is internally
sequential); the three systems' curves run concurrently on the parallel
backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .estimate import job_memory_bytes
from .parallel import ScenarioJob, execute
from .report import format_table
from .scale import BenchScale, current_scale
from .systems import validate_systems

__all__ = ["Fig4Result", "run_fig4"]

_START_RATES = {"bft": 400.0, "astro1": 2000.0, "astro2": 4000.0}


@dataclass
class Fig4Result:
    size: int
    #: system -> list of (throughput pps, mean latency s, p95 latency s)
    curves: Dict[str, List[Tuple[float, float, float]]]

    def table(self) -> str:
        headers = ["system", "throughput (pps)", "mean latency (ms)", "p95 (ms)"]
        rows = []
        for name, curve in self.curves.items():
            for throughput, mean, p95 in curve:
                rows.append(
                    [name, f"{throughput:.0f}", f"{mean * 1e3:.0f}", f"{p95 * 1e3:.0f}"]
                )
        return format_table(
            headers, rows,
            title=f"Fig. 4 — latency/throughput at N={self.size}",
        )


def run_fig4(
    size: int = 0,
    points: int = 0,
    seed: int = 0,
    scale: Optional[BenchScale] = None,
    systems: Sequence[str] = ("bft", "astro1", "astro2"),
    jobs: Optional[int] = None,
) -> Fig4Result:
    if scale is None:
        scale = current_scale()
    systems = validate_systems(systems)
    if size == 0:
        size = scale.fig4_size
    if points == 0:
        points = scale.fig4_rates_per_system
    units = [
        ScenarioJob(
            kind="fig4_curve",
            params=dict(
                system=name,
                size=size,
                points=points,
                start_rate=_START_RATES[name],
                duration=scale.peak_duration,
                warmup=scale.peak_warmup,
            ),
            seed=seed,
            tag=name,
        )
        for name in systems
    ]
    results = execute(
        units, jobs=jobs, label=f"fig4[{scale.name}]",
        per_job_bytes=job_memory_bytes(size),
    )
    return Fig4Result(size=size, curves=dict(zip(systems, results)))
