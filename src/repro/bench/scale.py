"""Benchmark scale control.

O(N²) protocols at the paper's largest sizes over 60-second windows are
out of reach for a CPython event loop inside a test suite, so the default
scale trims replica counts and window lengths while preserving every
qualitative claim.  ``REPRO_BENCH_SCALE=full`` restores the paper's
parameters; ``REPRO_BENCH_SCALE=smoke`` shrinks further for CI.

The scale knob never changes protocol logic — only N, durations, and
sweep granularity.  DESIGN.md §3 records the per-experiment defaults.
The orthogonal ``REPRO_BENCH_JOBS`` knob (see ``repro.bench.parallel``)
controls how many scenario jobs of a sweep run concurrently; it never
changes results at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

__all__ = ["BenchScale", "current_scale"]


@dataclass(frozen=True)
class BenchScale:
    name: str
    #: Fig. 3 / Fig. 4 system sizes.
    fig3_sizes: Tuple[int, ...]
    fig4_size: int
    fig4_rates_per_system: int
    #: Figs. 5/6 system size (paper: 49) and Fig. 7 size (paper: 100).
    robustness_small_n: int
    robustness_large_n: int
    #: Observation window after warm-up, seconds (paper: 40 after 20).
    robustness_warmup: float
    robustness_window: float
    #: Table I: replicas per shard (paper: 52) and shard counts.
    table1_shard_size: int
    table1_shard_counts: Tuple[int, ...]
    table1_duration: float
    #: Fig. 8 join sweep sizes (paper: 4..80).
    fig8_sizes: Tuple[int, ...]
    #: Peak-search measurement window.
    peak_duration: float
    peak_warmup: float
    #: Peak-search cost knobs (see repro.bench.peak.find_peak): payments
    #: injected per probe, total probes per search, and whether passing
    #: probes may hand their warm system to the next probe.
    peak_payment_budget: int = 150_000
    peak_max_probes: int = 0  # 0 = unlimited
    peak_reuse_state: bool = False
    #: Payments injected by one size-major calibration anchor probe
    #: (see repro.bench.estimate); anchors run deliberately *below*
    #: saturation (capacity is read from bottleneck utilization), and
    #: this budget shrinks the probe window when the rate is high.
    anchor_payment_budget: int = 40_000

    @property
    def peak_probe_cap(self):
        """``max_probes`` value for find_peak (None when unlimited)."""
        return self.peak_max_probes if self.peak_max_probes > 0 else None


_SCALES = {
    "smoke": BenchScale(
        name="smoke",
        # 4 and 22 (not 10): Astro II's curve in this cost model is flat
        # through N≈16 — representative-side work spreads over more
        # replicas — and only turns downward past ~N=22, so a smaller
        # second size cannot demonstrate the paper's decay claim.
        fig3_sizes=(4, 22),
        fig4_size=10,
        fig4_rates_per_system=3,
        robustness_small_n=7,
        robustness_large_n=10,
        robustness_warmup=4.0,
        robustness_window=16.0,
        table1_shard_size=10,
        table1_shard_counts=(2,),
        table1_duration=2.0,
        fig8_sizes=(4, 10, 19),
        peak_duration=0.8,
        peak_warmup=0.6,
        peak_payment_budget=25_000,
        peak_max_probes=9,
        peak_reuse_state=True,
        anchor_payment_budget=6_000,
    ),
    "quick": BenchScale(
        name="quick",
        fig3_sizes=(4, 10, 16, 31),
        fig4_size=16,
        fig4_rates_per_system=4,
        robustness_small_n=13,
        robustness_large_n=25,
        robustness_warmup=8.0,
        robustness_window=24.0,
        table1_shard_size=16,
        table1_shard_counts=(2, 3, 4),
        table1_duration=2.5,
        fig8_sizes=(4, 10, 19, 31, 46, 61, 79),
        peak_duration=0.7,
        peak_warmup=0.5,
        peak_payment_budget=100_000,
        peak_max_probes=14,
        anchor_payment_budget=15_000,
    ),
    "full": BenchScale(
        name="full",
        fig3_sizes=tuple(range(4, 101, 6)),
        fig4_size=100,
        fig4_rates_per_system=8,
        robustness_small_n=49,
        robustness_large_n=100,
        robustness_warmup=20.0,
        robustness_window=40.0,
        table1_shard_size=52,
        table1_shard_counts=(2, 3, 4),
        table1_duration=8.0,
        fig8_sizes=tuple(range(4, 81, 4)),
        peak_duration=2.0,
        peak_warmup=1.5,
    ),
}


def current_scale() -> BenchScale:
    """Scale selected via ``REPRO_BENCH_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]
