"""Peak-throughput search (Fig. 3's measurement procedure).

The paper reports "peak throughput, i.e., before latency saturates"
(§VI-C1).  The search doubles the offered rate until the system saturates
(goodput falls or tail latency exceeds the envelope), then refines by
bisection.  Every probe runs on a *fresh* system so state from an
overloaded probe never pollutes the next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..sim.metrics import LatencySummary
from .runner import RunResult, run_open_loop

__all__ = ["PeakResult", "SATURATION_GOODPUT", "find_peak", "shrink_window"]

#: A probe whose achieved/offered ratio falls below this is saturated.
#: Shared with the estimator's calibration anchors (repro.bench.jobs),
#: which must judge saturation exactly like the searches they seed.
SATURATION_GOODPUT = 0.85


def shrink_window(
    rate: float, duration: float, warmup: float, payment_budget: int
) -> Tuple[float, float]:
    """Probe window scaled so ``rate`` injects at most ``payment_budget``
    payments, floored where throughput measurement stays meaningful.

    The single window discipline shared by every measurement probe —
    peak-search probes here and the estimator's calibration anchors
    (:mod:`repro.bench.jobs`) — so the anchors always observe the same
    window regime as the searches they seed.
    """
    shrink = min(1.0, payment_budget / (rate * (warmup + duration)))
    return max(duration * shrink, 0.4), max(warmup * shrink, 0.3)


@dataclass
class PeakResult:
    """Peak throughput of one system configuration."""

    peak_pps: float
    latency: LatencySummary
    probes: List[RunResult]
    #: Index into ``probes`` of the measurement ``peak_pps`` reports —
    #: the best passing probe, or (saturated-plateau fallback) the
    #: failing probe with the highest achieved rate.
    peak_probe_index: Optional[int] = None

    @property
    def injected_total(self) -> int:
        """Payments injected across every probe of the search — the
        quantity ``payment_budget`` rations, surfaced so budget
        accounting is observable."""
        return sum(probe.injected for probe in self.probes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PeakResult {self.peak_pps:.0f} pps over {len(self.probes)} probes>"


def _probe_ok(result: RunResult, envelope: float) -> bool:
    if result.goodput_ratio < SATURATION_GOODPUT:
        return False
    if result.latency.count == 0:
        return False
    return result.latency.p95 <= envelope


def find_peak(
    factory: Optional[Callable[[], Any]],
    start_rate: float = 500.0,
    latency_envelope: float = 1.5,
    duration: float = 1.5,
    warmup: float = 1.0,
    max_doublings: int = 12,
    refine_steps: int = 3,
    seed: int = 0,
    workload_factory: Optional[Callable[[Any], Any]] = None,
    payment_budget: int = 150_000,
    max_probes: Optional[int] = None,
    reuse_state: bool = False,
    bracket: Optional[Tuple[float, float]] = None,
    probe_runner: Optional[Callable[[float, float, float, bool], RunResult]] = None,
) -> PeakResult:
    """Find peak sustainable throughput for systems built by ``factory``.

    ``workload_factory(system)`` supplies a non-default workload (e.g.
    Smallbank) for each probe; omitted, probes use uniform payments.
    ``payment_budget`` bounds the payments injected per probe: very
    high-rate (overload-detection) probes shrink their windows so the
    search's wall-clock cost stays proportional to system capacity, not
    to the offered rate.

    ``max_probes`` caps the total number of probes across all search
    phases (doubling, walk-down, refinement) — the primary wall-clock
    knob for smoke-scale CI runs.

    ``reuse_state`` relaxes the fresh-system-per-probe rule where the
    invariant allows: a probe whose system *quiesced* — it passed the
    latency envelope AND (almost) every injected payment confirmed before
    the drain ended — leaves no backlog behind, so the next probe may
    continue on it, warm.  A probe that fails, or passes with residual
    in-flight payments (which would leak confirmations into the next
    probe's measured window and inflate its throughput), poisons its
    system; it is discarded and the next probe starts fresh.  Off by
    default to preserve the paper's measurement procedure exactly.

    ``bracket`` — an estimated ``(low_hint, high_hint)`` range believed to
    contain the peak (e.g. from :mod:`repro.bench.estimate`) — replaces
    the cold doubling phase with two probes: ``low_hint`` (expected to
    pass) and ``high_hint`` (expected to fail), after which refinement
    bisects between them.  A wrong hint degrades gracefully: a passing
    ``high_hint`` resumes doubling above it, a failing ``low_hint`` falls
    into the standard walk-down.  ``start_rate`` is ignored when a
    bracket is supplied.

    ``probe_runner(rate, duration, warmup, fresh)`` replaces the
    build-and-measure cycle — the hook the sharded engine
    (:class:`repro.sim.shard.ShardedOpenLoop`) plugs in.  ``fresh``
    encodes the same warm-reuse decision the serial path makes with its
    one-slot system cache, so both paths run identical probe sequences;
    ``factory``/``workload_factory`` are unused (``factory`` may be
    ``None``).
    """
    probes: List[RunResult] = []
    #: One-slot cache holding a system left quiesced by a passing probe.
    warm: List[Any] = []
    #: probe_runner mode: did the previous probe leave the (persistent,
    #: worker-held) system quiesced?  Mirrors the warm cache exactly.
    warm_ready = False

    def probe(rate: float) -> RunResult:
        nonlocal warm_ready
        probe_duration, probe_warmup = shrink_window(
            rate, duration, warmup, payment_budget
        )
        if probe_runner is not None:
            system = None
            fresh = not (reuse_state and warm_ready)
            result = probe_runner(rate, probe_duration, probe_warmup, fresh)
        else:
            system = warm.pop() if (reuse_state and warm) else factory()
            workload = (
                workload_factory(system) if workload_factory is not None else None
            )
            result = run_open_loop(
                system,
                rate=rate,
                duration=probe_duration,
                warmup=probe_warmup,
                seed=seed,
                workload=workload,
            )
        probes.append(result)
        quiesced = (
            reuse_state
            and _probe_ok(result, latency_envelope)
            and result.injected - result.confirmed
            <= max(16, result.injected // 100)
        )
        if probe_runner is not None:
            warm_ready = quiesced
        elif quiesced:
            warm.append(system)
        return result

    def budget_left() -> bool:
        return max_probes is None or len(probes) < max_probes

    def index_of(result: RunResult) -> int:
        """Position of ``result`` in the probe history (identity, not
        value equality — two probes can measure identical numbers)."""
        return next(i for i, p in enumerate(probes) if p is result)

    best: Optional[RunResult] = None
    failing: Optional[RunResult] = None
    rate = start_rate
    skip_doubling = False
    if bracket is not None:
        low_hint, high_hint = bracket
        if not (0.0 < low_hint < high_hint):
            raise ValueError(
                f"bracket must satisfy 0 < low < high, got {bracket!r}"
            )
        # Estimated-bracket phase: one probe at each hint.  When the
        # estimate is right this replaces the whole doubling ladder.
        rate = low_hint
        if budget_left():
            result = probe(low_hint)
            if _probe_ok(result, latency_envelope):
                best = result
                rate = high_hint
                if budget_left():
                    result = probe(high_hint)
                    if _probe_ok(result, latency_envelope):
                        # Estimate too low: resume doubling above the hint.
                        best = result
                        rate = high_hint * 2.0
                    else:
                        failing = result
                        skip_doubling = True
            # else: the low hint already saturates — fall through with
            # best None, entering the standard walk-down from low_hint.
    if not skip_doubling and (best is not None or bracket is None):
        for _ in range(max_doublings):
            if not budget_left():
                break
            result = probe(rate)
            if _probe_ok(result, latency_envelope):
                best = result
                rate *= 2.0
            else:
                failing = result
                break
    if best is None:
        # Even the starting rate saturates: walk down instead.
        while rate > 1.0 and budget_left():
            rate /= 2.0
            result = probe(rate)
            if _probe_ok(result, latency_envelope):
                best = result
                break
        if best is None:
            if not probes:
                # A zero probe budget (or a start rate already <= 1)
                # never measured anything; there is no plateau to report.
                raise ValueError(
                    "find_peak ran no probes: max_probes must allow at "
                    f"least one probe (got {max_probes}) and start_rate "
                    f"must exceed 1.0 (got {start_rate})"
                )
            # Report the saturated plateau as the achievable rate.  Every
            # probe in the history failed; report the *best-measured*
            # plateau, not the last probe — under ``reuse_state`` the last
            # walk-down probe can be poisoned by an earlier overload probe
            # and read far below the true plateau.
            winner = max(range(len(probes)), key=lambda i: probes[i].achieved)
            plateau = probes[winner]
            return PeakResult(
                plateau.achieved, plateau.latency, probes,
                peak_probe_index=winner,
            )
        # The last failing probe brackets the bisection from above.  Under
        # a tight ``max_probes`` the history can be a single passing probe
        # (e.g. max_doublings=0), in which case there is no upper bracket
        # and refinement is skipped.
        failing = probes[-2] if len(probes) >= 2 else None
    if failing is not None:
        low, high = best.offered, failing.offered
        for _ in range(refine_steps):
            if not budget_left():
                break
            mid = (low + high) / 2.0
            result = probe(mid)
            if _probe_ok(result, latency_envelope):
                best = result
                low = mid
            else:
                high = mid
    return PeakResult(
        best.achieved, best.latency, probes, peak_probe_index=index_of(best)
    )
