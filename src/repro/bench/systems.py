"""Standard system builders for benchmarks and experiments.

One factory per evaluated system (Astro I, Astro II, BFT-SMaRt baseline),
with the paper's defaults: EU WAN placement, t2.medium-like resources,
batches of 256, N = 3f+1.

The Astro builders construct their WAN model with ``pair_streams=True``:
each (src, dst) pair draws its latency jitter from an independent
deterministic stream, which makes measured histories a pure function of
scenario + seed regardless of global send interleaving — the property
intra-simulation sharding (:mod:`repro.sim.shard`) relies on, applied to
the serial engine too so ``REPRO_SIM_SHARDS=1/2/4`` are byte-identical.
Same jitter distribution as before, different draws, so figure results
shift within measurement noise relative to the shared-RNG sampling.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from ..core.config import AstroConfig
from ..core.system import Astro1System, Astro2System
from ..consensus.config import BftConfig
from ..consensus.system import BftSystem
from ..sim.latency import europe_wan
from ..workloads.base import resolve_workload_name, workload_genesis

__all__ = ["build_astro1", "build_astro2", "build_bft", "SYSTEM_BUILDERS",
           "client_ids_of", "validate_systems", "resolve_credit_coalesce",
           "scaled_batch_delay", "CREDIT_COALESCE_AUTO_MIN_N"]

#: Spenders per replica in microbenchmarks; enough to spread load over
#: every representative without bloating per-client state.
CLIENTS_PER_REPLICA = 4


def scaled_batch_delay(num_replicas: int) -> float:
    """Batch window growing with deployment size.

    With client load spread over N representatives, each representative's
    share shrinks as 1/N; a fixed window would produce single-payment
    batches at large N and destroy the amortization §VI-A relies on.
    Growing the window keeps batches meaningful and matches the paper's
    observation that Astro latencies rise to 400–500 ms at N=100.
    """
    return 0.05 * max(1.0, num_replicas / 12.0)


#: Deployment size at which an *unset* ``REPRO_CREDIT_COALESCE`` flips to
#: the auto window.  Below it coalescing saves little (few CREDIT targets
#: per window) and per-delivery unicasts stay byte-identical to previous
#: releases; at N ≳ 50 the CREDIT fan-in dominates NIC time and the
#: envelope-level bundling is measured safe (cert parity is
#: golden-tested), so large Fig. 3 cells get it by default.
CREDIT_COALESCE_AUTO_MIN_N = 50


def resolve_credit_coalesce(
    num_replicas: int, value: Optional[str] = None
) -> float:
    """Resolve the ``REPRO_CREDIT_COALESCE`` knob to a window in seconds.

    * unset — per-delivery CREDIT unicasts below
      :data:`CREDIT_COALESCE_AUTO_MIN_N` replicas, the ``auto`` window at
      or above it;
    * ``0`` / ``off`` — per-delivery CREDIT unicasts (the default
      protocol behavior at any size, byte-identical to previous
      releases);
    * a float — that many seconds of cross-delivery transport coalescing
      (:attr:`~repro.core.config.AstroConfig.credit_coalesce_delay`);
    * ``auto`` — one batch window (:func:`scaled_batch_delay`): every
      representative broadcasts about one batch per window, so each
      CREDIT bundle carries ~N per-delivery sub-batches — the paper's
      2-level amortization extended across a full batch round at the
      envelope level (sub-batch content and digests stay per-delivery).
    """
    raw = value if value is not None else os.environ.get(
        "REPRO_CREDIT_COALESCE"
    )
    if raw is None:
        if num_replicas >= CREDIT_COALESCE_AUTO_MIN_N:
            return scaled_batch_delay(num_replicas)
        return 0.0
    raw = raw.strip().lower()
    if raw in ("", "0", "off", "none"):
        return 0.0
    if raw == "auto":
        return scaled_batch_delay(num_replicas)
    try:
        delay = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CREDIT_COALESCE must be seconds >= 0, 'auto' or "
            f"'off'; got {raw!r}"
        ) from None
    if delay < 0:
        raise ValueError(
            f"REPRO_CREDIT_COALESCE must be seconds >= 0, 'auto' or "
            f"'off'; got {raw!r}"
        )
    return delay


def _install_adversary_kwarg(system: Any, adversary: Any, seed: int) -> Any:
    """Shared ``adversary=`` handling for the Astro builders.

    ``adversary`` is an attack name or spec dict for
    :func:`repro.adversary.install_adversary` (imported lazily — benign
    builds never load the adversary subsystem).  Installation happens at
    construction time with no scheduler event unless the spec carries a
    future ``at``, so sharded workers building the same system get
    byte-identical event streams.
    """
    if adversary is not None:
        from ..adversary import install_adversary

        install_adversary(system, adversary, seed=seed)
    return system


def _bench_genesis(num_clients: int) -> Dict[Any, int]:
    """Genesis for the benchmark builders, workload-aware.

    The balance regime must match the demand distribution the runner
    will resolve from the same ``REPRO_WORKLOAD`` knob (tight merchants
    under ``merchant``, ample balances otherwise); with the knob unset
    this is exactly ``uniform_genesis(num_clients)``.
    """
    return workload_genesis(resolve_workload_name(), num_clients)


def build_astro1(
    num_replicas: int,
    seed: int = 0,
    clients_per_replica: int = CLIENTS_PER_REPLICA,
    config: Optional[AstroConfig] = None,
    adversary: Any = None,
) -> Astro1System:
    genesis = _bench_genesis(num_replicas * clients_per_replica)
    if config is None:
        config = AstroConfig(
            num_replicas=num_replicas,
            batch_delay=scaled_batch_delay(num_replicas),
        )
    system = Astro1System(
        num_replicas=num_replicas,
        genesis=genesis,
        config=config,
        seed=seed,
        latency=europe_wan(
            num_replicas + len(genesis) + 64, seed=seed, pair_streams=True
        ),
    )
    return _install_adversary_kwarg(system, adversary, seed)


def build_astro2(
    num_replicas: int,
    num_shards: int = 1,
    seed: int = 0,
    clients_per_replica: int = CLIENTS_PER_REPLICA,
    config: Optional[AstroConfig] = None,
    credit_coalesce_delay: Optional[float] = None,
    track_kinds: bool = False,
    adversary: Any = None,
) -> Astro2System:
    """Standard Astro II deployment.

    ``credit_coalesce_delay`` sets the cross-delivery CREDIT coalescing
    window explicitly; when omitted it resolves from the
    ``REPRO_CREDIT_COALESCE`` environment knob (default: off).  An
    explicit ``config`` wins over both — callers constructing their own
    config control every knob.  ``track_kinds`` enables the network's
    per-message-class counters (CREDIT message accounting in perf tests).
    """
    total = num_replicas * num_shards
    genesis = _bench_genesis(total * clients_per_replica)
    if config is None:
        if credit_coalesce_delay is None:
            credit_coalesce_delay = resolve_credit_coalesce(num_replicas)
        config = AstroConfig(
            num_replicas=num_replicas,
            num_shards=num_shards,
            batch_delay=scaled_batch_delay(num_replicas),
            credit_coalesce_delay=credit_coalesce_delay,
        )
    system = Astro2System(
        num_replicas=num_replicas,
        num_shards=num_shards,
        genesis=genesis,
        config=config,
        seed=seed,
        track_kinds=track_kinds,
        latency=europe_wan(
            total + len(genesis) + 64, seed=seed, pair_streams=True
        ),
    )
    return _install_adversary_kwarg(system, adversary, seed)


def build_bft(
    num_replicas: int,
    seed: int = 0,
    clients_per_replica: int = CLIENTS_PER_REPLICA,
    config: Optional[BftConfig] = None,
) -> BftSystem:
    genesis = _bench_genesis(num_replicas * clients_per_replica)
    return BftSystem(
        num_replicas=num_replicas,
        genesis=genesis,
        config=config,
        seed=seed,
        latency=europe_wan(num_replicas + len(genesis) + 64, seed=seed),
    )


SYSTEM_BUILDERS: Dict[str, Callable[..., Any]] = {
    "astro1": build_astro1,
    "astro2": build_astro2,
    "bft": build_bft,
}


def validate_systems(systems: Any) -> List[str]:
    """Validate a figure entry point's ``systems`` argument.

    Figures assemble their results by zipping ``systems`` against
    per-system job results, so a duplicate name would silently overwrite
    one system's row with another's and an unknown name would surface as
    a bare ``KeyError`` deep inside job enumeration.  Fail up front,
    naming the allowed systems.
    """
    names = list(systems)
    allowed = sorted(SYSTEM_BUILDERS)
    unknown = [name for name in names if name not in SYSTEM_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown system(s) {unknown!r}: allowed systems are {allowed}"
        )
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ValueError(
            f"duplicate system name(s) {duplicates!r}: results are keyed "
            f"by system, so each of {allowed} may appear at most once"
        )
    if not names:
        raise ValueError(f"systems must name at least one of {allowed}")
    return names


def client_ids_of(system: Any) -> List:
    """The client population of a system built by the factories above."""
    return sorted(system.genesis, key=repr)
