"""Open-loop measurement runs: offered rate in, throughput/latency out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..sim.metrics import LatencyRecorder, LatencySummary, ThroughputMeter
from ..workloads.base import make_workload, resolve_workload_name
from ..workloads.drivers import OpenLoopDriver
from .systems import client_ids_of

__all__ = ["RunResult", "run_open_loop", "setup_open_loop", "finish_open_loop"]


@dataclass
class RunResult:
    """Outcome of one measured open-loop window."""

    offered: float
    achieved: float
    latency: LatencySummary
    injected: int
    confirmed: int
    duration: float

    @property
    def goodput_ratio(self) -> float:
        """Achieved/offered — < 1 means the system is saturated."""
        if self.offered <= 0:
            return 0.0
        return self.achieved / self.offered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p95 = self.latency.p95 * 1e3 if self.latency.count else float("nan")
        return (
            f"<RunResult offered={self.offered:.0f}pps "
            f"achieved={self.achieved:.0f}pps p95={p95:.0f}ms>"
        )


def setup_open_loop(
    system: Any,
    rate: float,
    duration: float,
    warmup: float,
    workload: Optional[Any] = None,
    seed: int = 0,
    recorder: Optional[LatencyRecorder] = None,
) -> Tuple[OpenLoopDriver, ThroughputMeter, LatencyRecorder, float, float]:
    """Install the standard open-loop measurement on ``system``.

    Returns ``(driver, meter, recorder, window_start, window_end)``.
    Factored out of :func:`run_open_loop` so the sharded engine
    (:mod:`repro.sim.shard`) replicates the *exact* serial measurement
    discipline in every worker — same workload construction, meter
    bucket width, and observation window.  A caller-supplied
    ``recorder`` must expose ``record(submitted_at, completed_at)``; its
    window attributes are (re)pinned here.
    """
    if workload is None:
        # ``REPRO_WORKLOAD`` selects the demand distribution; unset
        # resolves to ``uniform``, which constructs exactly the
        # pre-knob ``UniformWorkload(clients, seed=seed)`` default
        # (golden-pinned).  Resolution happens here — inside the
        # function sharded workers replicate — so serial and sharded
        # runs agree on the workload by construction.
        workload = make_workload(
            resolve_workload_name(), client_ids_of(system), seed=seed
        )
    # The meter only counts whole buckets inside the window, so the bucket
    # width must shrink with the window: a 0.4s probe window against fixed
    # 0.25s buckets can contain zero aligned buckets and report a rate of
    # exactly 0 — which a peak search misreads as total saturation.
    meter = ThroughputMeter(bucket_width=min(0.25, duration / 4))
    window_start = system.sim.now + warmup
    window_end = window_start + duration
    if recorder is None:
        recorder = LatencyRecorder(window_start, window_end)
    else:
        recorder.window_start = window_start
        recorder.window_end = window_end
    driver = OpenLoopDriver(
        system,
        workload,
        rate=rate,
        duration=warmup + duration,
        start=system.sim.now,
        meter=meter,
        recorder=recorder,
    )
    return driver, meter, recorder, window_start, window_end


def finish_open_loop(system: Any, driver: OpenLoopDriver) -> None:
    """Detach a finished run's observer from ``system``.

    When the caller reuses the system for a later run (peak-search warm
    probes), a stale hook would keep counting confirmations into this
    driver's meters and double-count them against the next run's.
    """
    remove_hook = getattr(system, "remove_confirm_hook", None)
    if remove_hook is not None:
        remove_hook(driver._on_confirm)


def run_open_loop(
    system: Any,
    rate: float,
    duration: float = 2.0,
    warmup: float = 1.0,
    drain: float = 0.5,
    workload: Optional[Any] = None,
    seed: int = 0,
) -> RunResult:
    """Drive ``system`` at ``rate`` payments/sec; measure the steady window.

    The measured window is [warmup, warmup+duration); the run continues
    ``drain`` seconds longer so confirmations of late submissions inside
    the window are still observed.
    """
    driver, meter, recorder, window_start, window_end = setup_open_loop(
        system, rate, duration, warmup, workload=workload, seed=seed
    )
    system.run(window_end + drain)
    finish_open_loop(system, driver)
    achieved = meter.rate(window_start, window_end)
    return RunResult(
        offered=rate,
        achieved=achieved,
        latency=recorder.summary(),
        injected=driver.injected,
        confirmed=driver.confirmed,
        duration=duration,
    )
