"""Scenario-level parallel execution for benchmark sweeps.

The paper's evaluation is a grid of *independent* simulations — Fig. 3
alone sweeps N=4..100 across three systems — yet a CPython event loop can
only run one simulation per process.  This module turns each benchmark
from "inline loop that builds systems and measures" into three phases:

1. **enumerate** — the figure module describes every cell of its sweep as
   a picklable :class:`ScenarioJob` (or an ordered
   :class:`ScenarioPipeline` when cells feed each other, e.g. Fig. 3's
   cross-size warm start);
2. **execute** — :func:`execute` runs the descriptors on a backend:
   in-process serial (the default, byte-for-byte identical to the old
   inline loops) or a ``multiprocessing`` pool selected with the
   ``REPRO_BENCH_JOBS`` environment variable / ``jobs=`` argument;
3. **assemble** — results come back in submission order (never in
   completion order), so the figure module rebuilds its tables exactly as
   before.

Only descriptors cross the process boundary on the way in, and only
small result dataclasses (:class:`~repro.bench.runner.RunResult`,
:class:`~repro.bench.peak.PeakResult`, plain tuples/floats) on the way
out — workers rebuild simulators locally from the descriptor.

Determinism is load-bearing (see README "Determinism"): every job carries
its own explicit seed, fixed at *enumeration* time.  Jobs that need
independent entropy derive it with :func:`derive_seed`, a pure function
of ``(root seed, job key)`` — never from a shared RNG consumed in
execution order — so results are identical regardless of worker count,
scheduling, or completion order.  The figure enumerators pin the caller's
seed on every cell (the paper's methodology measures each cell under the
same conditions), which also keeps the serial backend's output identical
to the pre-refactor inline loops.

Every :func:`execute` call with a ``label`` records its wall-clock
seconds into a process-global sweep log (:func:`sweep_report`); the
benchmark suite writes the log next to ``BENCH_perf.json`` so the
harness's own speed is part of the tracked perf trajectory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ScenarioJob",
    "ScenarioPipeline",
    "SweepTiming",
    "available_memory_bytes",
    "derive_seed",
    "execute",
    "parse_count_env",
    "register_carry",
    "register_executor",
    "replace_params",
    "reset_sweep_log",
    "resolve_jobs",
    "run_unit",
    "sweep_report",
    "usable_cpus",
]

#: Environment variable selecting the backend: unset/"1" = serial (the
#: default), an integer > 1 = process pool of that many workers,
#: "auto"/"0" = one worker per available CPU.
JOBS_ENV = "REPRO_BENCH_JOBS"


# ---------------------------------------------------------------------------
# Job descriptors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioJob:
    """One independent simulation, described by picklable values only.

    ``kind`` names an executor registered with :func:`register_executor`
    (the standard benchmark executors live in :mod:`repro.bench.jobs`);
    ``params`` are the executor's keyword arguments; ``seed`` is the
    job's explicit entropy, fixed at enumeration time; ``tag`` is an
    opaque label the enumerator uses to reassemble results (it is
    returned untouched, never interpreted).
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    tag: Any = None


@dataclass(frozen=True)
class ScenarioPipeline:
    """An ordered chain of jobs with a data dependency between stages.

    Jobs run sequentially inside one worker; between stages the ``carry``
    rule (registered with :func:`register_carry`) rewrites the next job's
    params from the previous job's result — e.g. Fig. 3 warm-starts each
    size's peak search from the previous size's peak.  Pipelines for
    *different* systems have no dependency and run concurrently.
    """

    jobs: Tuple[ScenarioJob, ...]
    carry: Optional[str] = None


#: A unit of scheduling: one job, or one pipeline of dependent jobs.
WorkUnit = Union[ScenarioJob, ScenarioPipeline]


def replace_params(job: ScenarioJob, **updates: Any) -> ScenarioJob:
    """A copy of ``job`` with ``updates`` merged into its params (carry
    rules use this to rewrite the next stage from the previous result)."""
    return dataclasses.replace(job, params={**job.params, **updates})


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

_EXECUTORS: Dict[str, Callable[..., Any]] = {}
_CARRY_RULES: Dict[str, Callable[[Any, ScenarioJob], ScenarioJob]] = {}


def register_executor(kind: str):
    """Register ``fn(seed=..., **params)`` as the executor for ``kind``."""

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        _EXECUTORS[kind] = fn
        return fn

    return decorator


def register_carry(name: str):
    """Register ``fn(prev_result, next_job) -> ScenarioJob`` as a carry rule."""

    def decorator(
        fn: Callable[[Any, ScenarioJob], ScenarioJob]
    ) -> Callable[[Any, ScenarioJob], ScenarioJob]:
        _CARRY_RULES[name] = fn
        return fn

    return decorator


def _ensure_executors_loaded() -> None:
    """Import the standard executor registrations.

    Under the ``spawn`` start method a worker process starts from a clean
    interpreter, so registration-by-import must be repeated there; under
    ``fork`` this is a no-op.
    """
    from . import jobs  # noqa: F401  (import side effect: registration)


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------


def derive_seed(root_seed: int, *key: Any) -> int:
    """Spawn an independent per-job seed from ``(root_seed, key)``.

    A pure hash of the job's stable identity — **not** a draw from a
    shared RNG stream — so the value depends only on the key, never on
    how many jobs were enumerated before it, which worker runs it, or
    the order results come back.  Use one structural key per job (e.g.
    ``derive_seed(seed, "fig3", system, size)``).
    """
    material = repr((int(root_seed),) + tuple(key)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_unit(unit: WorkUnit) -> Any:
    """Execute one work unit in this process.

    Returns the executor's result for a :class:`ScenarioJob`, or the list
    of per-stage results for a :class:`ScenarioPipeline`.  This is the
    worker entry point for the process-pool backend and the whole story
    for the serial backend.
    """
    _ensure_executors_loaded()
    if isinstance(unit, ScenarioPipeline):
        carry = _CARRY_RULES[unit.carry] if unit.carry is not None else None
        results: List[Any] = []
        previous: Any = None
        for index, job in enumerate(unit.jobs):
            if carry is not None and index > 0:
                job = carry(previous, job)
            previous = _run_job(job)
            results.append(previous)
        return results
    return _run_job(unit)


def _run_job(job: ScenarioJob) -> Any:
    try:
        executor = _EXECUTORS[job.kind]
    except KeyError:
        known = ", ".join(sorted(_EXECUTORS)) or "<none>"
        raise KeyError(
            f"no executor registered for job kind {job.kind!r} (known: {known})"
        ) from None
    return executor(seed=job.seed, **job.params)


def parse_count_env(env_var: str, auto_value: Callable[[], int]) -> int:
    """Parse a worker-count environment variable.

    The shared grammar of ``REPRO_BENCH_JOBS`` and ``REPRO_SIM_SHARDS``:
    unset/``""``/``"1"`` → 1, ``"0"``/``"auto"`` → ``auto_value()``,
    else a positive integer.
    """
    raw = os.environ.get(env_var, "1").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("0", "auto"):
        return auto_value()
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(
            f"{env_var} must be a positive integer, 0, or 'auto'; got {raw!r}"
        ) from None
    if count < 1:
        raise ValueError(f"{env_var} must be >= 1, got {count}")
    return count


def usable_cpus() -> int:
    """CPUs actually available to this process.

    Respects CPU affinity masks / cgroup cpusets where the platform
    exposes them (``auto`` in a container pinned to 4 of 64 host cores
    must mean 4, not 64 — worker memory scales with ``jobs × N²``).
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def _resolve_jobs_info(jobs: Optional[int] = None) -> Tuple[int, bool]:
    """``(worker count, came from auto-detection)``.

    The boolean is True only when the count was inferred from the CPU
    count (``REPRO_BENCH_JOBS=auto``/``0``) — the one case where the
    memory-aware cap may shrink it.  An explicit worker count, argument
    or env, is always honored verbatim.
    """
    if jobs is None:
        auto = False

        def auto_jobs() -> int:
            nonlocal auto
            auto = True
            # The two parallelism axes cannot nest: pool workers are
            # daemonic, so a job running inside one falls back to the
            # serial engine (see repro.bench.jobs).  When the operator
            # asked for intra-simulation sharding, ``auto`` therefore
            # hands the whole machine to the shards (serial in-process
            # execution, one sharded cell at a time) instead of spawning
            # a pool in which sharding would silently disable itself.
            from ..sim.shard import resolve_shards

            if resolve_shards() > 1:
                return 1
            return usable_cpus()

        return parse_count_env(JOBS_ENV, auto_jobs), auto
    if jobs < 1:
        raise ValueError(f"worker count must be >= 1, got {jobs}")
    return jobs, False


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_BENCH_JOBS``, else 1."""
    return _resolve_jobs_info(jobs)[0]


def available_memory_bytes() -> Optional[int]:
    """Memory currently available to new processes, or None if unknown.

    Reads ``MemAvailable`` from ``/proc/meminfo`` (Linux; the platform
    every CI/large-box run of this suite uses).  Elsewhere returns None,
    which disables the memory-aware cap.
    """
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def _memory_capped_workers(workers: int, per_job_bytes: int) -> int:
    """Shrink an auto-detected worker count to what memory can hold.

    Worker memory is ``jobs × O(N²)`` message/xlog state at large N, so
    ``auto`` on a many-core box must not schedule more simultaneous
    simulations than RAM fits.  Leaves 20% headroom; never returns < 1.
    """
    available = available_memory_bytes()
    if available is None or per_job_bytes <= 0:
        return workers
    fit = int(available * 0.8 // per_job_bytes)
    return max(1, min(workers, fit))


@dataclass(frozen=True)
class SweepTiming:
    """Wall-clock record of one labelled :func:`execute` call."""

    label: str
    seconds: float
    units: int
    jobs: int
    backend: str
    #: Per-unit wall-clock breakdown: ``[{"tag": ..., "seconds": ...}]``
    #: in submission order, measured inside the worker — the cell-level
    #: skew record a sweep needs to diagnose straggler cells.
    cells: Optional[List[Dict[str, Any]]] = None


def _cell_label(unit: "WorkUnit") -> Any:
    """JSON-ready label for a unit's timing entry (tags are opaque, so
    anything beyond primitives is rendered via repr)."""
    if isinstance(unit, ScenarioPipeline):
        return repr(tuple(job.tag for job in unit.jobs))
    tag = unit.tag
    if isinstance(tag, (str, int, float, bool)) or tag is None:
        return tag
    return repr(tag)


def _cell_entry(
    unit: "WorkUnit", seconds: float, budgets: Optional[Dict[Any, float]]
) -> Dict[str, Any]:
    """One sweep-log cell record, with its budget when the enumerator
    declared one for this unit's tag (pipelines have no per-cell tag, so
    budgets apply to plain jobs only)."""
    entry: Dict[str, Any] = {
        "tag": _cell_label(unit),
        "seconds": round(seconds, 4),
    }
    if budgets and not isinstance(unit, ScenarioPipeline):
        budget = budgets.get(unit.tag)
        if budget is not None:
            entry["budget_seconds"] = round(budget, 2)
    return entry


def _run_unit_timed(unit: "WorkUnit") -> Tuple[Any, float]:
    """Worker entry point recording the unit's own wall-clock seconds."""
    start = time.perf_counter()
    result = run_unit(unit)
    return result, time.perf_counter() - start


#: Process-global sweep log (parent process only; workers never append).
_SWEEP_LOG: List[SweepTiming] = []


def sweep_report() -> List[Dict[str, Any]]:
    """The sweep log as JSON-ready dicts, in execution order."""
    return [dataclasses.asdict(timing) for timing in _SWEEP_LOG]


def reset_sweep_log() -> None:
    _SWEEP_LOG.clear()


def _pool_context():
    """The platform's default multiprocessing context.

    Linux defaults to ``fork`` (cheap, inherits the executor registries);
    macOS and Windows default to ``spawn``, which CPython chose for
    fork-safety there — workers re-import :mod:`repro.bench.jobs` via
    :func:`_ensure_executors_loaded`, so both start methods resolve job
    kinds and produce identical results.
    """
    return multiprocessing.get_context()


def execute(
    units: Sequence[WorkUnit],
    jobs: Optional[int] = None,
    label: Optional[str] = None,
    per_job_bytes: Optional[int] = None,
    budgets: Optional[Dict[Any, float]] = None,
) -> List[Any]:
    """Run work units on the selected backend; results in submission order.

    ``jobs=None`` reads ``REPRO_BENCH_JOBS`` (default: 1 = serial, the
    pre-refactor behavior).  With ``jobs > 1`` the units run on a
    ``multiprocessing`` pool; ``pool.map`` reassembles results by
    submission index, so completion order never shows through.  A
    ``label`` records the sweep's wall-clock seconds — including a
    per-unit breakdown timed inside the workers — in the process-global
    log (:func:`sweep_report`).

    ``per_job_bytes`` is the enumerator's estimate of one worker's memory
    footprint (e.g. :func:`repro.bench.estimate.job_memory_bytes` of the
    sweep's largest N).  It caps **auto-detected** worker counts
    (``REPRO_BENCH_JOBS=auto``) to what available memory fits — worker
    memory is ``jobs × O(N²)`` at large N, so core count alone is the
    wrong ceiling on many-core boxes.  Explicit counts are never capped.

    ``budgets`` maps unit tags to wall-clock ceilings in seconds (see
    :mod:`repro.bench.budget`); a matching cell's timing entry gains a
    ``"budget_seconds"`` field so the recorded sweep log carries its own
    pass/fail criterion.  Budgets never alter execution — the checker
    audits the artifact after the fact.
    """
    _ensure_executors_loaded()
    units = list(units)
    workers, auto = _resolve_jobs_info(jobs)
    if auto and per_job_bytes:
        workers = _memory_capped_workers(workers, per_job_bytes)
    workers = min(workers, max(len(units), 1))
    start = time.perf_counter()
    if workers <= 1:
        backend = "serial"
        timed = [_run_unit_timed(unit) for unit in units]
    else:
        context = _pool_context()
        backend = f"process-pool({workers}, {context.get_start_method()})"
        with context.Pool(processes=workers) as pool:
            timed = pool.map(_run_unit_timed, units, chunksize=1)
    results = [result for result, _seconds in timed]
    if label is not None:
        _SWEEP_LOG.append(
            SweepTiming(
                label=label,
                seconds=time.perf_counter() - start,
                units=len(units),
                jobs=workers,
                backend=backend,
                cells=[
                    _cell_entry(unit, seconds, budgets)
                    for unit, (_result, seconds) in zip(units, timed)
                ],
            )
        )
    return results
