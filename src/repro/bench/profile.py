"""cProfile entry point over a standard Astro II run.

The simulator's speed *is* reproduction capacity: every figure in the
paper comes out of the same schedule-deliver-execute cycle this profile
exercises.  Run it before and after touching any hot-path module::

    PYTHONPATH=src python -m repro.bench.profile
    PYTHONPATH=src python -m repro.bench.profile --rate 32000 --sort cumulative
    PYTHONPATH=src python -m repro.bench.profile --system astro1 --size 32
    PYTHONPATH=src python -m repro.bench.profile --size 32 --shards 2

Prints the achieved simulated-payments-per-wall-clock-second (the metric
``benchmarks/test_perf_regression.py`` guards), a phase breakdown
(crypto / network / scheduler / protocol / workload) so hot-path PRs can
cite where the time went, and the full profile table.  ``--shards N``
runs the probe on the intra-simulation sharded engine
(:mod:`repro.sim.shard`); the work then happens in worker processes, so
only wall-clock is reported (cProfile sees the coordinator only).
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import time
from typing import Any, Dict, Optional, Tuple

from .runner import RunResult, run_open_loop
from .systems import SYSTEM_BUILDERS

__all__ = ["standard_run", "phase_breakdown", "main"]

#: Defaults of the "standard Astro II run": N = 3f+1 = 4, EU WAN latency,
#: offered load high enough to keep every replica's settle pipeline busy
#: without saturating the simulated system.
DEFAULT_SYSTEM = "astro2"
DEFAULT_NUM_REPLICAS = 4
DEFAULT_RATE = 16_000.0
DEFAULT_DURATION = 2.0
DEFAULT_WARMUP = 0.5
DEFAULT_SEED = 2

#: Phase classification of profile rows, by source path.  Order matters:
#: first match wins (network before the catch-all sim prefix).
_PHASES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("crypto", ("/repro/crypto/",)),
    (
        "network",
        (
            "/repro/sim/network.py",
            "/repro/sim/resources.py",
            "/repro/sim/latency.py",
            "/repro/sim/node.py",
        ),
    ),
    ("scheduler", ("/repro/sim/events.py",)),
    (
        "protocol",
        ("/repro/core/", "/repro/brb/", "/repro/consensus/", "/repro/reconfig/"),
    ),
    ("workload", ("/repro/workloads/", "/repro/bench/")),
)


def standard_run(
    system_name: str = DEFAULT_SYSTEM,
    num_replicas: int = DEFAULT_NUM_REPLICAS,
    rate: float = DEFAULT_RATE,
    duration: float = DEFAULT_DURATION,
    warmup: float = DEFAULT_WARMUP,
    seed: int = DEFAULT_SEED,
    builder_kwargs: Optional[Dict[str, Any]] = None,
) -> tuple:
    """Build and drive one standard measurement run.

    Returns ``(result, wall_seconds, system)`` where ``result`` is the
    :class:`~repro.bench.runner.RunResult` of the open-loop window and
    ``system`` the driven deployment (message-kind counters live on its
    network).  ``builder_kwargs`` are forwarded to the system factory
    (e.g. ``credit_coalesce_delay``/``track_kinds`` for Astro II).
    """
    builder = SYSTEM_BUILDERS[system_name]
    system: Any = builder(num_replicas, seed=seed, **(builder_kwargs or {}))
    start = time.perf_counter()
    result: RunResult = run_open_loop(
        system, rate=rate, duration=duration, warmup=warmup, seed=seed
    )
    wall = time.perf_counter() - start
    return result, wall, system


def sharded_run(
    system_name: str,
    num_replicas: int,
    shards: int,
    rate: float = DEFAULT_RATE,
    duration: float = DEFAULT_DURATION,
    warmup: float = DEFAULT_WARMUP,
    seed: int = DEFAULT_SEED,
    builder_kwargs: Optional[Dict[str, Any]] = None,
) -> tuple:
    """The standard run on the intra-simulation sharded engine."""
    from ..sim.shard import ShardedOpenLoop

    spec = dict(system=system_name, size=num_replicas, seed=seed,
                builder_kwargs=builder_kwargs or None)
    with ShardedOpenLoop(spec, shards=shards) as cluster:
        # Build outside the timed window, like standard_run (which calls
        # the factory before starting its clock) — otherwise the sharded
        # pps would be understated by worker-side construction.
        cluster.prepare()
        start = time.perf_counter()
        result = cluster.probe(
            rate=rate, duration=duration, warmup=warmup, fresh=False, seed=seed
        )
        wall = time.perf_counter() - start
    return result, wall


def phase_breakdown(stats: pstats.Stats) -> Dict[str, float]:
    """Total in-function seconds per engine phase.

    Classifies every profiled function by its source path into crypto /
    network / scheduler / protocol / workload / other, so successive
    perf PRs can cite exactly which layer they moved.  Built-in heapq
    calls count as scheduler time (the calendar queue is the scheduler's
    data structure regardless of which module issues the push).
    """
    totals: Dict[str, float] = {name: 0.0 for name, _needles in _PHASES}
    totals["other"] = 0.0
    for (filename, _line, funcname), entry in stats.stats.items():
        tottime = entry[2]
        phase = "other"
        if filename == "~":
            if "heap" in funcname:
                phase = "scheduler"
        else:
            normalized = filename.replace(os.sep, "/")
            for name, needles in _PHASES:
                if any(needle in normalized for needle in needles):
                    phase = name
                    break
        totals[phase] += tottime
    return totals


def _print_phase_breakdown(stats: pstats.Stats) -> None:
    totals = phase_breakdown(stats)
    grand = sum(totals.values()) or 1.0
    print("[profile] phase breakdown (in-function seconds):")
    for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"[profile]   {name:<10} {seconds:7.3f}s  {100 * seconds / grand:5.1f}%")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description="cProfile a standard simulator run and report pay/wall-sec.",
    )
    parser.add_argument(
        "--system", choices=sorted(SYSTEM_BUILDERS), default=DEFAULT_SYSTEM
    )
    parser.add_argument("-n", "--num-replicas", "--size", type=int,
                        dest="num_replicas", default=DEFAULT_NUM_REPLICAS,
                        help="deployment size N (--size is an alias)")
    parser.add_argument("--shards", type=int, default=1,
                        help="run the probe on the intra-simulation sharded "
                             "engine with this many worker processes "
                             "(REPRO_SIM_SHARDS equivalent; Astro systems "
                             "only, disables cProfile)")
    parser.add_argument("--coalesce", default=None, metavar="SECONDS|auto",
                        help="astro2 only: cross-delivery CREDIT coalescing "
                             "window (AstroConfig.credit_coalesce_delay; "
                             "'auto' = one batch window).  Also enables "
                             "per-message-kind counters so the CREDIT "
                             "message count is reported alongside the "
                             "phase breakdown (serial runs only: with "
                             "--shards the counters live in worker "
                             "processes and kind accounting is "
                             "unavailable).  Default: the "
                             "REPRO_CREDIT_COALESCE environment knob.")
    parser.add_argument("--rate", type=float, default=DEFAULT_RATE,
                        help="offered payments/sec (simulated)")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--warmup", type=float, default=DEFAULT_WARMUP)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"],
                        help="pstats sort column")
    parser.add_argument("--limit", type=int, default=30,
                        help="rows of the profile table to print")
    parser.add_argument("--no-profile", action="store_true",
                        help="timing only (no cProfile overhead)")
    args = parser.parse_args(argv)

    builder_kwargs: Dict[str, Any] = {}
    if args.coalesce is not None:
        if args.system != "astro2":
            parser.error("--coalesce only applies to astro2 (CREDIT "
                         "messages exist only in the dependency protocol)")
        from .systems import resolve_credit_coalesce

        builder_kwargs = dict(
            credit_coalesce_delay=resolve_credit_coalesce(
                args.num_replicas, args.coalesce
            ),
            # Kind counters live in worker processes under --shards and
            # can't be read back; don't pay the per-send accounting there.
            track_kinds=args.shards <= 1,
        )

    if args.shards > 1:
        from ..sim.shard import ShardingUnsupported

        # The simulation executes in shard worker processes; profiling
        # the coordinator would only show pipe waits.
        try:
            result, wall = sharded_run(
                args.system, args.num_replicas, args.shards, args.rate,
                args.duration, args.warmup, args.seed,
                builder_kwargs=builder_kwargs or None,
            )
        except ShardingUnsupported as exc:
            parser.error(f"--shards {args.shards}: {exc}")
        profiler = None
        system = None
    else:
        run = lambda: standard_run(  # noqa: E731 - tiny closure over args
            args.system, args.num_replicas, args.rate, args.duration,
            args.warmup, args.seed, builder_kwargs=builder_kwargs or None,
        )
        if args.no_profile:
            result, wall, system = run()
            profiler = None
        else:
            profiler = cProfile.Profile()
            profiler.enable()
            result, wall, system = run()
            profiler.disable()

    pps = result.confirmed / wall if wall > 0 else float("inf")
    shard_note = f" shards={args.shards}" if args.shards > 1 else ""
    coalesce = builder_kwargs.get("credit_coalesce_delay")
    coalesce_note = f" coalesce={coalesce:.3f}s" if coalesce else ""
    print(
        f"[profile] system={args.system} N={args.num_replicas}{shard_note}"
        f"{coalesce_note} rate={args.rate:.0f}/s window={args.duration}s"
    )
    if system is not None and system.network.stats.track_kinds:
        by_kind = system.network.stats.by_kind
        credits = by_kind.get("CreditMessage", 0) + by_kind.get("CreditBundle", 0)
        print(f"[profile] CREDIT transport messages sent={credits} "
              f"(all kinds: {dict(sorted(by_kind.items()))})")
    elif args.shards > 1 and args.coalesce is not None:
        print("[profile] (message-kind accounting unavailable with --shards: "
              "the counters live in the shard worker processes)")
    print(
        f"[profile] confirmed={result.confirmed} wall={wall:.3f}s "
        f"simulated-payments/wall-clock-second={pps:,.0f}"
    )
    if profiler is not None:
        stats = pstats.Stats(profiler)
        _print_phase_breakdown(stats)
        stats.sort_stats(args.sort).print_stats(args.limit)
    elif args.shards > 1:
        print("[profile] (phase breakdown unavailable: work ran in shard "
              "worker processes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
