"""cProfile entry point over a standard Astro II run.

The simulator's speed *is* reproduction capacity: every figure in the
paper comes out of the same schedule-deliver-execute cycle this profile
exercises.  Run it before and after touching any hot-path module::

    PYTHONPATH=src python -m repro.bench.profile
    PYTHONPATH=src python -m repro.bench.profile --rate 32000 --sort cumulative
    PYTHONPATH=src python -m repro.bench.profile --system astro1 -n 10

Prints the achieved simulated-payments-per-wall-clock-second (the metric
``benchmarks/test_perf_regression.py`` guards) followed by the profile
table.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time
from typing import Any

from .runner import RunResult, run_open_loop
from .systems import SYSTEM_BUILDERS

__all__ = ["standard_run", "main"]

#: Defaults of the "standard Astro II run": N = 3f+1 = 4, EU WAN latency,
#: offered load high enough to keep every replica's settle pipeline busy
#: without saturating the simulated system.
DEFAULT_SYSTEM = "astro2"
DEFAULT_NUM_REPLICAS = 4
DEFAULT_RATE = 16_000.0
DEFAULT_DURATION = 2.0
DEFAULT_WARMUP = 0.5
DEFAULT_SEED = 2


def standard_run(
    system_name: str = DEFAULT_SYSTEM,
    num_replicas: int = DEFAULT_NUM_REPLICAS,
    rate: float = DEFAULT_RATE,
    duration: float = DEFAULT_DURATION,
    warmup: float = DEFAULT_WARMUP,
    seed: int = DEFAULT_SEED,
) -> tuple:
    """Build and drive one standard measurement run.

    Returns ``(result, wall_seconds)`` where ``result`` is the
    :class:`~repro.bench.runner.RunResult` of the open-loop window.
    """
    builder = SYSTEM_BUILDERS[system_name]
    system: Any = builder(num_replicas, seed=seed)
    start = time.perf_counter()
    result: RunResult = run_open_loop(
        system, rate=rate, duration=duration, warmup=warmup, seed=seed
    )
    wall = time.perf_counter() - start
    return result, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description="cProfile a standard simulator run and report pay/wall-sec.",
    )
    parser.add_argument(
        "--system", choices=sorted(SYSTEM_BUILDERS), default=DEFAULT_SYSTEM
    )
    parser.add_argument("-n", "--num-replicas", type=int,
                        default=DEFAULT_NUM_REPLICAS)
    parser.add_argument("--rate", type=float, default=DEFAULT_RATE,
                        help="offered payments/sec (simulated)")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--warmup", type=float, default=DEFAULT_WARMUP)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"],
                        help="pstats sort column")
    parser.add_argument("--limit", type=int, default=30,
                        help="rows of the profile table to print")
    parser.add_argument("--no-profile", action="store_true",
                        help="timing only (no cProfile overhead)")
    args = parser.parse_args(argv)

    run = lambda: standard_run(  # noqa: E731 - tiny closure over args
        args.system, args.num_replicas, args.rate, args.duration,
        args.warmup, args.seed,
    )
    if args.no_profile:
        result, wall = run()
        profiler = None
    else:
        profiler = cProfile.Profile()
        profiler.enable()
        result, wall = run()
        profiler.disable()

    pps = result.confirmed / wall if wall > 0 else float("inf")
    print(
        f"[profile] system={args.system} N={args.num_replicas} "
        f"rate={args.rate:.0f}/s window={args.duration}s"
    )
    print(
        f"[profile] confirmed={result.confirmed} wall={wall:.3f}s "
        f"simulated-payments/wall-clock-second={pps:,.0f}"
    )
    if profiler is not None:
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
