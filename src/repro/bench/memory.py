"""Resident memory of the account-state layer: dict vs array stores.

``python -m repro.bench.memory`` builds a deployment's worth of replica
account states (default: 4 replicas sharing one
:class:`~repro.core.interning.ClientInterner`) over populations of
10⁵–10⁶ clients and reports allocated bytes per account for

* the legacy dict-of-objects store
  (:class:`~repro.core.accounts.DictAccountState`), and
* the array-backed store (:class:`~repro.core.accounts.AccountState`,
  int64 slabs + interner, lazy sparse xlogs).

Sizes come from :mod:`tracemalloc` — requested allocation sizes, not
RSS, so numbers are stable across machines and allocator behavior.
Results merge into ``BENCH_perf.json`` under ``"memory"``.

``--check-max-bytes`` turns the run into a CI regression gate: the
array store's bytes/account at every measured population must stay
under the given ceiling.
"""

from __future__ import annotations

import argparse
import tracemalloc
from typing import Any, Dict, List, Optional, Sequence

from ..core.accounts import AccountState, DictAccountState
from ..core.interning import ClientInterner
from ..workloads.uniform import uniform_genesis
from .report import merge_perf_report, print_table

__all__ = ["measure_bytes_per_account", "run_memory_cells", "main"]

#: Deployment size of the measured replica group (Astro's N = 3f+1
#: minimum); the interner is shared across the group, as in a system.
DEFAULT_REPLICAS = 4

DEFAULT_CLIENTS = (100_000, 1_000_000)


def measure_bytes_per_account(
    store: str, num_clients: int, num_replicas: int = DEFAULT_REPLICAS
) -> float:
    """Allocated bytes per account for one replica group.

    ``store`` is ``"dict"`` (legacy per-client PyObjects) or ``"array"``
    (int64 slabs + shared interner).  The genesis mapping itself is
    built *before* tracing starts: it is workload input, not account
    state, and both stores would carry it equally.
    """
    genesis = uniform_genesis(num_clients)
    states: List[Any] = []
    tracemalloc.start()
    try:
        base, _ = tracemalloc.get_traced_memory()
        if store == "array":
            interner = ClientInterner(genesis)
            for _ in range(num_replicas):
                states.append(AccountState(genesis, interner=interner))
        elif store == "dict":
            for _ in range(num_replicas):
                states.append(DictAccountState(genesis))
        else:
            raise ValueError(
                f"store must be 'dict' or 'array'; got {store!r}"
            )
        traced, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return (traced - base) / (num_clients * num_replicas)


def run_memory_cells(
    clients: Sequence[int] = DEFAULT_CLIENTS,
    num_replicas: int = DEFAULT_REPLICAS,
    include_dict: bool = True,
) -> Dict[str, Any]:
    """Measure every population size; returns the report section."""
    cells = []
    for num_clients in clients:
        cell: Dict[str, Any] = {
            "num_clients": num_clients,
            "array_bytes_per_account": round(
                measure_bytes_per_account("array", num_clients, num_replicas),
                1,
            ),
        }
        if include_dict:
            cell["dict_bytes_per_account"] = round(
                measure_bytes_per_account("dict", num_clients, num_replicas),
                1,
            )
            cell["dict_over_array"] = round(
                cell["dict_bytes_per_account"]
                / cell["array_bytes_per_account"],
                2,
            )
        cells.append(cell)
    return {"num_replicas": num_replicas, "cells": cells}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.memory",
        description="Measure bytes/account of the account-state stores.",
    )
    parser.add_argument(
        "--clients",
        default=",".join(str(c) for c in DEFAULT_CLIENTS),
        help="comma-separated population sizes (default: 100000,1000000)",
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS,
        help="replicas per measured group (default: 4)",
    )
    parser.add_argument(
        "--skip-dict", action="store_true",
        help="measure only the array store (fast CI gate mode)",
    )
    parser.add_argument(
        "--check-max-bytes", type=float, default=None, metavar="BYTES",
        help="fail (exit 1) if the array store exceeds this many "
             "bytes/account at any measured population",
    )
    args = parser.parse_args(argv)
    clients = [int(c) for c in args.clients.split(",") if c.strip()]
    if not clients or any(c <= 0 for c in clients):
        parser.error(
            f"--clients must be positive integers; got {args.clients!r}"
        )

    section = run_memory_cells(
        clients, num_replicas=args.replicas, include_dict=not args.skip_dict
    )
    path = merge_perf_report({"memory": section})

    headers = ["clients", "array B/acct"]
    if not args.skip_dict:
        headers += ["dict B/acct", "dict/array"]
    rows = []
    for cell in section["cells"]:
        row = [cell["num_clients"], cell["array_bytes_per_account"]]
        if not args.skip_dict:
            row += [cell["dict_bytes_per_account"], cell["dict_over_array"]]
        rows.append(row)
    print_table(
        headers,
        rows,
        title=f"Account-store memory ({args.replicas} replicas, "
              f"shared interner; report: {path})",
    )

    if args.check_max_bytes is not None:
        worst = max(
            cell["array_bytes_per_account"] for cell in section["cells"]
        )
        if worst > args.check_max_bytes:
            print(
                f"[memory] FAIL: array store uses {worst} bytes/account, "
                f"ceiling is {args.check_max_bytes}"
            )
            return 1
        print(
            f"[memory] OK: array store peaks at {worst} bytes/account "
            f"(ceiling {args.check_max_bytes})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
