"""Fig. 8 — reconfiguration (join) latency vs system size (Appendix A-B).

Paper setup: a quiescent system grows from N=4 to N=80, one join at a
time.  Astro II's consensusless joins complete in ~0.2 s (the first join
is slightly slower because of connection establishment); BFT-SMaRt's
consensus-ordered reconfiguration is an order of magnitude slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..crypto.keys import Keychain, replica_owner
from ..reconfig.membership import ReconfigReplica
from ..reconfig.views import View
from ..sim.events import Simulator
from ..sim.latency import europe_wan
from ..sim.network import Network
from .parallel import ScenarioJob, execute
from .report import format_table
from .estimate import job_memory_bytes
from .scale import BenchScale, current_scale

__all__ = ["Fig8Result", "run_fig8", "measure_astro_join_series"]

#: Serialized xlog volume a joiner must fetch.  The paper's system is
#: quiescent but long-lived; this models a modest accumulated history.
STATE_BYTES = 2_000_000

#: One-time TCP/TLS connection establishment towards each member,
#: responsible for the elevated first data point in the paper's Fig. 8.
CONNECT_SETUP = 0.08


@dataclass
class Fig8Result:
    sizes: List[int]
    astro_latencies: List[float]
    bft_latencies: List[float]

    def table(self) -> str:
        headers = ["N (after join)", "Astro II join (s)", "BFT-SMaRt join (s)"]
        rows = [
            [size, f"{astro:.3f}", f"{bft:.3f}"]
            for size, astro, bft in zip(
                self.sizes, self.astro_latencies, self.bft_latencies
            )
        ]
        return format_table(
            headers, rows, title="Fig. 8 — reconfiguration (join) latency"
        )


def measure_astro_join_series(
    sizes: Sequence[int],
    seed: int = 0,
    state_bytes: int = STATE_BYTES,
) -> List[float]:
    """Sequential joins growing the system through ``sizes``.

    ``sizes`` lists the system size *after* each measured join; the system
    starts at ``sizes[0] - 1`` members.
    """
    if not sizes:
        return []
    max_size = max(sizes)
    sim = Simulator()
    network = Network(sim, latency=europe_wan(max_size + 1, seed=seed))
    keychain = Keychain(seed=seed + 5)
    initial = View(0, range(sizes[0] - 1))
    replicas: Dict[int, ReconfigReplica] = {}
    for node_id in range(max_size):
        key = keychain.generate(replica_owner(node_id))
        replicas[node_id] = ReconfigReplica(
            sim, node_id, network, initial, keychain, key,
            state_bytes=state_bytes,
        )
    latencies: List[float] = []
    current_view = initial
    first = True
    for size in sizes:
        joiner_id = size - 1
        joiner = replicas[joiner_id]
        joiner.view = current_view
        # Connection establishment to all current members (the fixed
        # overhead the paper observes on the first join; subsequent joins
        # in a long-lived deployment reuse warm infrastructure).
        setup = CONNECT_SETUP if first else CONNECT_SETUP / 8
        first = False
        start = sim.now + setup
        sim.schedule_at(start, joiner.request_join)
        sim.run_until_idle()
        if joiner.join_latency is None:
            raise RuntimeError(f"join of node {joiner_id} did not complete")
        latencies.append(joiner.join_latency + setup)
        current_view = joiner.view
    return latencies


def run_fig8(
    sizes: Sequence[int] = (),
    seed: int = 0,
    scale: Optional[BenchScale] = None,
    jobs: Optional[int] = None,
) -> Fig8Result:
    if scale is None:
        scale = current_scale()
    sizes = list(sizes) if sizes else list(scale.fig8_sizes)
    # The same up-front validation discipline as fig3/fig4's systems
    # guard: a malformed size list would otherwise surface as a bare
    # RuntimeError ("join did not complete") mid-series.
    if any(size < 2 for size in sizes):
        raise ValueError(
            f"fig8 sizes must be >= 2 (a join needs an existing member "
            f"to ask), got {sizes}"
        )
    if any(b <= a for a, b in zip(sizes, sizes[1:])):
        raise ValueError(
            f"fig8 sizes must be strictly increasing (one system grows "
            f"through every size), got {sizes}"
        )
    # The Astro series grows one system through every size (inherently
    # sequential: one job); each consensus join is independent.
    units = [
        ScenarioJob(
            kind="astro_join_series",
            params=dict(sizes=tuple(sizes), state_bytes=STATE_BYTES),
            seed=seed,
            tag="astro",
        )
    ] + [
        ScenarioJob(
            kind="consensus_join",
            params=dict(size=size, state_bytes=STATE_BYTES),
            seed=seed,
            tag=("bft", size),
        )
        for size in sizes
    ]
    results = execute(
        units, jobs=jobs, label=f"fig8[{scale.name}]",
        per_job_bytes=job_memory_bytes(max(sizes)),
    )
    return Fig8Result(
        sizes=sizes, astro_latencies=results[0], bft_latencies=results[1:]
    )
