"""Plain-text result tables in the shape the paper reports."""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "print_table",
    "format_series",
    "kilo",
    "merge_perf_report",
]


def merge_perf_report(
    updates: Dict[str, Any], path: Optional[str] = None
) -> str:
    """Merge keys into ``BENCH_perf.json`` (create if absent).

    Every producer — the perf regression suite, the workload sweep,
    ``repro.bench.memory`` — writes through here, so sections never
    truncate each other regardless of execution order.  ``path``
    defaults to the ``REPRO_PERF_JSON`` environment knob.
    """
    if path is None:
        path = os.environ.get("REPRO_PERF_JSON", "BENCH_perf.json")
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        report = {}
    report.update(updates)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path


def kilo(value: float) -> str:
    """Format payments/sec the way the paper quotes them (e.g. '13.5K')."""
    if value >= 10_000:
        return f"{value / 1000:.1f}K"
    if value >= 1_000:
        return f"{value / 1000:.2f}K"
    return f"{value:.0f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> None:
    print()
    print(format_table(headers, rows, title=title))


def format_series(series: Sequence[float], precision: int = 0) -> str:
    """Compact rendering of a per-second throughput timeline."""
    return "[" + ", ".join(f"{v:.{precision}f}" for v in series) + "]"
