"""Robustness timelines (Figs. 5–7): per-second throughput under faults.

Reproduces the paper's §VI-D methodology: closed-loop clients (one request
in flight each), a warm-up period, a fault injected mid-run (crash-stop or
100 ms egress delay), and the per-second settled-payment series over the
observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..sim.metrics import ThroughputMeter
from ..workloads.drivers import ClosedLoopDriver
from ..workloads.uniform import UniformWorkload
from .systems import client_ids_of

__all__ = ["TimelineResult", "run_timeline"]


@dataclass
class TimelineResult:
    """Per-second throughput series plus summary statistics."""

    series: List[float]
    window_start: float
    fault_at: Optional[float]
    completed: int

    def average(self, start: int = 0, end: Optional[int] = None) -> float:
        segment = self.series[start:end]
        if not segment:
            return 0.0
        return sum(segment) / len(segment)

    def before_fault(self) -> float:
        """Mean throughput in the pre-fault portion of the window."""
        if self.fault_at is None:
            return self.average()
        split = int(self.fault_at - self.window_start)
        return self.average(0, max(split, 1))

    def after_fault(self, settle_gap: int = 2) -> float:
        """Mean throughput after the fault (skipping ``settle_gap`` s)."""
        if self.fault_at is None:
            return self.average()
        split = int(self.fault_at - self.window_start) + settle_gap
        return self.average(split)

    def min_after_fault(self) -> float:
        if self.fault_at is None:
            return min(self.series) if self.series else 0.0
        split = int(self.fault_at - self.window_start)
        tail = self.series[split:]
        return min(tail) if tail else 0.0


def run_timeline(
    system: Any,
    num_clients: int = 10,
    warmup: float = 20.0,
    window: float = 40.0,
    fault: Optional[Callable[[Any, float], None]] = None,
    fault_offset: float = 10.0,
    seed: int = 0,
    clients: Optional[Sequence] = None,
) -> TimelineResult:
    """Run the §VI-D experiment shape on ``system``.

    ``fault(system, at_time)`` — e.g. ``lambda s, t: s.faults.crash(0, t)``
    — is scheduled ``fault_offset`` seconds into the observation window
    (the paper warms up 20 s and injects at 30 s).
    """
    population = list(clients) if clients is not None else client_ids_of(system)
    active = population[:num_clients]
    workload = UniformWorkload(population, seed=seed)
    meter = ThroughputMeter(bucket_width=1.0)
    end = warmup + window
    driver = ClosedLoopDriver(
        system,
        active,
        workload,
        stop_at=end,
        meter=meter,
    )
    fault_at: Optional[float] = None
    if fault is not None:
        fault_at = warmup + fault_offset
        fault(system, fault_at)
    system.run(end)
    return TimelineResult(
        series=meter.series(warmup, end),
        window_start=warmup,
        fault_at=fault_at,
        completed=driver.completed,
    )
