"""Cold-start peak-rate estimation for size-major benchmark sweeps.

Fig. 3's classic execution model chains each system's sizes into a
warm-start pipeline: size k's peak search starts from size k-1's measured
peak, so a 17-size sweep serializes 17 searches and a full-scale Fig. 3
can never use more than ``len(systems)`` workers.  This module replaces
the *carry* dependency with a prediction: an analytic peak-vs-N curve
derived from the crypto/CPU cost model (:mod:`repro.crypto.costs`) and
quorum sizes, calibrated by one or two cheap sub-saturation anchor
probes at the smallest sizes (bottleneck utilization extrapolated to
capacity).  Each (system, size) cell then becomes an independent
cold-start job whose :func:`~repro.bench.peak.find_peak` search is seeded
with an estimated ``(low, high)`` bracket instead of a warm rate.

The analytic model is deliberately coarse: absolute accuracy is supplied
by the anchor calibration, and a bracket that misses only costs the
search a few extra doubling/walk-down probes — results are measured, the
estimate never appears in any reported number.

The same cost model supplies :func:`job_memory_bytes`, the per-worker
memory footprint estimate behind ``REPRO_BENCH_JOBS=auto``'s
memory-aware cap (worker memory scales with ``jobs × O(N²)`` at large N).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..brb.quorums import byzantine_quorum, max_faulty
from ..crypto import costs

__all__ = [
    "PeakEstimate",
    "analytic_capacity",
    "bracket_for",
    "calibrated_capacity",
    "credit_amortization",
    "estimate_peaks",
    "job_memory_bytes",
    "ANCHOR_RATE_FRACTION",
    "BRACKET_LOW",
    "BRACKET_HIGH",
]

#: Simulated node resources (mirrors ``sim.resources`` defaults — the
#: t2.medium profile of §VI-A: 2 vCores, 30 MiB/s NIC).
_CPU_CORES = 2.0
_NIC_BYTES_PER_SEC = 30.0 * 1024 * 1024

#: Paper batch size (§VI-A) — the unit the per-batch costs amortize over.
_BATCH = 256

#: Approximate wire bytes of one payment inside a batch.
_PAYMENT_BYTES = 100
_BATCH_BYTES = 48 + _BATCH * _PAYMENT_BYTES

#: Anchor probes offer this fraction of the analytic capacity: safely
#: *below* saturation, where the bottleneck resource's measured
#: utilization extrapolates linearly to capacity (rate / utilization).
#: A sub-saturation anchor costs a small, bounded number of simulated
#: payments — a saturating probe at an overestimated rate does not.
ANCHOR_RATE_FRACTION = 0.25

#: Default bracket, as fractions of the estimated capacity.  The latency
#: envelope puts the measured peak a little below raw capacity, so the
#: band is asymmetric: the low hint should pass, the high hint should
#: fail, and two refinement bisections land within ~15% of the boundary.
BRACKET_LOW = 0.40
BRACKET_HIGH = 1.25


@dataclass(frozen=True)
class PeakEstimate:
    """Predicted peak-search seed for one (system, size) cell."""

    system: str
    size: int
    #: Calibrated saturation-capacity estimate, payments/second.
    capacity_pps: float
    #: ``(low_hint, high_hint)`` bracket for ``find_peak``.
    bracket: Tuple[float, float]


def credit_amortization(n: int, credit_coalesce_delay: float) -> float:
    """Sub-batches amortized by one CREDIT transport envelope (≥ 1).

    With coalescing off every sub-batch ships in its own message (factor
    1).  With a window of ``delay`` seconds, a replica delivers about one
    batch per representative per batch window
    (:func:`~repro.bench.systems.scaled_batch_delay`), each delivery
    contributing at most one sub-batch per destination representative, so
    one :class:`~repro.core.dependencies.CreditBundle` carries
    ``≈ n × delay / batch_window`` sub-batches and the per-*message*
    envelope costs divide by that factor.  The factor saturates at one
    batch window's worth (``≈ n``): the coalescer's weight cap flushes a
    (settler → representative) bucket once it holds ``batch_size``
    payments, which under uniform load accumulate in about one batch
    window regardless of how much larger the time window is.
    Per-sub-batch work (signing, verification, signature bytes, payload
    bytes) is window-invariant: transport coalescing merges envelopes,
    never sub-batch content.  Deliberately coarse — anchors calibrate
    the absolute scale; this only has to bend the peak-vs-N shape the
    way the coalescer does.
    """
    if credit_coalesce_delay <= 0:
        return 1.0
    from .systems import scaled_batch_delay

    window = scaled_batch_delay(n)
    return max(1.0, n * min(credit_coalesce_delay, window) / window)


def _resolve_coalesce(n: int, credit_coalesce_delay: Optional[float]) -> float:
    """``None`` means "whatever the environment knob says" — keeping the
    figure enumeration automatically consistent with what
    :func:`~repro.bench.systems.build_astro2` will actually build."""
    if credit_coalesce_delay is not None:
        return credit_coalesce_delay
    from .systems import resolve_credit_coalesce

    return resolve_credit_coalesce(n)


def _per_batch_cpu_astro2(
    n: int, credit_coalesce_delay: float = 0.0
) -> float:
    """Bottleneck-replica CPU seconds per delivered batch, Astro II.

    Per batch a replica: receives the PREPARE (hash + ACK signature),
    verifies the COMMIT certificate (quorum of ECDSA signatures — the
    term that drives the large-N decay), settles the payments, signs one
    CREDIT per beneficiary representative group (≈ min(N, B) groups under
    uniform beneficiaries) and, as a representative, verifies the N
    incoming CREDIT sub-batches for its own clients.  Request ingestion
    amortizes over the N representatives (B/N payments per batch each).
    Only the per-*envelope* CREDIT terms (message/send overhead) divide
    by the coalescing amortization factor: signing and verification stay
    per sub-batch (each sub-batch feeds its own certificate), and the
    per-byte credit payload ingest is window-invariant (every settled
    payment is re-unicast exactly once regardless of windowing).

    Baseline correction vs the pre-coalescing model (PR 3): the credit
    payload ingest term ``PER_BYTE_CPU × B × payment_bytes`` was missing
    entirely — the knob-*off* capacity here is deliberately lower (more
    accurate) than PR 3's, independent of the coalescing knob, and the
    knob-off brackets/anchors were re-validated against measured peaks
    (see benchmarks/test_fig3_strategies.py).
    """
    f = max_faulty(n)
    quorum = byzantine_quorum(n, f)
    groups = min(n, _BATCH)
    prepare = (
        costs.MESSAGE_OVERHEAD
        + costs.PER_BYTE_CPU * _BATCH * _PAYMENT_BYTES
        + costs.HASH_PER_PAYMENT * _BATCH
        + costs.ECDSA_SIGN
        + costs.SEND_OVERHEAD
    )
    commit = costs.MESSAGE_OVERHEAD + quorum * costs.ECDSA_VERIFY
    amortize = credit_amortization(n, credit_coalesce_delay)
    credits = (
        (groups * costs.SEND_OVERHEAD + n * costs.MESSAGE_OVERHEAD) / amortize
        + groups * costs.ECDSA_SIGN
        + n * costs.ECDSA_VERIFY
        + costs.PER_BYTE_CPU * _BATCH * _PAYMENT_BYTES
    )
    # Per-payment work: settle everywhere; ingest/confirm only for the
    # representative's own 1/N share of clients.
    per_payment = 1.5e-6 + (35e-6 + 3e-6) / n
    return prepare + commit + credits + per_payment * _BATCH


def _per_batch_cpu_astro1(n: int) -> float:
    """Bottleneck-replica CPU seconds per delivered batch, Astro I.

    Echo-based BRB: O(N²) messages system-wide means each replica sends
    and receives ~2N MAC-authenticated ECHO/READY messages per batch —
    the linear-in-N term — with the payload (and its hashing) carried by
    the echoes.
    """
    per_message = (
        costs.MESSAGE_OVERHEAD
        + costs.MAC_VERIFY
        + costs.SEND_OVERHEAD
        + costs.MAC_COMPUTE
    )
    payload = (
        costs.PER_BYTE_CPU * _BATCH * _PAYMENT_BYTES
        + costs.HASH_PER_PAYMENT * _BATCH
    )
    per_payment = 1.5e-6 + (35e-6 + 3e-6) / n
    return 2 * n * per_message + 2 * payload + per_payment * _BATCH


def _per_batch_cpu_bft(n: int) -> float:
    """Leader CPU seconds per decided batch, BFT baseline.

    The leader fans the (wire-amplified) PROPOSE to N-1 replicas and
    absorbs the two all-to-all quorum phases (~2N control messages per
    instance); every client request costs ingestion at *each* replica.
    ``overhead_factor`` (JVM/BFT-SMaRt calibration, see BftConfig) scales
    the per-message costs.
    """
    overhead_factor = 5.0
    per_control = (costs.MESSAGE_OVERHEAD + costs.MAC_VERIFY) * overhead_factor
    propose_send = (
        (costs.SEND_OVERHEAD + costs.MAC_COMPUTE) * overhead_factor * n
        + costs.PER_BYTE_CPU * _BATCH * _PAYMENT_BYTES * 5.0  # wire amplification
    )
    # request_cost=15e-6 per payment at each replica, ×overhead_factor;
    # settle + reply per executed payment.
    per_payment = 15e-6 * overhead_factor + 1.5e-6 + 4e-6
    return propose_send + 2 * n * per_control + per_payment * _BATCH


def _per_batch_nic_astro2(
    n: int, credit_coalesce_delay: float = 0.0
) -> float:
    """Bottleneck-replica NIC seconds per delivered batch, Astro II.

    The representative serializes its own batch once towards each peer,
    but owns only a 1/N share of the batches; amortized per delivered
    batch that is ≈ one payload copy, plus the COMMIT certificate and
    per-group CREDIT unicasts.  Coalescing divides only the per-message
    CREDIT envelope *header* by the amortization factor; the per-sub-batch
    signature bytes and the credit payload (each settled payment
    re-unicast once, ~100 B — a term missing from the PR 3 baseline, see
    the CPU model's baseline-correction note) are window-invariant.
    """
    f = max_faulty(n)
    quorum = byzantine_quorum(n, f)
    commit = 48 + quorum * 72
    amortize = credit_amortization(n, credit_coalesce_delay)
    credits = (
        min(n, _BATCH) * 48 / amortize
        + min(n, _BATCH) * costs.SIGNATURE_BYTES
        + _BATCH * _PAYMENT_BYTES
    )
    return (_BATCH_BYTES + commit + credits) / _NIC_BYTES_PER_SEC


def _per_batch_nic_astro1(n: int) -> float:
    """Astro I's O(N²) wire cost is what caps it: ECHO and READY both
    carry the full payload (see brb.bracha), so *every* replica
    serializes 2(N-1) payload copies per delivered batch."""
    return 2 * (n - 1) * _BATCH_BYTES / _NIC_BYTES_PER_SEC


def _per_batch_nic_bft(n: int) -> float:
    """The leader serializes the wire-amplified PROPOSE towards N-1
    replicas per batch, plus the two control-phase broadcasts."""
    propose = (n - 1) * _BATCH_BYTES * 5.0  # propose_wire_amplification
    control = 2 * (n - 1) * 80
    return (propose + control) / _NIC_BYTES_PER_SEC


_PER_BATCH = {
    "astro2": (_per_batch_cpu_astro2, _per_batch_nic_astro2),
    "astro1": (_per_batch_cpu_astro1, _per_batch_nic_astro1),
    "bft": (_per_batch_cpu_bft, _per_batch_nic_bft),
}


def analytic_capacity(
    system: str, size: int, credit_coalesce_delay: Optional[float] = None
) -> float:
    """Uncalibrated capacity estimate (payments/second) for one cell.

    The bottleneck replica's per-batch cost on its slower resource —
    pooled CPU cores or NIC serialization — inverted.  Only the
    *relative* shape across N must be right for bracket seeding (anchor
    calibration absorbs absolute error), but the value also picks the
    anchor probe rate, so it aims for the right order of magnitude.

    ``credit_coalesce_delay`` (Astro II only; other systems ignore it)
    bends the curve for the cross-delivery CREDIT coalescer;  ``None``
    resolves the ``REPRO_CREDIT_COALESCE`` environment knob so figure
    enumeration estimates the same system the builders will construct.
    """
    try:
        cpu_fn, nic_fn = _PER_BATCH[system]
    except KeyError:
        raise ValueError(
            f"unknown system {system!r}; expected one of {sorted(_PER_BATCH)}"
        ) from None
    if system == "astro2":
        delay = _resolve_coalesce(size, credit_coalesce_delay)
        bottleneck = max(cpu_fn(size, delay) / _CPU_CORES, nic_fn(size, delay))
    else:
        bottleneck = max(cpu_fn(size) / _CPU_CORES, nic_fn(size))
    return _BATCH / bottleneck


def calibrated_capacity(
    system: str,
    size: int,
    anchors: Optional[Dict[int, float]] = None,
    credit_coalesce_delay: Optional[float] = None,
) -> float:
    """Capacity estimate scaled through measured anchor probes.

    ``anchors`` maps anchor size -> measured saturated throughput.  With
    one anchor the analytic curve is rescaled so it passes through the
    measurement; with two, the correction factor is interpolated
    log-linearly in N (and clamped beyond the anchor span, so a noisy
    slope cannot run away at large extrapolated sizes).
    """
    base = analytic_capacity(system, size, credit_coalesce_delay)
    if not anchors:
        return base
    points = sorted(
        (a_size, measured / analytic_capacity(system, a_size,
                                              credit_coalesce_delay))
        for a_size, measured in anchors.items()
        if measured > 0
    )
    if not points:
        return base
    if len(points) == 1 or points[0][0] == points[-1][0]:
        return base * points[0][1]
    (n0, c0), (n1, c1) = points[0], points[-1]
    t = (size - n0) / (n1 - n0)
    t = max(-0.5, min(t, 2.0))  # clamp extrapolation of the correction slope
    correction = math.exp(
        math.log(c0) + t * (math.log(c1) - math.log(c0))
    )
    return base * correction


def bracket_for(
    capacity_pps: float,
    low_fraction: float = BRACKET_LOW,
    high_fraction: float = BRACKET_HIGH,
) -> Tuple[float, float]:
    """``find_peak`` bracket around an estimated capacity."""
    if capacity_pps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_pps}")
    low = max(capacity_pps * low_fraction, 50.0)
    high = max(capacity_pps * high_fraction, low * 2.0)
    return (low, high)


def estimate_peaks(
    system: str,
    sizes: Sequence[int],
    anchors: Optional[Dict[int, float]] = None,
    credit_coalesce_delay: Optional[float] = None,
) -> Dict[int, PeakEstimate]:
    """Per-size peak estimates for one system, calibrated by ``anchors``."""
    estimates: Dict[int, PeakEstimate] = {}
    for size in sizes:
        capacity = calibrated_capacity(
            system, size, anchors, credit_coalesce_delay
        )
        estimates[size] = PeakEstimate(
            system=system,
            size=size,
            capacity_pps=capacity,
            bracket=bracket_for(capacity),
        )
    return estimates


def job_memory_bytes(max_size: int) -> int:
    """Rough peak RSS of one worker simulating an N=``max_size`` cell.

    Message state, per-pair latency tables, and replicated xlogs all grow
    with N² (every replica holds every representative's batches); the
    constants are calibrated loosely against observed worker footprints —
    the cap this feeds only needs the right order of magnitude.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    return int(60e6 + 25_000 * max_size * max_size)
