"""Fig. 3 — peak throughput vs system size, three systems (§VI-C1).

Paper anchors (single shard, EU WAN, batch 256):

* N=4:   BFT-SMaRt >10K pps, Astro I ≈13.5K pps, Astro II ≈55K pps;
* N=100: BFT-SMaRt ≈334 pps, Astro I ≈2K pps (6×), Astro II ≈5K pps (16×).

The reproduced claims: broadcast beats consensus at every size, Astro II
beats Astro I, and all three decay with N (quorum systems).

Execution strategies (``strategy=`` / ``REPRO_BENCH_FIG3_STRATEGY``):

* ``"size-major"`` (default) — every (system, size) cell is an
  independent cold-start job, so a full-scale sweep (17 sizes × 3
  systems) fans out across every available worker.  Each cell's peak
  search is seeded with an estimated ``(low, high)`` bracket from
  :mod:`repro.bench.estimate` — the analytic peak-vs-N curve calibrated
  by up to two cheap sub-saturation anchor probes per system at the
  smallest sizes (a short ``len(systems × anchors)``-job phase that
  precedes the main fan-out).
* ``"pipeline"`` — the legacy warm-start carry: one ordered
  :class:`~repro.bench.parallel.ScenarioPipeline` per system, each
  size's search warm-started from the previous size's peak.  At most
  ``len(systems)`` workers ever run concurrently; kept for A/B
  validation of the estimator (see
  ``benchmarks/test_fig3_strategies.py``).

Both strategies measure every cell with the same ``find_peak`` procedure
and seed; only the search's starting information differs.  At quick
scale and above the reported peaks agree within the search's own
granularity (worst cell ~15%, guarded at 35% by the A/B test).  At
*smoke* scale no such agreement is guaranteed: probe windows are floored
at 0.4s/0.3s, the probe cap is 9, and ``reuse_state=True`` — under that
noise the two strategies can land on passing probes tens of percent
apart (observed: astro2 N=22 differing ~70%), which smoke's purely
qualitative assertions tolerate by design.  Within a strategy, results
remain byte-identical across worker counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .estimate import (
    ANCHOR_RATE_FRACTION,
    analytic_capacity,
    estimate_peaks,
    job_memory_bytes,
)
from .parallel import ScenarioJob, ScenarioPipeline, execute
from .report import format_table, kilo
from .scale import BenchScale, current_scale
from .systems import validate_systems

__all__ = ["Fig3Result", "run_fig3"]

#: Initial search rates at the smallest size (pipeline strategy only;
#: subsequent sizes warm-start from the previous peak via the
#: ``fig3_warm_start`` carry rule).
_START_RATES = {"bft": 2000.0, "astro1": 8000.0, "astro2": 24000.0}
_LABELS = {
    "bft": "Consensus (BFT-SMaRt)",
    "astro1": "Astro I (echo BRB)",
    "astro2": "Astro II (signed BRB)",
}

#: Environment override for the execution strategy.
STRATEGY_ENV = "REPRO_BENCH_FIG3_STRATEGY"
_STRATEGIES = ("size-major", "pipeline")

#: Calibration anchors per system: at most this many of the smallest
#: sizes get a saturating probe (two anchor points let the estimator
#: correct the analytic curve's slope, not just its scale).
_MAX_ANCHORS = 2


@dataclass
class Fig3Result:
    sizes: List[int]
    peaks: Dict[str, List[float]]  # system -> peak pps per size
    #: Probes spent per cell (same keys/order as ``peaks``) — the cost
    #: record the size-major vs pipeline A/B comparison audits.
    probe_counts: Dict[str, List[int]] = field(default_factory=dict)
    #: Calibration anchor probes run before the cell sweep (size-major
    #: strategy only; counted so probe-budget comparisons stay honest).
    anchor_probes: int = 0

    @property
    def total_probes(self) -> int:
        """Every simulation window this figure paid for."""
        return self.anchor_probes + sum(
            count for series in self.probe_counts.values() for count in series
        )

    def table(self) -> str:
        # Iterate this result's own systems (run_fig3 may have measured a
        # subset of the three), not a hard-coded tuple.
        names = list(self.peaks)
        headers = ["N"] + [_LABELS.get(name, name) for name in names]
        rows = []
        for index, size in enumerate(self.sizes):
            rows.append(
                [size] + [kilo(self.peaks[name][index]) for name in names]
            )
        return format_table(
            headers, rows,
            title="Fig. 3 — peak throughput (pps) vs system size",
        )


def _resolve_strategy(strategy: Optional[str]) -> str:
    if strategy is None:
        strategy = os.environ.get(STRATEGY_ENV, "").strip().lower() or "size-major"
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"fig3 strategy must be one of {_STRATEGIES}, got {strategy!r}"
        )
    return strategy


def _peak_search_params(scale: BenchScale) -> Dict[str, object]:
    """find_peak knobs shared by every cell of either strategy."""
    return dict(
        duration=scale.peak_duration,
        warmup=scale.peak_warmup,
        refine_steps=2,
        payment_budget=scale.peak_payment_budget,
        max_probes=scale.peak_probe_cap,
        reuse_state=scale.peak_reuse_state,
    )


def _run_pipeline(
    sizes: List[int],
    systems: List[str],
    seed: int,
    scale: BenchScale,
    jobs: Optional[int],
) -> Dict[str, List]:
    pipelines = [
        ScenarioPipeline(
            jobs=tuple(
                ScenarioJob(
                    kind="find_peak",
                    params=dict(
                        system=name,
                        size=size,
                        start_rate=_START_RATES[name],
                        **_peak_search_params(scale),
                    ),
                    seed=seed,
                    tag=(name, size),
                )
                for size in sizes
            ),
            carry="fig3_warm_start",
        )
        for name in systems
    ]
    results = execute(
        pipelines, jobs=jobs, label=f"fig3[{scale.name}]",
        per_job_bytes=job_memory_bytes(max(sizes)),
    )
    return dict(zip(systems, results))


def _run_size_major(
    sizes: List[int],
    systems: List[str],
    seed: int,
    scale: BenchScale,
    jobs: Optional[int],
) -> Dict[str, object]:
    # Imported lazily so ``python -m repro.bench.budget`` (the checker
    # CLI) does not trip runpy's already-imported warning via the
    # package __init__ → fig3 chain.
    from .budget import fig3_budgets

    # Phase 1 — calibration anchors: one sub-saturation probe per
    # (system, anchor size).  Cheap (budget-capped), short, and the only
    # sequential dependency left in the whole figure.
    anchor_sizes = sorted(set(sizes))[:_MAX_ANCHORS]
    anchor_units = [
        ScenarioJob(
            kind="estimate_anchor",
            params=dict(
                system=name,
                size=size,
                rate=ANCHOR_RATE_FRACTION * analytic_capacity(name, size),
                duration=scale.peak_duration,
                warmup=scale.peak_warmup,
                payment_budget=scale.anchor_payment_budget,
            ),
            seed=seed,
            tag=(name, size),
        )
        for name in systems
        for size in anchor_sizes
    ]
    anchor_results = execute(
        anchor_units, jobs=jobs, label=f"fig3-anchors[{scale.name}]",
        per_job_bytes=job_memory_bytes(max(anchor_sizes)),
        budgets=fig3_budgets(anchor_sizes, systems, scale, anchors=True),
    )
    anchors: Dict[str, Dict[int, float]] = {name: {} for name in systems}
    for unit, result in zip(anchor_units, anchor_results):
        name, size = unit.tag
        anchors[name][size] = result["capacity_pps"]

    # Phase 2 — the sweep proper: one independent cold-start job per
    # (system, size) cell, seeded with the calibrated bracket.
    estimates = {
        name: estimate_peaks(name, sizes, anchors[name]) for name in systems
    }
    units = [
        ScenarioJob(
            kind="find_peak",
            params=dict(
                system=name,
                size=size,
                start_rate=estimates[name][size].capacity_pps,
                bracket=estimates[name][size].bracket,
                **_peak_search_params(scale),
            ),
            seed=seed,
            tag=(name, size),
        )
        for name in systems
        for size in sizes
    ]
    results = execute(
        units, jobs=jobs, label=f"fig3[{scale.name}]",
        per_job_bytes=job_memory_bytes(max(sizes)),
        budgets=fig3_budgets(sizes, systems, scale),
    )
    by_system: Dict[str, List] = {name: [] for name in systems}
    for unit, peak in zip(units, results):
        by_system[unit.tag[0]].append(peak)
    return {"cells": by_system, "anchor_probes": len(anchor_units)}


def run_fig3(
    sizes: Sequence[int] = (),
    seed: int = 0,
    scale: Optional[BenchScale] = None,
    systems: Sequence[str] = ("bft", "astro1", "astro2"),
    jobs: Optional[int] = None,
    strategy: Optional[str] = None,
) -> Fig3Result:
    if scale is None:
        scale = current_scale()
    systems = validate_systems(systems)
    sizes = list(sizes) if sizes else list(scale.fig3_sizes)
    strategy = _resolve_strategy(strategy)
    anchor_probes = 0
    if strategy == "pipeline":
        series_by_system = _run_pipeline(sizes, systems, seed, scale, jobs)
    else:
        outcome = _run_size_major(sizes, systems, seed, scale, jobs)
        series_by_system = outcome["cells"]
        anchor_probes = outcome["anchor_probes"]
    return Fig3Result(
        sizes=sizes,
        peaks={
            name: [peak.peak_pps for peak in series]
            for name, series in series_by_system.items()
        },
        probe_counts={
            name: [len(peak.probes) for peak in series]
            for name, series in series_by_system.items()
        },
        anchor_probes=anchor_probes,
    )
