"""Fig. 3 — peak throughput vs system size, three systems (§VI-C1).

Paper anchors (single shard, EU WAN, batch 256):

* N=4:   BFT-SMaRt >10K pps, Astro I ≈13.5K pps, Astro II ≈55K pps;
* N=100: BFT-SMaRt ≈334 pps, Astro I ≈2K pps (6×), Astro II ≈5K pps (16×).

The reproduced claims: broadcast beats consensus at every size, Astro II
beats Astro I, and all three decay with N (quorum systems).

Execution model: one :class:`~repro.bench.parallel.ScenarioPipeline` per
system — the sizes within a pipeline run in order because each size's
peak search warm-starts from the previous size's peak, while the three
systems' pipelines have no dependency and run concurrently on the
parallel backend (``REPRO_BENCH_JOBS``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .parallel import ScenarioJob, ScenarioPipeline, execute
from .report import format_table, kilo
from .scale import BenchScale, current_scale

__all__ = ["Fig3Result", "run_fig3"]

#: Initial search rates at the smallest size (subsequent sizes warm-start
#: from the previous peak via the ``fig3_warm_start`` carry rule).
_START_RATES = {"bft": 2000.0, "astro1": 8000.0, "astro2": 24000.0}
_LABELS = {
    "bft": "Consensus (BFT-SMaRt)",
    "astro1": "Astro I (echo BRB)",
    "astro2": "Astro II (signed BRB)",
}


@dataclass
class Fig3Result:
    sizes: List[int]
    peaks: Dict[str, List[float]]  # system -> peak pps per size

    def table(self) -> str:
        # Iterate this result's own systems (run_fig3 may have measured a
        # subset of the three), not a hard-coded tuple.
        names = list(self.peaks)
        headers = ["N"] + [_LABELS.get(name, name) for name in names]
        rows = []
        for index, size in enumerate(self.sizes):
            rows.append(
                [size] + [kilo(self.peaks[name][index]) for name in names]
            )
        return format_table(
            headers, rows,
            title="Fig. 3 — peak throughput (pps) vs system size",
        )


def run_fig3(
    sizes: Sequence[int] = (),
    seed: int = 0,
    scale: Optional[BenchScale] = None,
    systems: Sequence[str] = ("bft", "astro1", "astro2"),
    jobs: Optional[int] = None,
) -> Fig3Result:
    if scale is None:
        scale = current_scale()
    sizes = list(sizes) if sizes else list(scale.fig3_sizes)
    pipelines = [
        ScenarioPipeline(
            jobs=tuple(
                ScenarioJob(
                    kind="find_peak",
                    params=dict(
                        system=name,
                        size=size,
                        start_rate=_START_RATES[name],
                        duration=scale.peak_duration,
                        warmup=scale.peak_warmup,
                        refine_steps=2,
                        payment_budget=scale.peak_payment_budget,
                        max_probes=scale.peak_probe_cap,
                        reuse_state=scale.peak_reuse_state,
                    ),
                    seed=seed,
                    tag=(name, size),
                )
                for size in sizes
            ),
            carry="fig3_warm_start",
        )
        for name in systems
    ]
    results = execute(pipelines, jobs=jobs, label=f"fig3[{scale.name}]")
    peaks: Dict[str, List[float]] = {
        name: [peak.peak_pps for peak in series]
        for name, series in zip(systems, results)
    }
    return Fig3Result(sizes=sizes, peaks=peaks)
