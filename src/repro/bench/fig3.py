"""Fig. 3 — peak throughput vs system size, three systems (§VI-C1).

Paper anchors (single shard, EU WAN, batch 256):

* N=4:   BFT-SMaRt >10K pps, Astro I ≈13.5K pps, Astro II ≈55K pps;
* N=100: BFT-SMaRt ≈334 pps, Astro I ≈2K pps (6×), Astro II ≈5K pps (16×).

The reproduced claims: broadcast beats consensus at every size, Astro II
beats Astro I, and all three decay with N (quorum systems).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .peak import PeakResult, find_peak
from .report import format_table, kilo
from .scale import BenchScale, current_scale
from .systems import build_astro1, build_astro2, build_bft

__all__ = ["Fig3Result", "run_fig3"]

#: Initial search rates at the smallest size (subsequent sizes warm-start
#: from the previous peak).
_START_RATES = {"bft": 2000.0, "astro1": 8000.0, "astro2": 24000.0}
_BUILDERS = {"bft": build_bft, "astro1": build_astro1, "astro2": build_astro2}
_LABELS = {
    "bft": "Consensus (BFT-SMaRt)",
    "astro1": "Astro I (echo BRB)",
    "astro2": "Astro II (signed BRB)",
}


@dataclass
class Fig3Result:
    sizes: List[int]
    peaks: Dict[str, List[float]]  # system -> peak pps per size

    def table(self) -> str:
        headers = ["N"] + [_LABELS[name] for name in ("bft", "astro1", "astro2")]
        rows = []
        for index, size in enumerate(self.sizes):
            rows.append(
                [size]
                + [kilo(self.peaks[name][index]) for name in ("bft", "astro1", "astro2")]
            )
        return format_table(
            headers, rows,
            title="Fig. 3 — peak throughput (pps) vs system size",
        )


def run_fig3(
    sizes: Sequence[int] = (),
    seed: int = 0,
    scale: BenchScale = None,
    systems: Sequence[str] = ("bft", "astro1", "astro2"),
) -> Fig3Result:
    if scale is None:
        scale = current_scale()
    sizes = list(sizes) if sizes else list(scale.fig3_sizes)
    peaks: Dict[str, List[float]] = {name: [] for name in systems}
    for size in sizes:
        for name in systems:
            factory = functools.partial(_BUILDERS[name], size, seed=seed)
            # Warm start: peaks decay with N, so the previous size's peak
            # puts the doubling search 1–2 probes from the answer.
            if peaks[name]:
                start = max(peaks[name][-1] * 0.5, 50.0)
            else:
                start = _START_RATES[name]
            result = find_peak(
                factory,
                start_rate=start,
                duration=scale.peak_duration,
                warmup=scale.peak_warmup,
                refine_steps=2,
                seed=seed,
                payment_budget=scale.peak_payment_budget,
                max_probes=scale.peak_probe_cap,
                reuse_state=scale.peak_reuse_state,
            )
            peaks[name].append(result.peak_pps)
    return Fig3Result(sizes=sizes, peaks=peaks)
