"""Standard scenario executors for the parallel benchmark backend.

Each executor rebuilds its simulator *inside the worker process* from a
:class:`~repro.bench.parallel.ScenarioJob`'s picklable params, runs one
self-contained measurement, and returns only small result objects
(:class:`~repro.bench.runner.RunResult`,
:class:`~repro.bench.peak.PeakResult`, tuples of floats).  Nothing
heavyweight — no simulators, networks, or replicas — ever crosses the
process boundary.

The figure modules (``fig3``/``fig4``/``ablations``/``table1``/``fig8``/
``robustness``) enumerate jobs against these kinds; the registrations
here are imported by :func:`repro.bench.parallel.run_unit` in every
worker, so job kinds resolve under both ``fork`` and ``spawn`` start
methods.
"""

from __future__ import annotations

import functools
import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..consensus.config import BftConfig
from ..sim.shard import ShardedOpenLoop, ShardingUnsupported, resolve_shards
from .parallel import ScenarioJob, register_carry, register_executor, replace_params
from .peak import SATURATION_GOODPUT, PeakResult, find_peak, shrink_window
from .runner import RunResult, run_open_loop
from .systems import SYSTEM_BUILDERS
from .timeline import TimelineResult, run_timeline

__all__ = []  # imported for registration side effects, not for names


# ---------------------------------------------------------------------------
# Peak searches (Fig. 3, Fig. 4's anchor, batching ablation)
# ---------------------------------------------------------------------------


def _system_factory(system: str, size: int, seed: int,
                    builder_kwargs: Optional[Dict[str, Any]] = None):
    builder = SYSTEM_BUILDERS[system]
    return functools.partial(builder, size, seed=seed, **(builder_kwargs or {}))


def _in_daemon_worker() -> bool:
    """True inside a daemonic process (e.g. a REPRO_BENCH_JOBS pool
    worker), which the OS forbids from spawning shard children."""
    return multiprocessing.current_process().daemon


@register_executor("find_peak")
def _exec_find_peak(
    seed: int,
    system: str,
    size: int,
    start_rate: float,
    duration: float,
    warmup: float,
    refine_steps: int = 2,
    payment_budget: int = 150_000,
    max_probes: Optional[int] = None,
    reuse_state: bool = False,
    bracket: Optional[Tuple[float, float]] = None,
    builder_kwargs: Optional[Dict[str, Any]] = None,
    sim_shards: Optional[int] = None,
) -> PeakResult:
    """One whole peak-throughput search (internally adaptive = one job).

    With ``REPRO_SIM_SHARDS`` (or ``sim_shards``) > 1 the Astro cells run
    each probe on the intra-simulation sharded engine — the replicas of
    the *single* simulated deployment are partitioned across worker
    processes paced by per-channel conservative clocks
    (:mod:`repro.sim.shard`) and the merged probe results are
    byte-identical to the serial engine's, so the search takes the same
    decisions.  BFT cells always run serial (consensus replicas schedule
    timeout machinery at construction, which sharded workers cannot
    suppress on non-owned replicas).

    Astro II cells at N ≥
    :data:`~repro.bench.systems.CREDIT_COALESCE_AUTO_MIN_N` default to
    the ``auto`` CREDIT coalescing window unless ``REPRO_CREDIT_COALESCE``
    says otherwise — resolved inside the builders
    (:func:`repro.bench.systems.resolve_credit_coalesce`), so serial and
    sharded probes of one cell agree on the window.
    """
    search_kwargs = dict(
        start_rate=start_rate,
        duration=duration,
        warmup=warmup,
        refine_steps=refine_steps,
        seed=seed,
        payment_budget=payment_budget,
        max_probes=max_probes,
        reuse_state=reuse_state,
        bracket=tuple(bracket) if bracket is not None else None,
    )
    shards = resolve_shards(sim_shards)
    if shards > 1 and _in_daemon_worker():
        # A REPRO_BENCH_JOBS pool worker is daemonic and cannot spawn
        # shard processes; budget the two knobs against each other
        # (jobs × shards <= cores) and pick one axis per run.
        shards = 1
    if shards > 1 and system in ("astro1", "astro2"):
        spec = dict(
            system=system, size=size, seed=seed,
            builder_kwargs=builder_kwargs or None,
        )
        try:
            with ShardedOpenLoop(spec, shards=shards) as cluster:
                def sharded_probe(rate, probe_duration, probe_warmup, fresh):
                    return cluster.probe(
                        rate=rate, duration=probe_duration,
                        warmup=probe_warmup, fresh=fresh, seed=seed,
                    )

                return find_peak(None, probe_runner=sharded_probe, **search_kwargs)
        except ShardingUnsupported:
            # Raised either up front (non-Astro spec) or by the workers'
            # build validation relayed through the coordinator (latency
            # model without lookahead / pair streams / continuous jitter)
            # — always before any probe measured, so the serial engine
            # can simply run the whole search.
            pass
    return find_peak(
        _system_factory(system, size, seed, builder_kwargs), **search_kwargs
    )


@register_carry("fig3_warm_start")
def _carry_fig3_warm_start(previous: PeakResult, job: ScenarioJob) -> ScenarioJob:
    """Warm start: peaks decay with N, so the previous size's peak puts
    the next size's doubling search 1–2 probes from the answer."""
    return replace_params(job, start_rate=max(previous.peak_pps * 0.5, 50.0))


@register_executor("estimate_anchor")
def _exec_estimate_anchor(
    seed: int,
    system: str,
    size: int,
    rate: float,
    duration: float,
    warmup: float,
    payment_budget: int = 12_000,
) -> Dict[str, float]:
    """One cheap sub-saturation probe (size-major calibration anchor).

    Offered ``rate`` sits safely *below* the analytic capacity estimate;
    the bottleneck resource's measured utilization then extrapolates
    linearly to capacity (deterministic service times make per-payment
    cost rate-independent once batches fill): ``capacity ≈ rate / u``.
    This reads the whole peak-vs-N scale from a probe costing only
    ``rate × window`` simulated payments — a saturating probe against an
    overestimated analytic rate would cost an unbounded multiple of the
    true capacity.  If the probe saturated anyway (analytic estimate far
    too high), the achieved rate itself is the capacity reading.
    """
    duration, warmup = shrink_window(rate, duration, warmup, payment_budget)
    built = SYSTEM_BUILDERS[system](size, seed=seed)
    result = run_open_loop(
        built, rate=rate, duration=duration, warmup=warmup, seed=seed
    )
    # Utilization over the *injection* window only: the run continues
    # into an idle drain (sim.now includes it), which would dilute the
    # reading and inflate the extrapolated capacity.
    elapsed = warmup + duration
    utilization = 0.0
    for replica in built.replicas:
        transport = getattr(replica, "transport", replica)
        utilization = max(
            utilization,
            transport.cpu.utilization(elapsed),
            transport.link.utilization(elapsed),
        )
    if result.goodput_ratio < SATURATION_GOODPUT or utilization >= 0.99:
        capacity = result.achieved  # saturated: achieved reads capacity
    else:
        capacity = result.offered / max(utilization, 1e-3)
    return {
        "capacity_pps": capacity,
        "offered": result.offered,
        "achieved": result.achieved,
        "utilization": utilization,
    }


# ---------------------------------------------------------------------------
# Open-loop runs with message accounting (message-complexity ablation)
# ---------------------------------------------------------------------------


@register_executor("open_loop_messages")
def _exec_open_loop_messages(
    seed: int,
    system: str,
    size: int,
    rate: float,
    duration: float,
    warmup: float,
) -> Tuple[RunResult, int]:
    """Returns ``(RunResult, wire messages sent during the run)``."""
    built = SYSTEM_BUILDERS[system](size, seed=seed)
    before = built.network.stats.messages_sent
    result = run_open_loop(
        built, rate=rate, duration=duration, warmup=warmup, seed=seed
    )
    return result, built.network.stats.messages_sent - before


# ---------------------------------------------------------------------------
# Fig. 4 latency/throughput curves (peak anchor + sampled points)
# ---------------------------------------------------------------------------


@register_executor("fig4_curve")
def _exec_fig4_curve(
    seed: int,
    system: str,
    size: int,
    points: int,
    start_rate: float,
    duration: float,
    warmup: float,
) -> List[Tuple[float, float, float]]:
    """One system's whole curve: the sampled rates depend on the measured
    peak, so the sweep is a single sequential job per system."""
    factory = _system_factory(system, size, seed)
    peak = find_peak(
        factory,
        start_rate=start_rate,
        duration=duration,
        warmup=warmup,
        refine_steps=2,
        seed=seed,
    )
    curve: List[Tuple[float, float, float]] = []
    for step in range(1, points + 1):
        rate = peak.peak_pps * step / points
        if rate < 1:
            continue
        result = run_open_loop(
            factory(), rate=rate, duration=duration, warmup=warmup, seed=seed
        )
        if result.latency.count:
            curve.append(
                (result.achieved, result.latency.mean, result.latency.p95)
            )
    return curve


# ---------------------------------------------------------------------------
# Robustness timelines (Figs. 5–7)
# ---------------------------------------------------------------------------

#: BftConfig overrides for the Fig. 6 leader-timeout variants.  The
#: aggressive timeout must sit between healthy request latency (~40 ms)
#: and latency under a 100 ms-slowed leader (~200 ms), so the slow leader
#: is deposed but a healthy one never is (§VI-D's tuning trade-off).
_BFT_VARIANTS: Dict[str, Dict[str, Any]] = {
    "patient": {"request_timeout": 30.0},
    "aggressive": {"request_timeout": 0.12, "timeout_check_interval": 0.05},
}

#: The paper's asynchrony injection: 100 ms on all outgoing packets.
ASYNC_DELAY = 0.100


def _build_timeline_system(system: str, variant: Optional[str], size: int,
                           seed: int):
    kwargs: Dict[str, Any] = {}
    if variant is not None:
        if system != "bft":
            raise ValueError(f"config variant {variant!r} only applies to bft")
        kwargs["config"] = BftConfig(num_replicas=size, **_BFT_VARIANTS[variant])
    return SYSTEM_BUILDERS[system](size, seed=seed, **kwargs)


def _random_victim(system: Any, num_clients: int) -> int:
    """A non-leader replica representing exactly one active client.

    Matches the paper's observation that crashing a random Astro replica
    costs the throughput share of the clients it represented (~1 of 10).
    """
    index = min(num_clients, len(system.replicas)) - 1
    return system.replicas[index].node_id


def _fault_crash_leader(system: Any, at: float, num_clients: int) -> None:
    system.faults.crash(system.replicas[0].node_id, at=at)


def _fault_crash_random(system: Any, at: float, num_clients: int) -> None:
    system.faults.crash(_random_victim(system, num_clients), at=at)


def _fault_delay_leader(system: Any, at: float, num_clients: int) -> None:
    system.faults.delay_egress(system.replicas[0].node_id, ASYNC_DELAY, at=at)


def _fault_delay_random(system: Any, at: float, num_clients: int) -> None:
    system.faults.delay_egress(
        _random_victim(system, num_clients), ASYNC_DELAY, at=at
    )


_FAULTS = {
    "crash_leader": _fault_crash_leader,
    "crash_random": _fault_crash_random,
    "delay_leader": _fault_delay_leader,
    "delay_random": _fault_delay_random,
}


@register_executor("timeline")
def _exec_timeline(
    seed: int,
    system: str,
    size: int,
    fault: Optional[str],
    num_clients: int,
    warmup: float,
    window: float,
    fault_offset: float,
    variant: Optional[str] = None,
) -> TimelineResult:
    built = _build_timeline_system(system, variant, size, seed)
    fault_fn = None
    if fault is not None:
        handler = _FAULTS[fault]
        fault_fn = functools.partial(handler, num_clients=num_clients)
    return run_timeline(
        built,
        num_clients=num_clients,
        warmup=warmup,
        window=window,
        fault=fault_fn,
        fault_offset=fault_offset,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Table I cells (sharded Smallbank + BFT upper bound)
# ---------------------------------------------------------------------------


@register_executor("table1_astro2")
def _exec_table1_astro2(
    seed: int,
    shards: int,
    shard_size: int,
    delay_ms: float,
    duration: float,
    **knobs: Any,
) -> Tuple[float, float, float]:
    from .table1 import measure_astro2_cell

    return measure_astro2_cell(
        shards, shard_size, delay_ms, duration, seed, **knobs
    )


@register_executor("table1_bft")
def _exec_table1_bft(
    seed: int,
    shard_size: int,
    delay_ms: float,
    duration: float,
    **knobs: Any,
) -> float:
    from .table1 import measure_bft_upper_bound

    return measure_bft_upper_bound(
        shard_size, delay_ms, duration, seed, **knobs
    )


# ---------------------------------------------------------------------------
# Fig. 8 reconfiguration latencies
# ---------------------------------------------------------------------------


@register_executor("astro_join_series")
def _exec_astro_join_series(
    seed: int, sizes: Sequence[int], state_bytes: int
) -> List[float]:
    """The whole join series is one job: each join grows the same system,
    so the sweep is inherently sequential."""
    from .fig8 import measure_astro_join_series

    return measure_astro_join_series(sizes, seed=seed, state_bytes=state_bytes)


@register_executor("consensus_join")
def _exec_consensus_join(seed: int, size: int, state_bytes: int) -> float:
    from ..reconfig.consensus_reconfig import measure_consensus_join_latency

    return measure_consensus_join_latency(
        size, state_bytes=state_bytes, seed=seed
    )


# ---------------------------------------------------------------------------
# Byzantine robustness cells (BENCH_byzantine)
# ---------------------------------------------------------------------------


@register_executor("adversary_timeline")
def _exec_adversary_timeline(seed: int, **params: Any) -> Dict[str, Any]:
    """One (system × attack) Byzantine timeline with invariant monitoring.

    Lazily imported like the Table I executors: ``repro.bench.adversary``
    pulls in the whole adversary subsystem, which benign sweeps should
    not pay for.
    """
    from .adversary import run_adversary_cell

    return run_adversary_cell(seed=seed, **params)
