"""Figs. 5–7 — performance robustness under crash-stop and asynchrony.

Reproduces §VI-D: 10 single-threaded closed-loop clients drive each
system below saturation; after a warm-up, a fault hits one replica:

* **Fig. 5** (crash, N=49): crashing the consensus *leader* zeroes
  throughput until the view change completes; crashing a random replica
  only dips briefly; crashing a random Astro replica costs exactly the
  share of clients it represented.
* **Fig. 6** (100 ms egress delay, N=49): a slowed consensus leader either
  limps along at degraded throughput (timeline A, long timeout) or is
  deposed by a view change (timeline B, short timeout); a slowed random
  replica causes a brief quorum switch; a slowed Astro replica only slows
  its own clients.
* **Fig. 7** repeats both faults at N=100, where the view change takes
  far longer.

Scaled-down sizes are used by default (the paper itself notes "similar
observations emerge" at other sizes); ``REPRO_BENCH_SCALE=full`` restores
N=49/100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..consensus.config import BftConfig
from .report import format_series, format_table
from .scale import BenchScale, current_scale
from .systems import build_astro1, build_bft
from .timeline import TimelineResult, run_timeline

__all__ = [
    "RobustnessResult",
    "run_crash_robustness",
    "run_asynchrony_robustness",
    "run_large_scale_robustness",
]

#: The paper's asynchrony injection: 100 ms on all outgoing packets.
ASYNC_DELAY = 0.100

#: Clients in every robustness run (§VI-D).
NUM_CLIENTS = 10


@dataclass
class RobustnessResult:
    """Named per-second throughput timelines (one per curve in the figure)."""

    title: str
    size: int
    timelines: Dict[str, TimelineResult]

    def table(self) -> str:
        headers = ["timeline", "before (pps)", "after (pps)", "min after (pps)"]
        rows = []
        for name, timeline in self.timelines.items():
            rows.append([
                name,
                f"{timeline.before_fault():.0f}",
                f"{timeline.after_fault():.0f}",
                f"{timeline.min_after_fault():.0f}",
            ])
        return format_table(headers, rows, title=self.title)

    def series_dump(self) -> str:
        lines = []
        for name, timeline in self.timelines.items():
            lines.append(f"{name}: {format_series(timeline.series)}")
        return "\n".join(lines)


def _random_victim(system) -> int:
    """A non-leader replica representing exactly one active client.

    Matches the paper's observation that crashing a random Astro replica
    costs the throughput share of the clients it represented (~1 of 10).
    """
    index = min(NUM_CLIENTS, len(system.replicas)) - 1
    return system.replicas[index].node_id


def _crash_leader(system, at: float) -> None:
    system.faults.crash(system.replicas[0].node_id, at=at)


def _crash_random(system, at: float) -> None:
    system.faults.crash(_random_victim(system), at=at)


def _delay_leader(system, at: float) -> None:
    system.faults.delay_egress(system.replicas[0].node_id, ASYNC_DELAY, at=at)


def _delay_random(system, at: float) -> None:
    system.faults.delay_egress(_random_victim(system), ASYNC_DELAY, at=at)


def run_crash_robustness(
    size: int = 0,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> RobustnessResult:
    """Fig. 5: crash-stop at t = warmup + offset."""
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.robustness_small_n
    timelines: Dict[str, TimelineResult] = {}
    scenarios = [
        ("Consensus-Leader", build_bft, _crash_leader),
        ("Consensus-Random", build_bft, _crash_random),
        ("Broadcast-Random", build_astro1, _crash_random),
    ]
    for name, builder, fault in scenarios:
        system = builder(size, seed=seed)
        timelines[name] = run_timeline(
            system,
            num_clients=NUM_CLIENTS,
            warmup=scale.robustness_warmup,
            window=scale.robustness_window,
            fault=fault,
            fault_offset=scale.robustness_window / 4,
            seed=seed,
        )
    return RobustnessResult(
        title=f"Fig. 5 — throughput under crash-stop (N={size})",
        size=size,
        timelines=timelines,
    )


def run_asynchrony_robustness(
    size: int = 0,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> RobustnessResult:
    """Fig. 6: 100 ms egress delay at one replica.

    ``Consensus-Leader-A`` keeps the default (long) request timeout, so
    the slowed leader stays: degraded steady state.  ``Consensus-Leader-B``
    uses an aggressive timeout, so a view change deposes the leader and
    throughput recovers — the trade-off the paper discusses.
    """
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.robustness_small_n
    timelines: Dict[str, TimelineResult] = {}

    def build_bft_patient(n: int, seed: int = 0):
        return build_bft(n, seed=seed, config=BftConfig(
            num_replicas=n, request_timeout=30.0,
        ))

    def build_bft_aggressive(n: int, seed: int = 0):
        # The timeout must sit between healthy request latency (~40 ms
        # here) and the latency under a 100 ms-slowed leader (~200 ms),
        # so the slow leader is deposed but a healthy one never is —
        # exactly the tuning trade-off §VI-D discusses.
        return build_bft(n, seed=seed, config=BftConfig(
            num_replicas=n, request_timeout=0.12,
            timeout_check_interval=0.05,
        ))

    scenarios = [
        ("Consensus-Leader-A", build_bft_patient, _delay_leader),
        ("Consensus-Leader-B", build_bft_aggressive, _delay_leader),
        ("Consensus-Random", build_bft, _delay_random),
        ("Broadcast-Random", build_astro1, _delay_random),
    ]
    for name, builder, fault in scenarios:
        system = builder(size, seed=seed)
        timelines[name] = run_timeline(
            system,
            num_clients=NUM_CLIENTS,
            warmup=scale.robustness_warmup,
            window=scale.robustness_window,
            fault=fault,
            fault_offset=scale.robustness_window / 4,
            seed=seed,
        )
    return RobustnessResult(
        title=f"Fig. 6 — throughput under asynchrony (N={size})",
        size=size,
        timelines=timelines,
    )


def run_large_scale_robustness(
    size: int = 0,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
) -> RobustnessResult:
    """Fig. 7: both fault kinds at the large size (paper: N=100)."""
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.robustness_large_n
    timelines: Dict[str, TimelineResult] = {}
    scenarios = [
        ("Consensus-Fail", build_bft, _crash_leader),
        ("Consensus-Async", build_bft, _delay_leader),
        ("Broadcast-Fail", build_astro1, _crash_random),
        ("Broadcast-Async", build_astro1, _delay_random),
    ]
    for name, builder, fault in scenarios:
        system = builder(size, seed=seed)
        timelines[name] = run_timeline(
            system,
            num_clients=NUM_CLIENTS,
            warmup=scale.robustness_warmup,
            window=scale.robustness_window,
            fault=fault,
            fault_offset=scale.robustness_window / 4,
            seed=seed,
        )
    return RobustnessResult(
        title=f"Fig. 7 — robustness at large scale (N={size})",
        size=size,
        timelines=timelines,
    )
