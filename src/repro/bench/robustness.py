"""Figs. 5–7 — performance robustness under crash-stop and asynchrony.

Reproduces §VI-D: 10 single-threaded closed-loop clients drive each
system below saturation; after a warm-up, a fault hits one replica:

* **Fig. 5** (crash, N=49): crashing the consensus *leader* zeroes
  throughput until the view change completes; crashing a random replica
  only dips briefly; crashing a random Astro replica costs exactly the
  share of clients it represented.
* **Fig. 6** (100 ms egress delay, N=49): a slowed consensus leader either
  limps along at degraded throughput (timeline A, long timeout) or is
  deposed by a view change (timeline B, short timeout); a slowed random
  replica causes a brief quorum switch; a slowed Astro replica only slows
  its own clients.
* **Fig. 7** repeats both faults at N=100, where the view change takes
  far longer.

Scaled-down sizes are used by default (the paper itself notes "similar
observations emerge" at other sizes); ``REPRO_BENCH_SCALE=full`` restores
N=49/100.

Execution model: every timeline (one curve of one figure) is an
independent ``timeline`` job — system builder, config variant, and fault
are all named in the picklable descriptor (resolved in the worker by
:mod:`repro.bench.jobs`) — so a figure's curves run concurrently on the
parallel backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .estimate import job_memory_bytes
from .jobs import ASYNC_DELAY  # noqa: F401  (re-exported; value is §VI-D's 100 ms)
from .parallel import ScenarioJob, execute
from .report import format_series, format_table
from .scale import BenchScale, current_scale
from .timeline import TimelineResult

__all__ = [
    "RobustnessResult",
    "run_crash_robustness",
    "run_asynchrony_robustness",
    "run_large_scale_robustness",
    "run_robustness_suite",
]

#: Clients in every robustness run (§VI-D).
NUM_CLIENTS = 10


@dataclass
class RobustnessResult:
    """Named per-second throughput timelines (one per curve in the figure)."""

    title: str
    size: int
    timelines: Dict[str, TimelineResult]

    def table(self) -> str:
        headers = ["timeline", "before (pps)", "after (pps)", "min after (pps)"]
        rows = []
        for name, timeline in self.timelines.items():
            rows.append([
                name,
                f"{timeline.before_fault():.0f}",
                f"{timeline.after_fault():.0f}",
                f"{timeline.min_after_fault():.0f}",
            ])
        return format_table(headers, rows, title=self.title)

    def series_dump(self) -> str:
        lines = []
        for name, timeline in self.timelines.items():
            lines.append(f"{name}: {format_series(timeline.series)}")
        return "\n".join(lines)


#: (curve name, system, config variant, fault) per figure.
_Scenario = Tuple[str, str, Optional[str], str]

_FIG5_SCENARIOS: List[_Scenario] = [
    ("Consensus-Leader", "bft", None, "crash_leader"),
    ("Consensus-Random", "bft", None, "crash_random"),
    ("Broadcast-Random", "astro1", None, "crash_random"),
]

# Fig. 6: ``Consensus-Leader-A`` keeps a long request timeout, so the
# slowed leader stays (degraded steady state); ``Consensus-Leader-B``
# uses an aggressive timeout, so a view change deposes the leader and
# throughput recovers — the trade-off the paper discusses.
_FIG6_SCENARIOS: List[_Scenario] = [
    ("Consensus-Leader-A", "bft", "patient", "delay_leader"),
    ("Consensus-Leader-B", "bft", "aggressive", "delay_leader"),
    ("Consensus-Random", "bft", None, "delay_random"),
    ("Broadcast-Random", "astro1", None, "delay_random"),
]

_FIG7_SCENARIOS: List[_Scenario] = [
    ("Consensus-Fail", "bft", None, "crash_leader"),
    ("Consensus-Async", "bft", None, "delay_leader"),
    ("Broadcast-Fail", "astro1", None, "crash_random"),
    ("Broadcast-Async", "astro1", None, "delay_random"),
]


def _enumerate_scenarios(
    scenarios: List[_Scenario],
    size: int,
    scale: BenchScale,
    seed: int,
) -> List[ScenarioJob]:
    """One independent ``timeline`` job per fault curve of one figure."""
    return [
        ScenarioJob(
            kind="timeline",
            params=dict(
                system=system,
                size=size,
                variant=variant,
                fault=fault,
                num_clients=NUM_CLIENTS,
                warmup=scale.robustness_warmup,
                window=scale.robustness_window,
                fault_offset=scale.robustness_window / 4,
            ),
            seed=seed,
            tag=name,
        )
        for name, system, variant, fault in scenarios
    ]


def _assemble(
    units: List[ScenarioJob], results: List[TimelineResult],
    title: str, size: int,
) -> RobustnessResult:
    timelines = {unit.tag: result for unit, result in zip(units, results)}
    return RobustnessResult(title=title, size=size, timelines=timelines)


def _run_scenarios(
    scenarios: List[_Scenario],
    title: str,
    size: int,
    scale: BenchScale,
    seed: int,
    label: str,
    jobs: Optional[int],
) -> RobustnessResult:
    units = _enumerate_scenarios(scenarios, size, scale, seed)
    results = execute(
        units, jobs=jobs, label=f"{label}[{scale.name}]",
        per_job_bytes=job_memory_bytes(size),
    )
    return _assemble(units, results, title, size)


def run_crash_robustness(
    size: int = 0,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> RobustnessResult:
    """Fig. 5: crash-stop at t = warmup + offset."""
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.robustness_small_n
    return _run_scenarios(
        _FIG5_SCENARIOS,
        title=f"Fig. 5 — throughput under crash-stop (N={size})",
        size=size, scale=scale, seed=seed, label="fig5", jobs=jobs,
    )


def run_asynchrony_robustness(
    size: int = 0,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> RobustnessResult:
    """Fig. 6: 100 ms egress delay at one replica."""
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.robustness_small_n
    return _run_scenarios(
        _FIG6_SCENARIOS,
        title=f"Fig. 6 — throughput under asynchrony (N={size})",
        size=size, scale=scale, seed=seed, label="fig6", jobs=jobs,
    )


def run_large_scale_robustness(
    size: int = 0,
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> RobustnessResult:
    """Fig. 7: both fault kinds at the large size (paper: N=100)."""
    if scale is None:
        scale = current_scale()
    if size == 0:
        size = scale.robustness_large_n
    return _run_scenarios(
        _FIG7_SCENARIOS,
        title=f"Fig. 7 — robustness at large scale (N={size})",
        size=size, scale=scale, seed=seed, label="fig7", jobs=jobs,
    )


def run_robustness_suite(
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Tuple[RobustnessResult, RobustnessResult, RobustnessResult]:
    """Figs. 5–7 as one pooled schedule: every fault timeline of every
    figure is an independent job in a single :func:`execute` call.

    Run figure-by-figure, each figure is a small barrier gated on its
    slowest member — and Fig. 7's large-N view-change timelines dominate
    a 4-job sweep while the other workers idle.  Pooling all 11 timelines
    lets Figs. 5/6's cheaper cells fill the idle workers alongside the
    dominant N=100 cells, so the suite's wall-clock approaches the single
    slowest timeline instead of the sum of three stragglers.

    Results are byte-identical to the per-figure entry points: the same
    descriptors run with the same per-cell seeds, only scheduling differs.
    """
    if scale is None:
        scale = current_scale()
    small, large = scale.robustness_small_n, scale.robustness_large_n
    figures = [
        (_FIG5_SCENARIOS, f"Fig. 5 — throughput under crash-stop (N={small})", small),
        (_FIG6_SCENARIOS, f"Fig. 6 — throughput under asynchrony (N={small})", small),
        (_FIG7_SCENARIOS, f"Fig. 7 — robustness at large scale (N={large})", large),
    ]
    per_figure_units = [
        _enumerate_scenarios(scenarios, size, scale, seed)
        for scenarios, _title, size in figures
    ]
    units = [unit for figure_units in per_figure_units for unit in figure_units]
    results = execute(
        units, jobs=jobs, label=f"robustness-suite[{scale.name}]",
        per_job_bytes=job_memory_bytes(large),
    )
    assembled = []
    cursor = 0
    for (scenarios, title, size), figure_units in zip(figures, per_figure_units):
        figure_results = results[cursor:cursor + len(figure_units)]
        cursor += len(figure_units)
        assembled.append(_assemble(figure_units, figure_results, title, size))
    return tuple(assembled)
