"""Table I — Smallbank sharded benchmark (§VI-C2).

Paper setup: Astro II with 2/3/4 shards of 52 replicas each, Smallbank
workload with 12.5 % cross-shard transactions, with and without an extra
20 ms inter-replica delay (tc).  The BFT-SMaRt column is an optimistic
single-shard upper bound (the paper omits its 2PC cross-shard cost), and
so is ours.

Paper anchors (per-shard \\ total Kpps; latency avg \\ p95 ms):

====  =====  ==================  ===============  =============
 #     tc     Astro II thr.       Astro II lat.    BFT-S thr.
====  =====  ==================  ===============  =============
 2      0     7.9 \\ 15.7         204 \\ 279        1.0 \\ 2.0
 2     20     5.1 \\ 10.2         479 \\ 705        0.3 \\ 0.5
 3      0     5.1 \\ 15.4         213 \\ 375        1.0 \\ 3.1
 3     20     4.5 \\ 13.6         368 \\ 656        0.3 \\ 0.8
 4      0     5.0 \\ 20.1         213 \\ 259        1.0 \\ 4.1
 4     20     4.5 \\ 18.1         354 \\ 620        0.3 \\ 1.1
====  =====  ==================  ===============  =============

Reproduced claims: total throughput scales near-linearly with shards,
per-shard throughput decreases slightly with more shards (more cross-shard
traffic), the 20 ms delay costs throughput and latency, and Astro II's
totals dominate the consensus upper bound by ~5×.

Execution model: every (shards, tc) cell is one ``table1_astro2`` job and
every tc value one ``table1_bft`` job (the single-shard upper bound is
shared across shard counts, exactly as the old per-delay cache did); all
jobs are independent and run concurrently on the parallel backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.system import Astro2System
from ..consensus.system import BftSystem
from ..sim.latency import europe_wan
from ..workloads.smallbank import (
    SmallbankWorkload,
    shard_assignment,
    smallbank_genesis,
)
from .parallel import ScenarioJob, execute
from .peak import find_peak
from .report import format_table
from .runner import run_open_loop
from .estimate import job_memory_bytes
from .scale import BenchScale, current_scale

__all__ = [
    "Table1Row",
    "Table1Result",
    "run_table1",
    "measure_astro2_cell",
    "measure_bft_upper_bound",
]

#: Account owners per shard in the Smallbank population.
OWNERS_PER_SHARD = 32


@dataclass
class Table1Row:
    shards: int
    tc_delay_ms: float
    per_shard_kpps: float
    total_kpps: float
    latency_avg_ms: float
    latency_p95_ms: float
    bft_per_shard_kpps: float
    bft_total_kpps: float


@dataclass
class Table1Result:
    rows: List[Table1Row]
    shard_size: int

    def table(self) -> str:
        headers = [
            "#", "tc (ms)",
            "AstroII per-shard\\total (Kpps)", "AstroII lat avg\\p95 (ms)",
            "BFT-S per-shard\\total (Kpps)",
        ]
        rendered = []
        for row in self.rows:
            rendered.append([
                row.shards,
                f"{row.tc_delay_ms:.0f}",
                f"{row.per_shard_kpps:.1f} \\ {row.total_kpps:.1f}",
                f"{row.latency_avg_ms:.0f} \\ {row.latency_p95_ms:.0f}",
                f"{row.bft_per_shard_kpps:.1f} \\ {row.bft_total_kpps:.1f}",
            ])
        return format_table(
            headers, rendered,
            title=(
                f"Table I — Smallbank sharded benchmark "
                f"({self.shard_size} replicas/shard)"
            ),
        )


def _build_smallbank_astro2(
    shards: int, shard_size: int, delay_ms: float, seed: int
) -> Tuple[Astro2System, SmallbankWorkload]:
    owners = OWNERS_PER_SHARD * shards
    genesis = smallbank_genesis(owners, num_shards=shards)
    assignment = shard_assignment(owners, shards)
    total = shards * shard_size
    system = Astro2System(
        num_replicas=shard_size,
        num_shards=shards,
        genesis=genesis,
        seed=seed,
        latency=europe_wan(total + 512, seed=seed),
        shard_assignment=assignment,
    )
    if delay_ms > 0:
        for replica in system.replicas:
            system.network.set_egress_delay(replica.node_id, delay_ms / 1e3)
    workload = SmallbankWorkload(owners, num_shards=shards, seed=seed)
    return system, workload


def measure_astro2_cell(
    shards: int,
    shard_size: int,
    delay_ms: float,
    duration: float,
    seed: int,
    payment_budget: int = 150_000,
    max_probes: Optional[int] = None,
    reuse_state: bool = False,
) -> Tuple[float, float, float]:
    """Returns (total pps, avg latency s, p95 latency s) at peak load."""

    def factory() -> Astro2System:
        system, _ = _build_smallbank_astro2(shards, shard_size, delay_ms, seed)
        return system

    peak = find_peak(
        factory,
        start_rate=8000.0 * shards,
        duration=duration / 2,
        warmup=duration / 3,
        refine_steps=1,
        seed=seed,
        workload_factory=lambda _system: SmallbankWorkload(
            OWNERS_PER_SHARD * shards, num_shards=shards, seed=seed
        ),
        payment_budget=payment_budget,
        max_probes=max_probes,
        reuse_state=reuse_state,
    )
    # One clean confirmation run just below peak for latency numbers.
    system, workload = _build_smallbank_astro2(shards, shard_size, delay_ms, seed)
    result = run_open_loop(
        system,
        rate=max(peak.peak_pps * 0.9, 1.0),
        duration=duration,
        warmup=duration / 2,
        workload=workload,
        seed=seed,
    )
    return result.achieved, result.latency.mean, result.latency.p95


def measure_bft_upper_bound(
    shard_size: int,
    delay_ms: float,
    duration: float,
    seed: int,
    payment_budget: int = 150_000,
    max_probes: Optional[int] = None,
    reuse_state: bool = False,
) -> float:
    """Single-shard BFT-SMaRt peak (the paper's optimistic upper bound)."""

    def factory() -> BftSystem:
        owners = OWNERS_PER_SHARD
        genesis = smallbank_genesis(owners, num_shards=1)
        system = BftSystem(
            num_replicas=shard_size,
            genesis=genesis,
            seed=seed,
            latency=europe_wan(shard_size + 256, seed=seed),
        )
        if delay_ms > 0:
            for replica in system.replicas:
                system.network.set_egress_delay(replica.node_id, delay_ms / 1e3)
        return system

    peak = find_peak(
        factory,
        start_rate=2000.0,
        duration=duration / 2,
        warmup=duration / 3,
        refine_steps=1,
        seed=seed,
        workload_factory=lambda sys_: SmallbankWorkload(
            OWNERS_PER_SHARD, num_shards=1, seed=seed
        ),
        payment_budget=payment_budget,
        max_probes=max_probes,
        reuse_state=reuse_state,
    )
    return peak.peak_pps


def run_table1(
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    delays_ms: Tuple[float, ...] = (0.0, 20.0),
    jobs: Optional[int] = None,
) -> Table1Result:
    if scale is None:
        scale = current_scale()
    knobs = dict(
        payment_budget=scale.peak_payment_budget,
        max_probes=scale.peak_probe_cap,
        reuse_state=scale.peak_reuse_state,
    )
    units: List[ScenarioJob] = [
        ScenarioJob(
            kind="table1_astro2",
            params=dict(
                shards=shards,
                shard_size=scale.table1_shard_size,
                delay_ms=delay_ms,
                duration=scale.table1_duration,
                **knobs,
            ),
            seed=seed,
            tag=("astro2", shards, delay_ms),
        )
        for shards in scale.table1_shard_counts
        for delay_ms in delays_ms
    ]
    # The BFT column is a single-shard upper bound shared by every shard
    # count: one job per delay value (the old code's per-delay cache).
    units += [
        ScenarioJob(
            kind="table1_bft",
            params=dict(
                shard_size=scale.table1_shard_size,
                delay_ms=delay_ms,
                duration=scale.table1_duration,
                **knobs,
            ),
            seed=seed,
            tag=("bft", delay_ms),
        )
        for delay_ms in delays_ms
    ]
    results = execute(
        units, jobs=jobs, label=f"table1[{scale.name}]",
        per_job_bytes=job_memory_bytes(
            max(scale.table1_shard_counts) * scale.table1_shard_size
        ),
    )
    by_tag = dict(zip((unit.tag for unit in units), results))
    rows: List[Table1Row] = []
    for shards in scale.table1_shard_counts:
        for delay_ms in delays_ms:
            total, avg, p95 = by_tag[("astro2", shards, delay_ms)]
            bft_per_shard = by_tag[("bft", delay_ms)]
            rows.append(
                Table1Row(
                    shards=shards,
                    tc_delay_ms=delay_ms,
                    per_shard_kpps=total / shards / 1e3,
                    total_kpps=total / 1e3,
                    latency_avg_ms=avg * 1e3,
                    latency_p95_ms=p95 * 1e3,
                    bft_per_shard_kpps=bft_per_shard / 1e3,
                    bft_total_kpps=bft_per_shard * shards / 1e3,
                )
            )
    return Table1Result(rows=rows, shard_size=scale.table1_shard_size)
