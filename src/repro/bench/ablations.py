"""Ablation experiments for design choices the paper calls out.

* **Batching (§VI-A)** — "we use one signature per batch of 256 payments.
  With this batch size, Astro II's performance is only limited by
  available bandwidth."  The ablation sweeps the batch size and shows
  throughput collapsing when signatures stop being amortized.
* **Message complexity (§IV-A)** — Astro I's BRB is O(N²) messages,
  Astro II's O(N).  The ablation counts actual wire messages per settled
  payment at several sizes.

Both sweeps are embarrassingly parallel: every batch size (and every
(system, size) cell) is an independent job on the parallel backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import AstroConfig
from .parallel import ScenarioJob, execute
from .report import format_table
from .estimate import job_memory_bytes
from .scale import BenchScale, current_scale

__all__ = [
    "BatchingAblation",
    "run_batching_ablation",
    "MessageComplexityAblation",
    "run_message_complexity_ablation",
]


@dataclass
class BatchingAblation:
    size: int
    batch_sizes: List[int]
    peaks: List[float]

    def table(self) -> str:
        rows = [
            [batch, f"{peak:.0f}"]
            for batch, peak in zip(self.batch_sizes, self.peaks)
        ]
        return format_table(
            ["batch size", "Astro II peak (pps)"], rows,
            title=f"Ablation — signature batching (§VI-A), N={self.size}",
        )


def run_batching_ablation(
    size: int = 4,
    batch_sizes: Sequence[int] = (1, 16, 64, 256),
    seed: int = 0,
    scale: Optional[BenchScale] = None,
    jobs: Optional[int] = None,
) -> BatchingAblation:
    if scale is None:
        scale = current_scale()
    units = [
        ScenarioJob(
            kind="find_peak",
            params=dict(
                system="astro2",
                size=size,
                start_rate=max(200.0, 20.0 * batch),
                duration=scale.peak_duration,
                warmup=scale.peak_warmup,
                refine_steps=2,
                payment_budget=scale.peak_payment_budget,
                max_probes=scale.peak_probe_cap,
                reuse_state=scale.peak_reuse_state,
                builder_kwargs=dict(
                    config=AstroConfig(num_replicas=size, batch_size=batch)
                ),
            ),
            seed=seed,
            tag=batch,
        )
        for batch in batch_sizes
    ]
    results = execute(
        units, jobs=jobs, label=f"ablation_batching[{scale.name}]",
        per_job_bytes=job_memory_bytes(size),
    )
    return BatchingAblation(
        size=size,
        batch_sizes=list(batch_sizes),
        peaks=[result.peak_pps for result in results],
    )


@dataclass
class MessageComplexityAblation:
    sizes: List[int]
    #: system -> messages per settled payment, per size
    messages_per_payment: Dict[str, List[float]]

    def table(self) -> str:
        headers = ["N", "Astro I msgs/payment", "Astro II msgs/payment", "ratio"]
        rows = []
        for index, size in enumerate(self.sizes):
            astro1 = self.messages_per_payment["astro1"][index]
            astro2 = self.messages_per_payment["astro2"][index]
            rows.append(
                [size, f"{astro1:.1f}", f"{astro2:.1f}", f"{astro1 / astro2:.1f}x"]
            )
        return format_table(
            headers, rows,
            title="Ablation — BRB message complexity (O(N^2) vs O(N), §IV-A)",
        )


def run_message_complexity_ablation(
    sizes: Sequence[int] = (4, 10, 22, 46),
    rate: float = 2000.0,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> MessageComplexityAblation:
    units = [
        ScenarioJob(
            kind="open_loop_messages",
            params=dict(
                system=name, size=size, rate=rate, duration=1.0, warmup=0.5
            ),
            seed=seed,
            tag=(name, size),
        )
        for size in sizes
        for name in ("astro1", "astro2")
    ]
    results = execute(
        units, jobs=jobs, label="ablation_messages",
        per_job_bytes=job_memory_bytes(max(sizes)),
    )
    messages: Dict[str, List[float]] = {"astro1": [], "astro2": []}
    for unit, (result, sent) in zip(units, results):
        name, _size = unit.tag
        settled = max(result.confirmed, 1)
        messages[name].append(sent / settled)
    return MessageComplexityAblation(
        sizes=list(sizes), messages_per_payment=messages
    )
