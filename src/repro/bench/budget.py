"""Per-cell wall-clock budgets for the full-scale Fig. 3 sweep.

The scheduled ``fig3-full`` workflow (``.github/workflows/fig3-full.yml``)
runs ``REPRO_BENCH_SCALE=full`` Fig. 3 end-to-end and must fail loudly
when any (system, size) cell gets dramatically slower — a harness
regression (e.g. the sharded engine livelocking on null-message chatter)
would otherwise only surface as a silently longer nightly run.  This
module supplies that guard in three pieces:

1. an **analytic cost model**: simulated events a cell will process,
   derived from the same scale knobs and capacity curve the sweep itself
   uses (:mod:`repro.bench.estimate`);
2. a **host calibration** kernel: a short heap-churn microbenchmark
   whose throughput converts model events into wall-clock seconds on
   *this* machine, so budgets travel with the artifact instead of
   assuming CI hardware;
3. a **checker CLI** (``python -m repro.bench.budget BENCH_sweeps.json``)
   that exits non-zero when any recorded cell exceeded its budget.

Budgets are attached to cells at enumeration time (``run_fig3`` passes
them into :func:`repro.bench.parallel.execute`, which records a
``"budget_seconds"`` field next to each cell's measured ``"seconds"`` in
``BENCH_sweeps.json``), so the checker never recomputes the model — it
audits exactly what the measuring host promised.

The model is deliberately generous (safety factor ≈ 4×): it exists to
catch multi-x blowups, not scheduler noise.  ``REPRO_BUDGET_FACTOR``
scales every budget (e.g. ``2.0`` on a noisy shared runner) and
``REPRO_BUDGET_EPS`` pins the calibration (events/second) for
deterministic tests.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .estimate import analytic_capacity
from .scale import BenchScale, current_scale

__all__ = [
    "check_report",
    "fig3_anchor_budget_seconds",
    "fig3_budgets",
    "fig3_cell_budget_seconds",
    "host_events_per_second",
]

#: Environment knobs.
FACTOR_ENV = "REPRO_BUDGET_FACTOR"
EPS_ENV = "REPRO_BUDGET_EPS"

#: Headroom multiplier baked into every budget: the model only has to be
#: right within ~4× for the guard to separate regressions from noise.
SAFETY_FACTOR = 4.0

#: Smallest budget ever emitted — tiny cells are all constant overhead
#: (interpreter start, system build) that the event model does not see.
MIN_BUDGET_SECONDS = 10.0

#: Paper batch size (§VI-A); payments amortize per-batch event costs.
_BATCH = 256

#: Calibration-kernel throughput of the reference host (the dev
#: container the event-cost constant below was fitted on).  Budgets on
#: other machines scale by ``measured_eps / _REFERENCE_EPS``.
_REFERENCE_EPS = 2.0e6

#: Wall-clock seconds one *model* event costs on the reference host.
#: Fitted against measured smoke/quick Fig. 3 cell timings (the real
#: simulator does far more per event than the calibration kernel:
#: resource accounting, latency draws, crypto cost bookkeeping).
_REFERENCE_SECONDS_PER_EVENT = 2.0e-5

#: Probe count assumed for scales with an unlimited ``max_probes``
#: (full): bracket hints + doubling walk + two refinement bisections.
_UNCAPPED_PROBES = 16


def _events_per_payment(system: str, size: int) -> float:
    """Model events one injected payment triggers, amortized over a batch.

    Coarse by design — see the module docstring.  Per batch: Astro II
    ships O(N) messages (PREPARE fan-out, quorum ACKs, CREDIT unicasts),
    Astro I's echo BRB and the BFT baseline's two quorum phases are both
    O(N²); every system settles the batch at all N replicas.  The
    constant term covers injection, confirmation, and latency sampling.
    """
    if system == "astro2":
        per_batch = 8.0 * size
    elif system == "astro1":
        per_batch = 2.5 * size * size
    elif system == "bft":
        per_batch = 2.5 * size * size
    else:
        raise ValueError(f"unknown system {system!r}")
    return 6.0 + (per_batch + size) / _BATCH


def _build_events(size: int) -> float:
    """Cold-start construction cost per probe, in model events (latency
    tables and genesis state grow with the square of the population)."""
    population = 5 * size + 64
    return 10_000.0 + 4.0 * population * population


def host_events_per_second(sample_events: int = 200_000) -> float:
    """Calibration-kernel throughput of this host (memoized).

    The kernel churns a bounded heap of ``(time, seq, key)`` tuples with
    a little dict bookkeeping per event — the shape of the simulator's
    inner loop.  Only the *ratio* to :data:`_REFERENCE_EPS` is used.
    ``REPRO_BUDGET_EPS`` overrides the measurement (deterministic tests,
    or runners whose first-minute CPU burst is unrepresentative).
    """
    override = os.environ.get(EPS_ENV)
    if override is not None:
        eps = float(override)
        if eps <= 0:
            raise ValueError(f"{EPS_ENV} must be > 0, got {override!r}")
        return eps
    cached = getattr(host_events_per_second, "_cached", None)
    if cached is not None:
        return cached
    heap: List[Tuple[float, int, int]] = []
    state: Dict[int, float] = {}
    push, pop = heapq.heappush, heapq.heappop
    started = time.perf_counter()
    for index in range(sample_events):
        push(heap, (index * 1e-4, index, index & 1023))
        if len(heap) > 64:
            when, seq, key = pop(heap)
            state[key] = when + seq
    elapsed = time.perf_counter() - started
    eps = sample_events / max(elapsed, 1e-9)
    host_events_per_second._cached = eps
    return eps


def _budget_factor() -> float:
    raw = os.environ.get(FACTOR_ENV)
    if raw is None:
        return 1.0
    factor = float(raw)
    if factor <= 0:
        raise ValueError(f"{FACTOR_ENV} must be > 0, got {raw!r}")
    return factor


def _seconds_for_events(events: float) -> float:
    speed = host_events_per_second() / _REFERENCE_EPS
    seconds = events * _REFERENCE_SECONDS_PER_EVENT / max(speed, 1e-6)
    return max(MIN_BUDGET_SECONDS, seconds * SAFETY_FACTOR * _budget_factor())


def fig3_cell_budget_seconds(
    system: str, size: int, scale: Optional[BenchScale] = None
) -> float:
    """Wall-clock budget for one size-major ``find_peak`` cell.

    Every probe simulates ``warmup + duration`` seconds at rates the
    search brackets around the analytic capacity; the payment budget
    caps what an over-rate probe can cost.
    """
    if scale is None:
        scale = current_scale()
    capacity = analytic_capacity(system, size)
    window = scale.peak_duration + scale.peak_warmup
    payments_per_probe = min(
        float(scale.peak_payment_budget), 1.35 * capacity * window
    )
    probes = scale.peak_probe_cap or _UNCAPPED_PROBES
    events = probes * (
        payments_per_probe * _events_per_payment(system, size)
        + _build_events(size)
    )
    return _seconds_for_events(events)


def fig3_anchor_budget_seconds(
    system: str, size: int, scale: Optional[BenchScale] = None
) -> float:
    """Budget for one sub-saturation calibration anchor probe."""
    if scale is None:
        scale = current_scale()
    capacity = analytic_capacity(system, size)
    window = scale.peak_duration + scale.peak_warmup
    payments = min(
        float(scale.anchor_payment_budget), 0.25 * capacity * window
    )
    events = payments * _events_per_payment(system, size) + _build_events(size)
    return _seconds_for_events(events)


def fig3_budgets(
    sizes: Sequence[int],
    systems: Sequence[str],
    scale: Optional[BenchScale] = None,
    anchors: bool = False,
) -> Dict[Any, float]:
    """Per-tag budget map for :func:`repro.bench.parallel.execute`.

    Tags mirror Fig. 3's unit tags: ``(system, size)`` tuples.  With
    ``anchors=True`` the anchor-probe model is used instead of the full
    peak-search model.
    """
    if scale is None:
        scale = current_scale()
    budget = fig3_anchor_budget_seconds if anchors else fig3_cell_budget_seconds
    return {
        (system, size): round(budget(system, size, scale), 2)
        for system in systems
        for size in sizes
    }


# ---------------------------------------------------------------------------
# Checker
# ---------------------------------------------------------------------------


def check_report(report: Dict[str, Any]) -> Tuple[List[str], int]:
    """Audit one ``BENCH_sweeps.json`` document.

    Returns ``(violations, budgeted_cells)``: human-readable violation
    lines for every cell whose measured ``seconds`` exceeded its recorded
    ``budget_seconds``, and how many cells carried a budget at all.
    """
    violations: List[str] = []
    budgeted = 0
    for sweep in report.get("sweeps", []):
        for cell in sweep.get("cells") or []:
            budget = cell.get("budget_seconds")
            if budget is None:
                continue
            budgeted += 1
            seconds = cell.get("seconds", 0.0)
            if seconds > budget:
                violations.append(
                    f"{sweep.get('label', '?')} cell {cell.get('tag')!r}: "
                    f"{seconds:.2f}s exceeds budget {budget:.2f}s "
                    f"({seconds / budget:.2f}x)"
                )
    return violations, budgeted


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.budget",
        description=(
            "Assert every budgeted sweep cell in a BENCH_sweeps.json "
            "finished within its recorded wall-clock budget."
        ),
    )
    parser.add_argument(
        "report", help="path to BENCH_sweeps.json (or a merged BENCH_perf.json)"
    )
    parser.add_argument(
        "--allow-empty",
        action="store_true",
        help="succeed even if no cell carries a budget_seconds field "
        "(default: that is an error — the wiring is broken)",
    )
    args = parser.parse_args(argv)
    with open(args.report) as handle:
        document = json.load(handle)
    # A merged BENCH_perf.json nests the sweep report under "sweeps".
    report = document
    if "sweeps" in document and isinstance(document["sweeps"], dict):
        report = document["sweeps"]
    violations, budgeted = check_report(report)
    if violations:
        print(f"{len(violations)} budget violation(s):")
        for line in violations:
            print(f"  - {line}")
        return 1
    if budgeted == 0 and not args.allow_empty:
        print(
            "no budgeted cells found in the report — fig3 budget wiring "
            "is broken (pass --allow-empty to tolerate)"
        )
        return 1
    print(f"all {budgeted} budgeted cell(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
