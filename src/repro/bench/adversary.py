"""Byzantine robustness suite: throughput-under-attack timelines.

Extends the §VI-D robustness methodology (Figs. 5–7: closed-loop clients,
warm-up, fault mid-window, per-second settled series) from benign faults
to the attack library of :mod:`repro.adversary`: one timeline per
(system × attack) cell at the paper's f = ⌊(N−1)/3⌋ adversary bound, with
an :class:`~repro.adversary.InvariantMonitor` sampling the correct
replicas throughout.  Results — per-second throughput curves plus monitor
verdicts — land in ``BENCH_byzantine.json``.

Environment knobs:

* ``REPRO_ADVERSARY_ATTACKS`` — comma-separated attack filter
  (default: every attack applicable to the system);
* ``REPRO_ADVERSARY_COUNT`` — number of Byzantine replicas
  (default: ``f``);
* ``REPRO_ADVERSARY_INTERVAL`` — monitor sampling cadence in simulated
  seconds (default: 1.0).

Cells are independent :class:`~repro.bench.parallel.ScenarioJob`s
(executor ``"adversary_timeline"``), so ``REPRO_BENCH_JOBS`` parallelizes
the suite like every other sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..adversary import ATTACKS, InvariantMonitor, install_adversary
from .estimate import job_memory_bytes
from .parallel import ScenarioJob, derive_seed, execute
from .scale import BenchScale, current_scale
from .systems import SYSTEM_BUILDERS, validate_systems
from .timeline import run_timeline

__all__ = [
    "ByzantineRobustnessResult",
    "applicable_attacks",
    "run_adversary_cell",
    "run_byzantine_robustness",
]

#: Closed-loop clients per cell, as in the benign robustness suites.
NUM_CLIENTS = 10

#: Systems with Byzantine support (the consensus baseline's adversary
#: model is out of scope — Astro is the claim under test).
ADVERSARY_SYSTEMS = ("astro1", "astro2")


def applicable_attacks(system: str, attacks: Optional[Sequence[str]] = None) -> List[str]:
    """Attack names applicable to ``system``, optionally filtered.

    Unknown names in ``attacks`` raise (a misspelled
    ``REPRO_ADVERSARY_ATTACKS`` must not silently run nothing).
    """
    if attacks is not None:
        unknown = [name for name in attacks if name not in ATTACKS]
        if unknown:
            raise ValueError(
                f"unknown attack(s) {unknown!r}: known attacks are "
                f"{sorted(ATTACKS)}"
            )
    selected = list(attacks) if attacks is not None else list(ATTACKS)
    return [name for name in selected if system in ATTACKS[name].systems]


def _no_fault(system: Any, at: float) -> None:
    """Benign-fault slot left empty: the adversary *is* the fault.

    Passing a no-op keeps :func:`run_timeline` recording ``fault_at`` so
    the before/after split lines up with the attack's arm time.
    """


def run_adversary_cell(
    seed: int,
    system: str,
    size: int,
    attack: str,
    num_clients: int = NUM_CLIENTS,
    warmup: float = 4.0,
    window: float = 16.0,
    attack_offset: float = 4.0,
    monitor_interval: float = 1.0,
    adversary_count: Optional[int] = None,
) -> Dict[str, Any]:
    """One (system × attack) timeline with live invariant monitoring.

    The attack arms ``attack_offset`` seconds into the observation
    window; the monitor samples every ``monitor_interval`` simulated
    seconds from t=0 through the end of the window, plus one final
    post-run sample.  Returns a picklable, JSON-ready dict.
    """
    builder = SYSTEM_BUILDERS[system]
    built = builder(size, seed=seed)
    end = warmup + window
    attack_at = warmup + attack_offset
    adversary = install_adversary(
        built,
        {"attack": attack, "at": attack_at, "count": adversary_count},
        seed=seed,
    )
    monitor = InvariantMonitor(
        built,
        interval=monitor_interval,
        byzantine_ids=adversary.byzantine_ids,
        until=end,
    )
    result = run_timeline(
        built,
        num_clients=num_clients,
        warmup=warmup,
        window=window,
        fault=_no_fault,
        fault_offset=attack_offset,
        seed=seed,
    )
    monitor.stop()
    monitor.sample()  # final state, after the window closed
    return {
        "system": system,
        "attack": attack,
        "size": size,
        "byzantine": list(adversary.byzantine_ids),
        "attack_at": attack_at,
        "window_start": result.window_start,
        "series": list(result.series),
        "completed": result.completed,
        "before_pps": result.before_fault(),
        "after_pps": result.after_fault(),
        "min_pps": result.min_after_fault(),
        "tampered": adversary.tampered,
        "verdict": monitor.verdict(),
    }


@dataclass
class ByzantineRobustnessResult:
    """All (system × attack) cells of one suite run."""

    size: int
    warmup: float
    window: float
    attack_offset: float
    cells: Dict[Tuple[str, str], Dict[str, Any]] = field(default_factory=dict)

    @property
    def all_safe(self) -> bool:
        return all(cell["verdict"]["ok"] for cell in self.cells.values())

    def table(self) -> str:
        """Human-readable summary, one row per cell."""
        lines = [
            f"Byzantine robustness: N={self.size}, f adversaries, "
            f"attack at +{self.attack_offset:.0f}s of a "
            f"{self.window:.0f}s window",
            f"{'system':<8} {'attack':<14} {'before':>9} {'after':>9} "
            f"{'tampered':>9} {'samples':>8} verdict",
        ]
        for (system, attack), cell in sorted(self.cells.items()):
            verdict = cell["verdict"]
            status = "SAFE" if verdict["ok"] else (
                f"VIOLATED@{verdict['first_violation']:.1f}s"
            )
            lines.append(
                f"{system:<8} {attack:<14} {cell['before_pps']:>7.1f}/s "
                f"{cell['after_pps']:>7.1f}/s {cell['tampered']:>9} "
                f"{verdict['samples']:>8} {status}"
            )
        return "\n".join(lines)

    def report(self) -> Dict[str, Any]:
        """JSON-ready document for ``BENCH_byzantine.json``."""
        return {
            "size": self.size,
            "warmup": self.warmup,
            "window": self.window,
            "attack_offset": self.attack_offset,
            "all_safe": self.all_safe,
            "cells": [
                dict(cell) for _, cell in sorted(self.cells.items())
            ],
        }


def run_byzantine_robustness(
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    systems: Sequence[str] = ADVERSARY_SYSTEMS,
    attacks: Optional[Sequence[str]] = None,
    size: Optional[int] = None,
    warmup: Optional[float] = None,
    window: Optional[float] = None,
    monitor_interval: Optional[float] = None,
    adversary_count: Optional[int] = None,
) -> ByzantineRobustnessResult:
    """Run one timeline per (system × attack) cell, in parallel.

    Defaults come from the bench scale (the Figs. 5/6 small-N shape) and
    the ``REPRO_ADVERSARY_*`` environment knobs; explicit arguments win.
    """
    if scale is None:
        scale = current_scale()
    names = validate_systems(systems)
    unsupported = [n for n in names if n not in ADVERSARY_SYSTEMS]
    if unsupported:
        raise ValueError(
            f"adversary suite supports {ADVERSARY_SYSTEMS}, got "
            f"{unsupported!r}"
        )
    if attacks is None:
        raw = os.environ.get("REPRO_ADVERSARY_ATTACKS")
        if raw:
            attacks = [name.strip() for name in raw.split(",") if name.strip()]
    if adversary_count is None:
        raw = os.environ.get("REPRO_ADVERSARY_COUNT")
        if raw:
            adversary_count = int(raw)
    if monitor_interval is None:
        monitor_interval = float(
            os.environ.get("REPRO_ADVERSARY_INTERVAL", "1.0")
        )
    if size is None:
        size = scale.robustness_small_n
    if warmup is None:
        warmup = scale.robustness_warmup
    if window is None:
        window = scale.robustness_window
    attack_offset = window / 4.0
    units: List[ScenarioJob] = []
    for system in names:
        for attack in applicable_attacks(system, attacks):
            units.append(
                ScenarioJob(
                    kind="adversary_timeline",
                    params=dict(
                        system=system,
                        size=size,
                        attack=attack,
                        num_clients=NUM_CLIENTS,
                        warmup=warmup,
                        window=window,
                        attack_offset=attack_offset,
                        monitor_interval=monitor_interval,
                        adversary_count=adversary_count,
                    ),
                    seed=derive_seed(seed, "byzantine", system, attack),
                    tag=(system, attack),
                )
            )
    results = execute(
        units,
        jobs=jobs,
        label="byzantine",
        per_job_bytes=job_memory_bytes(size),
    )
    suite = ByzantineRobustnessResult(
        size=size, warmup=warmup, window=window, attack_offset=attack_offset
    )
    for unit, cell in zip(units, results):
        suite.cells[unit.tag] = cell
    return suite
