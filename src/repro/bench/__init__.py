"""Benchmark harness: per-figure/table experiment definitions.

Each experiment module reproduces one element of the paper's evaluation
(see DESIGN.md §3 for the index) and prints the same rows/series the
paper reports.  ``repro.bench.scale`` controls problem sizes
(``REPRO_BENCH_SCALE`` ∈ smoke/quick/full); ``repro.bench.parallel``
fans the independent cells of each sweep across a process pool
(``REPRO_BENCH_JOBS``, default serial) with deterministic, submission-
order results.
"""

from .ablations import (
    BatchingAblation,
    MessageComplexityAblation,
    run_batching_ablation,
    run_message_complexity_ablation,
)
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig8 import Fig8Result, measure_astro_join_series, run_fig8
from .parallel import (
    ScenarioJob,
    ScenarioPipeline,
    SweepTiming,
    derive_seed,
    execute,
    resolve_jobs,
    reset_sweep_log,
    sweep_report,
)
from .peak import PeakResult, find_peak
from .report import format_series, format_table, kilo, print_table
from .robustness import (
    RobustnessResult,
    run_asynchrony_robustness,
    run_crash_robustness,
    run_large_scale_robustness,
)
from .runner import RunResult, run_open_loop
from .scale import BenchScale, current_scale
from .systems import build_astro1, build_astro2, build_bft, client_ids_of
from .table1 import Table1Result, Table1Row, run_table1
from .timeline import TimelineResult, run_timeline

__all__ = [
    "BatchingAblation",
    "MessageComplexityAblation",
    "run_batching_ablation",
    "run_message_complexity_ablation",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig8Result",
    "measure_astro_join_series",
    "run_fig8",
    "ScenarioJob",
    "ScenarioPipeline",
    "SweepTiming",
    "derive_seed",
    "execute",
    "resolve_jobs",
    "reset_sweep_log",
    "sweep_report",
    "PeakResult",
    "find_peak",
    "format_series",
    "format_table",
    "kilo",
    "print_table",
    "RobustnessResult",
    "run_asynchrony_robustness",
    "run_crash_robustness",
    "run_large_scale_robustness",
    "RunResult",
    "run_open_loop",
    "BenchScale",
    "current_scale",
    "build_astro1",
    "build_astro2",
    "build_bft",
    "client_ids_of",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "TimelineResult",
    "run_timeline",
]
