"""repro — reproduction of "Online Payments by Merely Broadcasting Messages"
(Astro, DSN 2020).

Astro is a decentralized, deterministic, fully asynchronous payment
system built on Byzantine reliable broadcast instead of consensus.  This
package provides:

* :mod:`repro.core` — the payment protocol: exclusive logs, Astro I
  (Bracha BRB) and Astro II (signed BRB + dependency certificates), and
  asynchronous sharding;
* :mod:`repro.brb` — the two Byzantine reliable broadcast protocols and
  the batching layer;
* :mod:`repro.consensus` — the BFT-SMaRt-style leader-based baseline;
* :mod:`repro.reconfig` — consensusless membership reconfiguration;
* :mod:`repro.sim` — the deterministic discrete-event network simulator
  the protocols run on;
* :mod:`repro.crypto` — simulated signatures/MACs with a CPU cost model;
* :mod:`repro.workloads` — uniform and Smallbank workloads, load drivers;
* :mod:`repro.bench` — one experiment per table/figure of the paper.

Quickstart::

    from repro import Astro2System

    system = Astro2System(num_replicas=4, genesis={"alice": 100, "bob": 0})
    system.submit("alice", "bob", 25)
    system.settle_all()
    assert system.replica(0).balance_of("alice") == 75
"""

from .consensus import BftConfig, BftSystem
from .core import (
    Astro1System,
    Astro2System,
    AstroConfig,
    ClientNode,
    Directory,
    ExclusiveLog,
    Payment,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Astro1System",
    "Astro2System",
    "AstroConfig",
    "ClientNode",
    "Directory",
    "ExclusiveLog",
    "Payment",
    "BftConfig",
    "BftSystem",
    "Simulator",
    "__version__",
]
