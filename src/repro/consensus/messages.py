"""Messages of the leader-based BFT consensus baseline.

Modelled on BFT-SMaRt's Mod-SMaRt [15]: a PROPOSE/WRITE/ACCEPT ordering
core plus a STOP/STOPDATA/SYNC view-change (synchronization phase).
Message and field names follow that lineage rather than PBFT's
pre-prepare/prepare/commit, since BFT-SMaRt is the paper's baseline.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..crypto.hashing import Digest

__all__ = [
    "SUBMIT_BYTES_DEFAULT",
    "ClientRequest",
    "Propose",
    "Write",
    "Accept",
    "Reply",
    "Stop",
    "StopData",
    "Sync",
]


#: Wire size of a client request (§VI-B: ~100 bytes).
SUBMIT_BYTES_DEFAULT = 100


class ClientRequest:
    """A payment request, multicast by the client to *all* replicas.

    BFT-SMaRt clients keep connections to every replica (§VI-B), so each
    replica pays the ingestion cost for every request — a structural cost
    driver absent from Astro, whose clients talk to one representative.
    """

    __slots__ = ("payment",)

    def __init__(self, payment: Any) -> None:
        self.payment = payment


class Propose:
    """Leader's batch proposal for consensus instance ``seq`` in ``view``."""

    __slots__ = ("view", "seq", "batch", "size")

    def __init__(self, view: int, seq: int, batch: Any, size: int) -> None:
        self.view = view
        self.seq = seq
        self.batch = batch
        self.size = size


class Write:
    """First all-to-all quorum phase (PBFT's prepare)."""

    __slots__ = ("view", "seq", "batch_digest")

    def __init__(self, view: int, seq: int, batch_digest: Digest) -> None:
        self.view = view
        self.seq = seq
        self.batch_digest = batch_digest


class Accept:
    """Second all-to-all quorum phase (PBFT's commit)."""

    __slots__ = ("view", "seq", "batch_digest")

    def __init__(self, view: int, seq: int, batch_digest: Digest) -> None:
        self.view = view
        self.seq = seq
        self.batch_digest = batch_digest


class Reply:
    """Per-replica execution acknowledgement to the client, who accepts a
    result once f+1 matching replies arrive."""

    __slots__ = ("payment_id",)

    def __init__(self, payment_id: Tuple) -> None:
        self.payment_id = payment_id


class Stop:
    """Vote to abandon the current regency and move to ``new_view``."""

    __slots__ = ("new_view",)

    def __init__(self, new_view: int) -> None:
        self.new_view = new_view


class StopData:
    """A replica's state handed to the new leader when entering a view.

    ``last_decided`` is the highest contiguously decided instance;
    ``proposals`` maps undecided seq -> (digest, batch, has_write_cert).
    ``size`` grows with pending state and system size, which is why view
    changes take longer in larger systems (§VI-D, Fig. 7).
    """

    __slots__ = ("new_view", "last_decided", "proposals", "size")

    def __init__(
        self,
        new_view: int,
        last_decided: int,
        proposals: Dict[int, Tuple[Digest, Any, bool]],
        size: int,
    ) -> None:
        self.new_view = new_view
        self.last_decided = last_decided
        self.proposals = proposals
        self.size = size


class Sync:
    """New leader's synchronization message installing ``new_view``.

    Carries the decided frontier and the re-proposals replicas must adopt
    before normal operation resumes.
    """

    __slots__ = ("new_view", "base_seq", "reproposals", "size")

    def __init__(
        self,
        new_view: int,
        base_seq: int,
        reproposals: Dict[int, Any],
        size: int,
    ) -> None:
        self.new_view = new_view
        self.base_seq = base_seq
        self.reproposals = reproposals
        self.size = size
