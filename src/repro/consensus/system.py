"""Assembly of the consensus-based payment system (baseline).

Mirrors the driving surface of the Astro systems so workloads and
benchmarks are generic over the two designs.  The BFT-SMaRt client
pattern is preserved: every request reaches every replica, and a client
accepts a result after f+1 matching replies (§VI-B).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core.interning import ClientInterner
from ..core.payment import ClientId, Payment, PaymentId
from ..sim.events import Simulator
from ..sim.faults import FaultInjector
from ..sim.latency import LatencyModel, europe_wan
from ..sim.network import Network
from ..sim.node import Node
from .config import BftConfig
from .messages import SUBMIT_BYTES_DEFAULT, ClientRequest, Reply
from .replica import BftReplica

__all__ = ["BftSystem", "BftClientNode"]

ConfirmHook = Callable[[Payment, float], None]


class BftClientNode(Node):
    """A closed-loop client of the consensus system.

    Sends each request to all replicas and confirms on f+1 matching
    replies — the BFT-SMaRt client behaviour the paper deploys.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        client_id: ClientId,
        network: Network,
        system: "BftSystem",
        on_confirm: Optional[ConfirmHook] = None,
    ) -> None:
        super().__init__(sim, node_id, network)
        self.client_id = client_id
        self.system = system
        self.on_confirm = on_confirm
        self._next_seq = 1
        self._in_flight: Dict[PaymentId, Tuple[Payment, float]] = {}
        self._reply_counts: Dict[PaymentId, int] = {}
        self.confirmed_count = 0
        self.on(Reply, self._on_reply)

    def pay(self, beneficiary: ClientId, amount: int) -> Payment:
        payment = Payment(
            self.client_id, self._next_seq, beneficiary, amount,
            submitted_at=self.sim.now,
        )
        self._next_seq += 1
        self._in_flight[payment.identifier] = (payment, self.sim.now)
        request = ClientRequest(payment)
        config = self.system.config
        cost = config.request_cost * config.overhead_factor
        for replica in self.system.replicas:
            self.send(
                replica.node_id, request, size=SUBMIT_BYTES_DEFAULT, recv_cost=cost
            )
        return payment

    def _on_reply(self, src: int, message: Reply) -> None:
        key = message.payment_id
        entry = self._in_flight.get(key)
        if entry is None:
            return
        count = self._reply_counts.get(key, 0) + 1
        self._reply_counts[key] = count
        if count >= self.system.config.f + 1:
            payment, submitted = entry
            del self._in_flight[key]
            del self._reply_counts[key]
            self.confirmed_count += 1
            if self.on_confirm is not None:
                self.on_confirm(payment, self.sim.now - submitted)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


class BftSystem:
    """N-replica consensus-based payment service."""

    def __init__(
        self,
        num_replicas: int = 4,
        genesis: Optional[Mapping[ClientId, int]] = None,
        config: Optional[BftConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        track_kinds: bool = False,
    ) -> None:
        if config is None:
            config = BftConfig(num_replicas=num_replicas)
        self.config = config
        self.sim = sim if sim is not None else Simulator()
        if network is None:
            if latency is None:
                latency = europe_wan(config.num_replicas, seed=seed)
            network = Network(self.sim, latency=latency, track_kinds=track_kinds)
        self.network = network
        self.faults = FaultInjector(self.sim, self.network)
        self.genesis: Dict[ClientId, int] = dict(genesis or {})
        peers = list(range(config.num_replicas))
        # One ClientId ⇄ index interner for all replicas: their account
        # slabs share the per-client mapping cost.
        interner = ClientInterner(self.genesis)
        self.replicas: List[BftReplica] = [
            BftReplica(Node(self.sim, node_id, self.network), config,
                       dict(self.genesis), peers, interner=interner)
            for node_id in peers
        ]
        self._next_seq: Dict[ClientId, int] = {}
        self._next_client_node = config.num_replicas
        # f+1 execution tracking for generator-driven confirmation latency.
        self._exec_counts: Dict[PaymentId, int] = {}
        self._submit_times: Dict[PaymentId, float] = {}
        self._confirm_hooks: List[ConfirmHook] = []
        for replica in self.replicas:
            replica.exec_hooks.append(self._on_replica_exec)

    # ------------------------------------------------------------------
    # Driving (mirrors the Astro systems)
    # ------------------------------------------------------------------
    def next_seq(self, client: ClientId) -> int:
        seq = self._next_seq.get(client, 0) + 1
        self._next_seq[client] = seq
        return seq

    def make_payment(
        self, spender: ClientId, beneficiary: ClientId, amount: int
    ) -> Payment:
        return Payment(
            spender, self.next_seq(spender), beneficiary, amount,
            submitted_at=self.sim.now,
        )

    def submit(self, spender: ClientId, beneficiary: ClientId, amount: int) -> Payment:
        payment = self.make_payment(spender, beneficiary, amount)
        self.submit_payment(payment)
        return payment

    def submit_payment(self, payment: Payment) -> None:
        """Inject a request at every replica (client multicast pattern)."""
        self._submit_times[payment.identifier] = (
            payment.submitted_at if payment.submitted_at is not None else self.sim.now
        )
        for replica in self.replicas:
            replica.submit_local(payment)

    def add_client_node(
        self, client: ClientId, on_confirm: Optional[ConfirmHook] = None
    ) -> BftClientNode:
        node_id = self._next_client_node
        self._next_client_node += 1
        node = BftClientNode(
            self.sim, node_id, client, self.network, self, on_confirm=on_confirm
        )
        for replica in self.replicas:
            replica.client_nodes[client] = node_id
        return node

    def add_confirm_hook(self, hook: ConfirmHook) -> None:
        self._confirm_hooks.append(hook)

    def remove_confirm_hook(self, hook: ConfirmHook) -> None:
        """Detach a hook added by :meth:`add_confirm_hook` (idempotent)."""
        try:
            self._confirm_hooks.remove(hook)
        except ValueError:
            pass

    def _on_replica_exec(self, payment: Payment) -> None:
        key = payment.identifier
        submitted = self._submit_times.get(key)
        if submitted is None:
            return
        count = self._exec_counts.get(key, 0) + 1
        if count >= self.config.f + 1:
            self._exec_counts.pop(key, None)
            self._submit_times.pop(key, None)
            for hook in self._confirm_hooks:
                hook(payment, self.sim.now)
        else:
            self._exec_counts[key] = count

    def settle_all(self, max_time: float = 120.0, slice_width: float = 0.5) -> None:
        """Run until execution quiesces.

        The replicas' periodic timeout timers keep the event queue
        non-empty forever, so (unlike the Astro systems) quiescence is
        detected by observing a stable executed/pending snapshot over a
        few consecutive time slices.
        """
        deadline = self.sim.now + max_time
        stable = 0
        # A pending-but-stalled request only makes progress after the
        # request timeout fires, so the stability window must outlast it.
        slices_needed = int((self.config.request_timeout + 1.0) / slice_width) + 1
        last_snapshot: Optional[Tuple] = None
        while self.sim.now < deadline and stable < slices_needed:
            self.run(self.sim.now + slice_width)
            snapshot = (
                tuple(replica.executed_count for replica in self.replicas),
                tuple(replica.pending_count for replica in self.replicas),
                tuple(replica.view for replica in self.replicas),
            )
            if snapshot == last_snapshot:
                stable += 1
            else:
                stable = 0
                last_snapshot = snapshot

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def replica(self, index: int) -> BftReplica:
        return self.replicas[index]

    def settled_counts(self) -> List[int]:
        return [replica.executed_count for replica in self.replicas]

    def balances_at(self, index: int = 0) -> Dict[ClientId, int]:
        return dict(self.replicas[index].state.balances)

    def total_value(self, index: int = 0) -> int:
        return self.replicas[index].state.total_balance()

    @property
    def leader(self) -> BftReplica:
        """Current leader from replica 0's perspective (experiments)."""
        reference = self.replicas[0]
        return self.replicas[reference.leader_of(reference.view) % len(self.replicas)]
