"""Configuration of the consensus baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..brb.batching import DEFAULT_BATCH_SIZE
from ..brb.quorums import max_faulty, validate_system_size

__all__ = ["BftConfig"]


@dataclass
class BftConfig:
    """Parameters of one BFT-SMaRt-style deployment.

    ``overhead_factor`` scales per-message/request CPU costs relative to
    the Go-based Astro prototypes, standing in for the JVM runtime,
    per-connection handling, and MAC-vector authenticators of BFT-SMaRt
    (the paper's footnote 1 contrasts 3.5 kLOC of Go against 13.5 kLOC of
    Java).  Calibrated against the Fig. 3 anchors; see EXPERIMENTS.md.
    """

    num_replicas: int = 4
    f: Optional[int] = None
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Leader flushes a batch after this delay even if not full.
    batch_delay: float = 0.005
    #: Consensus instances the leader may run concurrently.  Mod-SMaRt
    #: decides instances sequentially; a small pipeline (>1) models its
    #: request-queue overlap.
    pipeline_depth: int = 2
    #: A replica asks for a view change when a pending request has not
    #: executed within this many seconds (BFT-SMaRt's requestTimeout).
    request_timeout: float = 2.0
    #: How often replicas scan for timed-out requests.
    timeout_check_interval: float = 0.25
    #: CPU cost multiplier vs the Go cost model (see class docstring).
    overhead_factor: float = 5.0
    #: Wire amplification of the leader's large fan-out PROPOSE messages:
    #: per-connection framing, JVM serialization, and TCP behaviour over
    #: ~N simultaneous streams reduce effective goodput well below the
    #: NIC rate.  Calibrated against the Fig. 3 baseline anchors
    #: (N=4 ≈ 10K pps, N=100 ≈ 334 pps).
    propose_wire_amplification: float = 5.0
    #: CPU time to apply one ordered payment.
    settle_cost: float = 1.5e-6
    #: CPU time per client request at *each* replica (deserialize + MAC).
    request_cost: float = 15e-6
    #: CPU time to emit one client reply.
    reply_cost: float = 4e-6
    #: Extra fixed time for a joining/syncing replica to rebuild state
    #: during a view change, per unit of pending state.
    sync_processing_cost: float = 30e-6

    def __post_init__(self) -> None:
        if self.f is None:
            self.f = max_faulty(self.num_replicas)
        validate_system_size(self.num_replicas, self.f)
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")

    @property
    def quorum(self) -> int:
        return 2 * self.f + 1
