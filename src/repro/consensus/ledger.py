"""Payment execution on top of a total order.

The consensus baseline executes payments in decided-sequence order.  Like
Astro I, an insufficiently funded (or out-of-client-order) payment waits
until the state allows it — total order makes the outcome identical at
every correct replica.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..core.accounts import AccountState
from ..core.interning import ClientInterner
from ..core.payment import ClientId, Payment

__all__ = ["PaymentLedger"]


class PaymentLedger:
    """Sequentially applies totally-ordered payments to account state."""

    def __init__(
        self,
        genesis: Dict[ClientId, int],
        on_settle: Optional[Callable[[Payment], None]] = None,
        interner: Optional[ClientInterner] = None,
    ) -> None:
        self.state = AccountState(genesis, interner=interner)
        self.on_settle = on_settle
        self._waiting: Dict[ClientId, Dict[int, Payment]] = {}
        self.settled_count = 0

    def apply(self, payment: Payment) -> None:
        """Apply one ordered payment (settling everything it unblocks)."""
        spender = payment.spender
        waiting = self._waiting
        queue = waiting.get(spender)
        if queue is None:
            queue = waiting[spender] = {}
        queue[payment.seq] = payment
        self._drain(deque((spender,)))

    def _drain(self, worklist: Deque[ClientId]) -> None:
        # Executes once per payment per replica — the consensus baseline's
        # hottest code.  settle_full operates directly on the int64 slabs.
        state = self.state
        seqnum = state.seqnum
        balance = state.balance
        settle = state.settle_full
        waiting = self._waiting
        on_settle = self.on_settle
        while worklist:
            client = worklist.popleft()
            queue = waiting.get(client)
            if not queue:
                continue
            while True:
                next_seq = seqnum(client) + 1
                payment = queue.get(next_seq)
                if payment is None:
                    break
                if balance(client) < payment.amount:
                    break
                queue.pop(next_seq)
                settle(payment)
                self.settled_count += 1
                if on_settle is not None:
                    on_settle(payment)
                worklist.append(payment.beneficiary)
            if not queue:
                waiting.pop(client, None)

    @property
    def waiting_count(self) -> int:
        return sum(len(queue) for queue in self._waiting.values())
