"""Payment execution on top of a total order.

The consensus baseline executes payments in decided-sequence order.  Like
Astro I, an insufficiently funded (or out-of-client-order) payment waits
until the state allows it — total order makes the outcome identical at
every correct replica.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..core.accounts import AccountState
from ..core.payment import ClientId, Payment
from ..core.xlog import ExclusiveLog

__all__ = ["PaymentLedger"]


class PaymentLedger:
    """Sequentially applies totally-ordered payments to account state."""

    def __init__(
        self,
        genesis: Dict[ClientId, int],
        on_settle: Optional[Callable[[Payment], None]] = None,
    ) -> None:
        self.state = AccountState(genesis)
        self.on_settle = on_settle
        self._waiting: Dict[ClientId, Dict[int, Payment]] = {}
        self.settled_count = 0

    def apply(self, payment: Payment) -> None:
        """Apply one ordered payment (settling everything it unblocks)."""
        spender = payment.spender
        waiting = self._waiting
        queue = waiting.get(spender)
        if queue is None:
            queue = waiting[spender] = {}
        queue[payment.seq] = payment
        self._drain(deque((spender,)))

    def _drain(self, worklist: Deque[ClientId]) -> None:
        # Executes once per payment per replica — the consensus baseline's
        # hottest code, hence the local bindings and hand-inlined
        # state.settle_full.
        state = self.state
        balances = state.balances
        seqnums = state.seqnums
        xlogs = state.xlogs
        waiting = self._waiting
        on_settle = self.on_settle
        while worklist:
            client = worklist.popleft()
            queue = waiting.get(client)
            if not queue:
                continue
            while True:
                next_seq = seqnums.get(client, 0) + 1
                payment = queue.get(next_seq)
                if payment is None:
                    break
                amount = payment.amount
                if balances.get(client, 0) < amount:
                    break
                queue.pop(next_seq)
                beneficiary = payment.beneficiary
                balances[client] = balances.get(client, 0) - amount
                balances[beneficiary] = balances.get(beneficiary, 0) + amount
                seqnums[client] = next_seq
                log = xlogs.get(client)
                if log is None:
                    log = xlogs[client] = ExclusiveLog(client)
                # seq == len(xlog)+1 is guaranteed by the gap queue above.
                log._entries.append(payment)
                self.settled_count += 1
                if on_settle is not None:
                    on_settle(payment)
                worklist.append(beneficiary)
            if not queue:
                waiting.pop(client, None)

    @property
    def waiting_count(self) -> int:
        return sum(len(queue) for queue in self._waiting.values())
