"""Payment execution on top of a total order.

The consensus baseline executes payments in decided-sequence order.  Like
Astro I, an insufficiently funded (or out-of-client-order) payment waits
until the state allows it — total order makes the outcome identical at
every correct replica.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..core.accounts import AccountState
from ..core.payment import ClientId, Payment

__all__ = ["PaymentLedger"]


class PaymentLedger:
    """Sequentially applies totally-ordered payments to account state."""

    def __init__(
        self,
        genesis: Dict[ClientId, int],
        on_settle: Optional[Callable[[Payment], None]] = None,
    ) -> None:
        self.state = AccountState(genesis)
        self.on_settle = on_settle
        self._waiting: Dict[ClientId, Dict[int, Payment]] = {}
        self.settled_count = 0

    def apply(self, payment: Payment) -> None:
        """Apply one ordered payment (settling everything it unblocks)."""
        self._waiting.setdefault(payment.spender, {})[payment.seq] = payment
        self._drain(deque([payment.spender]))

    def _drain(self, worklist: Deque[ClientId]) -> None:
        while worklist:
            client = worklist.popleft()
            queue = self._waiting.get(client)
            if not queue:
                continue
            while True:
                next_seq = self.state.seqnum(client) + 1
                payment = queue.get(next_seq)
                if payment is None:
                    break
                if self.state.balance(client) < payment.amount:
                    break
                queue.pop(next_seq)
                self.state.settle_full(payment)
                self.settled_count += 1
                if self.on_settle is not None:
                    self.on_settle(payment)
                worklist.append(payment.beneficiary)
            if not queue:
                self._waiting.pop(client, None)

    @property
    def waiting_count(self) -> int:
        return sum(len(queue) for queue in self._waiting.values())
