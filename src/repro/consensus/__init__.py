"""Consensus-based payment baseline (BFT-SMaRt-style leader-based SMR).

The comparison system of the paper's evaluation (§VI-A): payments are
totally ordered by a PROPOSE/WRITE/ACCEPT consensus core with a
STOP/STOPDATA/SYNC view change, then executed sequentially.
"""

from .config import BftConfig
from .ledger import PaymentLedger
from .messages import (
    Accept,
    ClientRequest,
    Propose,
    Reply,
    Stop,
    StopData,
    Sync,
    Write,
)
from .replica import BftReplica
from .system import BftClientNode, BftSystem

__all__ = [
    "BftConfig",
    "PaymentLedger",
    "Accept",
    "ClientRequest",
    "Propose",
    "Reply",
    "Stop",
    "StopData",
    "Sync",
    "Write",
    "BftReplica",
    "BftClientNode",
    "BftSystem",
]
