"""Leader-based BFT consensus replica (the paper's baseline, §VI-A).

Normal case (Mod-SMaRt/PBFT pattern): the leader of the current view
batches client requests and PROPOSEs them as numbered consensus
instances; replicas run two all-to-all quorum phases (WRITE, ACCEPT) and
execute decided batches in sequence order.

View change (synchronization phase): replicas monitor pending requests;
when one exceeds the request timeout they STOP the current view.  On
2f+1 STOPs a replica enters the next view and sends its protocol state
(STOPDATA) to the new leader, which re-proposes undecided instances in a
SYNC message.  Ordering halts between STOP and SYNC — the throughput gap
of Figs. 5–7.

Simplifications vs a production implementation (documented per DESIGN.md):
re-proposal choice prefers write-certified values (sufficient for the
single-leader-failure scenarios evaluated, where decided values always
carry write certificates in the collected state); checkpoints/garbage
collection are omitted; request retransmission is unnecessary because the
simulated network never loses messages between correct replicas.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from ..brb.batching import Batch
from ..crypto import costs
from ..crypto.hashing import Digest
from ..transport.endpoint import ProtocolEndpoint
from ..transport.interface import Transport
from ..core.interning import ClientInterner
from ..core.payment import ClientId, Payment, PaymentId
from .config import BftConfig
from .ledger import PaymentLedger
from .messages import (
    Accept,
    ClientRequest,
    Propose,
    Reply,
    Stop,
    StopData,
    Sync,
    Write,
)

__all__ = ["BftReplica"]

_CONTROL_BYTES = 80  # WRITE/ACCEPT: header + digest
_REPLY_BYTES = 64


class _Instance:
    """Per-consensus-instance state."""

    __slots__ = ("batch", "digest", "writes", "accepts", "write_sent",
                 "accept_sent", "decided")

    def __init__(self) -> None:
        self.batch: Optional[Batch] = None
        self.digest: Optional[Digest] = None
        self.writes: Dict[Digest, Set[int]] = {}
        self.accepts: Dict[Digest, Set[int]] = {}
        self.write_sent = False
        self.accept_sent = False
        self.decided = False


class BftReplica(ProtocolEndpoint):
    """One replica of the consensus-based payment system.

    A plain protocol object over a
    :class:`~repro.transport.interface.Transport` — the same replica
    runs on the simulator or over real sockets.
    """

    def __init__(
        self,
        transport: Transport,
        config: BftConfig,
        genesis: Dict[ClientId, int],
        peers: List[int],
        interner: Optional[ClientInterner] = None,
    ) -> None:
        super().__init__(transport)
        node_id = transport.node_id
        self.config = config
        self.peers = list(peers)
        #: Peers minus ourselves, in peer order — the fan-out target list.
        self._others = [p for p in self.peers if p != node_id]
        self.n = len(self.peers)
        self.f = config.f
        self.quorum = config.quorum
        self.view = 0
        self.in_view_change = False
        self._leader_now = False
        self._refresh_leader_flag()
        #: Per-request ingestion cost, cached off the config object.
        self._request_cost = config.request_cost * config.overhead_factor
        self.ledger = PaymentLedger(
            genesis, on_settle=self._on_settle, interner=interner
        )
        #: Requests awaiting proposal (leader only).  BFT-SMaRt batches
        #: whatever accumulated when a consensus slot frees, rather than
        #: flushing on a timer — crucial for pipelining behaviour.
        self._request_queue: Deque[Payment] = deque()
        self._flush_timer_set = False
        self._instances: Dict[int, _Instance] = {}
        self._decided_batches: Dict[int, Batch] = {}
        self._last_executed = 0
        self._next_propose = 1
        self._outstanding = 0
        #: payment id -> (payment, arrival time); timeout monitoring and
        #: re-proposal source for a new leader.
        self._pending: Dict[PaymentId, Tuple[Payment, float]] = {}
        self._stop_sent: Set[int] = set()
        self._stops: Dict[int, Set[int]] = {}
        self._stopdata: Dict[int, Dict[int, StopData]] = {}
        self._synced_views: Set[int] = set()
        self._view_entered_at = 0.0
        self.executed_count = 0
        self.view_changes = 0
        # Durable state (live cluster only; ``None`` in simulations).
        self._wal = None
        #: External hooks: fn(payment) on each local execution.
        self.exec_hooks: List[Any] = []
        self.client_nodes: Dict[ClientId, int] = {}
        self.on(ClientRequest, self._on_request)
        self.on(Propose, self._on_propose)
        self.on(Write, self._on_write)
        self.on(Accept, self._on_accept)
        self.on(Stop, self._on_stop)
        self.on(StopData, self._on_stopdata)
        self.on(Sync, self._on_sync)
        self.set_timer(config.timeout_check_interval, self._check_timeouts)

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def leader_of(self, view: int) -> int:
        return self.peers[view % self.n]

    def _refresh_leader_flag(self) -> None:
        """Recompute the cached leadership flag.

        Must be called whenever ``view`` or ``in_view_change`` changes;
        caching keeps the per-request leadership test O(1) attribute
        access instead of two method calls.
        """
        self._leader_now = (
            self.peers[self.view % self.n] == self.node_id
            and not self.in_view_change
        )

    @property
    def is_leader(self) -> bool:
        return self._leader_now

    # ------------------------------------------------------------------
    # Cost model helpers
    # ------------------------------------------------------------------
    def _recv_cost(self, size: int, extra: float = 0.0) -> float:
        base = (
            costs.MESSAGE_OVERHEAD
            + costs.MAC_VERIFY
            + costs.PER_BYTE_CPU * size
            + extra
        )
        return base * self.config.overhead_factor

    def _send_cost(self) -> float:
        # BFT-SMaRt authenticates each copy with a per-recipient MAC.
        return (costs.SEND_OVERHEAD + costs.MAC_COMPUTE) * self.config.overhead_factor

    def _broadcast(self, message: Any, size: int, extra_recv: float = 0.0) -> None:
        cost = self._recv_cost(size, extra_recv)
        self.broadcast(
            self._others, message, size=size, recv_cost=cost,
            send_cost=self._send_cost(),
        )

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _on_request(self, src: int, message: ClientRequest) -> None:
        self.receive_request(message.payment)

    def submit_local(self, payment: Payment) -> None:
        """Inject a request as if multicast by a client (one replica's
        share; the system object fans out to all replicas)."""
        self.charge(self._request_cost)
        self.receive_request(payment)

    def receive_request(self, payment: Payment) -> None:
        if not self.alive:
            return
        key = payment.identifier
        pending = self._pending
        if key in pending:
            return
        pending[key] = (payment, self.clock.now)
        if self._leader_now:
            self._request_queue.append(payment)
            self._schedule_flush()

    # ------------------------------------------------------------------
    # Normal case: propose / write / accept
    # ------------------------------------------------------------------
    def _schedule_flush(self) -> None:
        """Debounce proposal attempts to ``batch_delay`` granularity.

        Proposing on every request arrival would create one-payment
        batches at low load; a short delay lets a batch accumulate, and a
        full queue proposes immediately.
        """
        if len(self._request_queue) >= self.config.batch_size:
            self._try_propose()
            return
        if not self._flush_timer_set:
            self._flush_timer_set = True
            self.set_timer(self.config.batch_delay, self._flush_now)

    def _flush_now(self) -> None:
        self._flush_timer_set = False
        self._try_propose()

    def _try_propose(self) -> None:
        if not self.is_leader:
            return
        while self._request_queue and self._outstanding < self.config.pipeline_depth:
            items: List[Payment] = []
            while self._request_queue and len(items) < self.config.batch_size:
                items.append(self._request_queue.popleft())
            batch = Batch(items)
            seq = self._next_propose
            self._next_propose += 1
            self._outstanding += 1
            size = int(
                (48 + batch.size_bytes) * self.config.propose_wire_amplification
            )
            message = Propose(self.view, seq, batch, size)
            self._broadcast(
                message, size,
                extra_recv=costs.HASH_PER_PAYMENT * batch.batch_items,
            )
            self._handle_propose(self.node_id, message)

    def _on_propose(self, src: int, message: Propose) -> None:
        self._handle_propose(src, message)

    def _handle_propose(self, src: int, message: Propose) -> None:
        if message.view != self.view or self.in_view_change:
            return
        if src != self.leader_of(message.view):
            return  # only the leader of the view may propose
        instance = self._instances.setdefault(message.seq, _Instance())
        if instance.batch is not None:
            return
        instance.batch = message.batch
        instance.digest = message.batch.cached_digest
        self._maybe_write(message.seq, instance)

    def _maybe_write(self, seq: int, instance: _Instance) -> None:
        if instance.write_sent or instance.digest is None:
            return
        instance.write_sent = True
        message = Write(self.view, seq, instance.digest)
        self._broadcast(message, _CONTROL_BYTES)
        self._apply_write(self.node_id, message)

    def _on_write(self, src: int, message: Write) -> None:
        self._apply_write(src, message)

    def _apply_write(self, src: int, message: Write) -> None:
        if message.view != self.view or self.in_view_change:
            return
        instance = self._instances.setdefault(message.seq, _Instance())
        if instance.accept_sent:
            # Our ACCEPT is out; the write certificate for our digest is
            # already recorded, so further WRITEs cannot change anything
            # (including view-change re-proposal choice, which only asks
            # whether *some* bucket reached the quorum).
            return
        voters = instance.writes.setdefault(message.batch_digest, set())
        voters.add(src)
        if (
            len(voters) >= self.quorum
            and instance.digest == message.batch_digest
        ):
            instance.accept_sent = True
            accept = Accept(self.view, message.seq, message.batch_digest)
            self._broadcast(accept, _CONTROL_BYTES)
            self._apply_accept(self.node_id, accept)

    def _on_accept(self, src: int, message: Accept) -> None:
        self._apply_accept(src, message)

    def _apply_accept(self, src: int, message: Accept) -> None:
        if message.view != self.view or self.in_view_change:
            return
        instance = self._instances.setdefault(message.seq, _Instance())
        if instance.decided:
            return  # late ACCEPTs cannot change a decided instance
        voters = instance.accepts.setdefault(message.batch_digest, set())
        voters.add(src)
        if (
            len(voters) >= self.quorum
            and instance.batch is not None
            and instance.digest == message.batch_digest
        ):
            instance.decided = True
            self._decided_batches[message.seq] = instance.batch
            if self.leader_of(self.view) == self.node_id:
                self._outstanding = max(0, self._outstanding - 1)
                self._try_propose()
            self._execute_ready()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_ready(self) -> None:
        wal = self._wal
        while self._last_executed + 1 in self._decided_batches:
            self._last_executed += 1
            batch = self._decided_batches[self._last_executed]
            if wal is not None:
                # Write-ahead: the decided slot is durable before its
                # payments touch the ledger.
                wal.record(("exec", self._last_executed, batch))
            self.charge(
                (self.config.settle_cost + self.config.reply_cost)
                * batch.batch_items
            )
            for payment in batch:
                self._pending.pop(payment.identifier, None)
                self.ledger.apply(payment)
        if wal is not None:
            self._wal_checkpoint()

    def _on_settle(self, payment: Payment) -> None:
        self.executed_count += 1
        for hook in self.exec_hooks:
            hook(payment)
        client_node = self.client_nodes.get(payment.spender)
        if client_node is not None:
            self.send(client_node, Reply(payment.identifier), size=_REPLY_BYTES)

    # ------------------------------------------------------------------
    # Timeouts and view change
    # ------------------------------------------------------------------
    def _check_timeouts(self) -> None:
        if not self.alive:
            return
        self.set_timer(self.config.timeout_check_interval, self._check_timeouts)
        target = self.view + 1
        if target in self._stop_sent:
            return
        if self.in_view_change:
            # The view change itself is stuck (e.g. the new leader is also
            # faulty): escalate to the next view after another timeout.
            if self.clock.now - self._view_entered_at > self.config.request_timeout:
                self._send_stop(target)
            return
        if not self._pending:
            return
        # Pending requests are inserted in arrival order and re-stamped in
        # bulk on view entry, so the first entry always carries the
        # earliest arrival: the timeout check is O(1), not a scan.
        _, earliest = next(iter(self._pending.values()))
        if earliest <= self.clock.now - self.config.request_timeout:
            self._send_stop(target)

    def _send_stop(self, new_view: int) -> None:
        self._stop_sent.add(new_view)
        message = Stop(new_view)
        self._broadcast(message, _CONTROL_BYTES)
        self._apply_stop(self.node_id, message)

    def _on_stop(self, src: int, message: Stop) -> None:
        self._apply_stop(src, message)

    def _apply_stop(self, src: int, message: Stop) -> None:
        if message.new_view <= self.view:
            return
        voters = self._stops.setdefault(message.new_view, set())
        voters.add(src)
        if len(voters) >= self.f + 1 and message.new_view not in self._stop_sent:
            # Join the view change once it cannot be a Byzantine fabrication.
            self._send_stop(message.new_view)
        if len(voters) >= self.quorum:
            self._enter_view(message.new_view)

    def _enter_view(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        self.view = new_view
        self.in_view_change = True
        self._refresh_leader_flag()
        self.view_changes += 1
        self._view_entered_at = self.clock.now
        self._outstanding = 0
        self._request_queue.clear()
        # Hand our protocol state to the new leader.
        frontier = self._decided_frontier()
        proposals: Dict[int, Tuple[Digest, Any, bool]] = {}
        for seq, instance in self._instances.items():
            if seq <= frontier or instance.batch is None:
                continue
            has_cert = any(
                len(voters) >= self.quorum for voters in instance.writes.values()
            )
            proposals[seq] = (instance.digest, instance.batch, has_cert)
        size = 128 + self.n * 16 + sum(
            proposal[1].size_bytes for proposal in proposals.values()
        )
        message = StopData(new_view, frontier, proposals, size)
        new_leader = self.leader_of(new_view)
        if new_leader == self.node_id:
            self._apply_stopdata(self.node_id, message)
        else:
            self.send(
                new_leader,
                message,
                size=size,
                recv_cost=self._recv_cost(size),
                send_cost=self._send_cost(),
            )

    def _decided_frontier(self) -> int:
        frontier = self._last_executed
        while frontier + 1 in self._decided_batches:
            frontier += 1
        return frontier

    def _on_stopdata(self, src: int, message: StopData) -> None:
        self._apply_stopdata(src, message)

    def _apply_stopdata(self, src: int, message: StopData) -> None:
        # Buffer state reports even before we entered the view ourselves;
        # a quorum of peers can move ahead of us.
        if message.new_view < self.view or self.leader_of(message.new_view) != self.node_id:
            return
        if message.new_view in self._synced_views:
            return
        bucket = self._stopdata.setdefault(message.new_view, {})
        bucket[src] = message
        self._maybe_sync(message.new_view)

    def _maybe_sync(self, new_view: int) -> None:
        """Emit SYNC once we lead ``new_view``, entered it, and hold 2f+1
        state reports."""
        if new_view != self.view or not self.in_view_change:
            return
        if new_view in self._synced_views:
            return
        bucket = self._stopdata.get(new_view, {})
        if len(bucket) < self.quorum:
            return
        self._synced_views.add(new_view)
        # Choose re-proposals: write-certified values win; a value decided
        # anywhere is write-certified in at least one collected report.
        chosen: Dict[int, Tuple[Any, bool]] = {}
        base = min(data.last_decided for data in bucket.values())
        for data in bucket.values():
            for seq, (digest_, batch, has_cert) in data.proposals.items():
                if seq <= base:
                    continue
                current = chosen.get(seq)
                if current is None or (has_cert and not current[1]):
                    chosen[seq] = (batch, has_cert)
        reproposals = {seq: batch for seq, (batch, _) in sorted(chosen.items())}
        size = 128 + self.n * 16 + sum(b.size_bytes for b in reproposals.values())
        sync = Sync(new_view, base, reproposals, size)
        extra = self.config.sync_processing_cost * max(len(reproposals), 1)
        for dst in self.peers:
            if dst == self.node_id:
                continue
            self.send(
                dst, sync, size=size,
                recv_cost=self._recv_cost(size, extra),
                send_cost=self._send_cost(),
            )
        self._apply_sync(self.node_id, sync)

    def _on_sync(self, src: int, message: Sync) -> None:
        if src != self.leader_of(message.new_view):
            return
        self._apply_sync(src, message)

    def _apply_sync(self, src: int, message: Sync) -> None:
        if message.new_view < self.view:
            return
        self.view = message.new_view
        self.in_view_change = False
        self._refresh_leader_flag()
        # Restart request timers: the new leader deserves a full timeout
        # before anyone votes to depose it.
        now = self.clock.now
        self._pending = {
            key: (payment, now) for key, (payment, _) in self._pending.items()
        }
        highest = message.base_seq
        for seq, batch in message.reproposals.items():
            highest = max(highest, seq)
            instance = self._instances.setdefault(seq, _Instance())
            if instance.decided:
                continue
            # Adopt the re-proposal and restart the quorum phases for it.
            instance.batch = batch
            instance.digest = batch.cached_digest
            instance.write_sent = False
            instance.accept_sent = False
            instance.writes.clear()
            instance.accepts.clear()
            self._maybe_write(seq, instance)
        if self.leader_of(self.view) == self.node_id:
            self._next_propose = max(self._next_propose, highest + 1)
            self._outstanding = 0
            # Reintroduce requests that were in flight under the old leader.
            reproposed = {
                payment.identifier
                for batch in message.reproposals.values()
                for payment in batch
            }
            for key, (payment, _) in sorted(self._pending.items(), key=lambda kv: kv[1][1]):
                if key not in reproposed:
                    self._request_queue.append(payment)
            self._schedule_flush()

    # ------------------------------------------------------------------
    # Durable state & crash recovery (live cluster only)
    # ------------------------------------------------------------------
    def bind_persistence(self, store):
        """Attach a WAL/snapshot store and recover any prior state.

        The consensus baseline logs one ``exec`` record per decided slot
        (write-ahead of execution); replay re-applies the slots past the
        snapshot in order.  Must run before the transport starts, so
        replayed client replies fall on the floor.
        """
        from ..core.persistence import (
            RecoveryReport,
            WalCorruption,
            restore_account_state,
            state_fingerprint,
        )

        self._wal = store
        snapshot = store.load_snapshot()
        replay_from = 0
        if snapshot is not None:
            restore_account_state(self.ledger.state, snapshot["account"])
            self.ledger.settled_count = snapshot["settled_count"]
            self.ledger._waiting = {
                c: dict(q) for c, q in snapshot["waiting"].items()
            }
            self._last_executed = snapshot["last_executed"]
            self.executed_count = snapshot["executed_count"]
            replay_from = snapshot["wal_count"]
            if snapshot["fingerprint"] != state_fingerprint(self.ledger.state):
                raise WalCorruption(
                    f"replica {self.node_id}: snapshot fingerprint mismatch"
                )
        replayed = 0
        for index, record in enumerate(store.recovery_records()):
            if index < replay_from:
                continue
            kind = record[0]
            if kind == "exec":
                slot, batch = record[1], record[2]
                if slot <= self._last_executed:
                    continue  # already captured by the snapshot
                self._last_executed = slot
                for payment in batch:
                    self.ledger.apply(payment)
            elif kind == "fp":
                actual = state_fingerprint(self.ledger.state)
                if record[1] != actual:
                    raise WalCorruption(
                        f"replica {self.node_id}: replay diverged at WAL "
                        f"fingerprint {record[1][:12]}.."
                    )
            replayed += 1
        # Slots above the replayed frontier must be re-decided; the
        # ordering protocol (or a view change) re-proposes them.
        self._next_propose = max(self._next_propose, self._last_executed + 1)
        store.finish_recovery()
        return RecoveryReport(
            snapshot is not None, replayed, state_fingerprint(self.ledger.state)
        )

    def _wal_checkpoint(self) -> None:
        from ..core.persistence import snapshot_account_state, state_fingerprint

        store = self._wal
        if store.fingerprint_due():
            store.record_fingerprint(state_fingerprint(self.ledger.state))
        if store.snapshot_due():
            store.write_snapshot({
                "fingerprint": state_fingerprint(self.ledger.state),
                "account": snapshot_account_state(self.ledger.state),
                "settled_count": self.ledger.settled_count,
                "waiting": {
                    c: dict(q) for c, q in self.ledger._waiting.items()
                },
                "last_executed": self._last_executed,
                "executed_count": self.executed_count,
            })

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self):
        return self.ledger.state

    @property
    def pending_count(self) -> int:
        return len(self._pending)
