"""Measurement utilities: throughput buckets and latency percentiles.

The paper reports settled payments/second ("pps"), average and 95th/99th
percentile latency, and per-second throughput timelines (Figs. 3–7,
Table I).  These classes collect exactly those series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "LatencyRecorder",
    "ThroughputMeter",
    "LatencySummary",
    "Counter",
    "summarize_values",
]


class LatencySummary:
    """Immutable summary of a latency sample set (seconds)."""

    __slots__ = ("count", "mean", "p50", "p95", "p99", "max")

    def __init__(
        self, count: int, mean: float, p50: float, p95: float, p99: float, max_: float
    ) -> None:
        self.count = count
        self.mean = mean
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99
        self.max = max_

    @classmethod
    def empty(cls) -> "LatencySummary":
        nan = float("nan")
        return cls(0, nan, nan, nan, nan, nan)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "<LatencySummary empty>"
        return (
            f"<LatencySummary n={self.count} mean={self.mean * 1e3:.1f}ms "
            f"p95={self.p95 * 1e3:.1f}ms>"
        )


def summarize_values(values: Sequence[float]) -> LatencySummary:
    """Summarize a latency sample sequence.

    Shared by :class:`LatencyRecorder` and the sharded engine's
    cross-shard merge (:mod:`repro.sim.shard`): the mean is computed by
    numpy over the values *in the given order*, so a merge that
    reproduces the serial engine's sample order reproduces the summary
    bit-for-bit.
    """
    if not values:
        return LatencySummary.empty()
    arr = np.asarray(values)
    p50, p95, p99 = np.percentile(arr, [50, 95, 99])
    return LatencySummary(
        len(arr), float(arr.mean()), float(p50), float(p95), float(p99),
        float(arr.max()),
    )


class LatencyRecorder:
    """Records per-operation latencies within an observation window."""

    def __init__(self, window_start: float = 0.0, window_end: float = math.inf):
        self.window_start = window_start
        self.window_end = window_end
        self._samples: List[float] = []

    def record(self, submitted_at: float, completed_at: float) -> None:
        """Record one operation if it *completed* inside the window."""
        if self.window_start <= completed_at <= self.window_end:
            self._samples.append(completed_at - submitted_at)

    def record_value(self, latency: float) -> None:
        self._samples.append(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    def summary(self) -> LatencySummary:
        return summarize_values(self._samples)

    def reset(self) -> None:
        self._samples.clear()


class ThroughputMeter:
    """Counts completions into fixed-width time buckets.

    ``series()`` yields the per-second timeline plotted in Figs. 5–7;
    ``rate()`` gives the average over a window, the "pps" of Fig. 3 /
    Table I.
    """

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be positive: {bucket_width}")
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def record(self, at_time: float, count: int = 1) -> None:
        index = int(at_time / self.bucket_width)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += count

    def series(self, start: float, end: float) -> List[float]:
        """Per-bucket rates (ops/sec) for buckets fully inside [start, end)."""
        first = int(math.ceil(start / self.bucket_width))
        last = int(math.floor(end / self.bucket_width))
        return [
            self._buckets.get(i, 0) / self.bucket_width for i in range(first, last)
        ]

    def count_between(self, start: float, end: float) -> int:
        first = int(math.ceil(start / self.bucket_width))
        last = int(math.floor(end / self.bucket_width))
        return sum(self._buckets.get(i, 0) for i in range(first, last))

    def rate(self, start: float, end: float) -> float:
        """Average completion rate over [start, end).

        Computed over the bucket-aligned sub-window actually counted by
        :meth:`count_between`, so a window that is not a multiple of the
        bucket width does not bias the rate downward.

        When the window contains *no* fully aligned bucket (a tightly
        shrunk peak-search probe window can be narrower than one bucket),
        the aligned count is empty — returning 0.0 here used to read as
        "zero achieved", which a peak search misreads as total
        saturation.  Fall back to the overlapping buckets with each edge
        bucket weighted by its fractional overlap with [start, end):
        under the uniform-within-bucket assumption this is unbiased (and
        exact for steady traffic), where counting whole edge buckets
        would over-report without bound as the window shrinks.
        """
        width = self.bucket_width
        first = int(math.ceil(start / width))
        last = int(math.floor(end / width))
        covered = (last - first) * width
        if covered <= 0:
            span = end - start
            if span <= 0:
                return 0.0
            buckets = self._buckets
            count = 0.0
            for index in range(int(math.floor(start / width)),
                               int(math.ceil(end / width))):
                in_bucket = buckets.get(index, 0)
                if not in_bucket:
                    continue
                bucket_start = index * width
                overlap = min(end, bucket_start + width) - max(start, bucket_start)
                count += in_bucket * (overlap / width)
            return count / span
        return self.count_between(start, end) / covered

    def reset(self) -> None:
        self._buckets.clear()
        self.total = 0


class Counter:
    """Named integer counters (message/protocol statistics)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()
