"""Asynchronous conservative intra-simulation parallelism (channel clocks).

One full-scale Fig. 3 cell (Astro at N=100) is a single O(N²) simulation
pinned to one core — scenario-level parallelism (``repro.bench.parallel``)
cannot help *inside* it.  This module partitions the replicas of ONE
simulation across worker processes and paces them with per-channel
conservative clocks — classic Chandy–Misra–Bryant null-message
synchronization, not windowed barriers:

* **Channel lookahead.**  For every ordered pair of shards ``p → q`` the
  latency model bounds how soon a message sent by ``p`` can arrive at
  ``q``: NIC serialization plus the pair's minimum one-way delay
  (:meth:`~repro.sim.latency.LatencyModel.channel_lookaheads`).  Shards
  in distant regions face each other over a wide floor (≥ 4 ms on the
  paper's EU mesh) even when other channels are narrow — no global
  minimum throttles the whole fleet.
* **Null-message pacing.**  Workers exchange cross-shard sends directly
  over FIFO pipes; every message piggybacks the sender's *floor* — a
  promise never to execute (hence send) below that simulated time.  A
  worker keeps one clock per **incoming** channel (the peer's last
  floor) and advances its local event loop to the minimum over incoming
  channels of ``clock + channel lookahead`` only.  Floors advance even
  when no payload flows (the null message), so a quiet channel never
  stalls its receiver for long, and an *empty* shard (no crossing node
  pair, infinite lookahead) never constrains anyone at all.
* **Canonical per-channel merge.**  FIFO pipes deliver a channel's
  entries before the floor that covers them; receivers insert each
  channel batch in canonical ``(arrival_time, src, src_seq)`` order, so
  the protocol-visible history is a pure function of scenario + seed —
  independent of shard count, worker scheduling, and start method.
* **Replicated drivers.**  Load generation, fault-free in open-loop
  measurement runs, is a deterministic function of (workload seed,
  tick schedule).  Every worker builds the *full* system and runs the
  same driver; it executes submissions only for replicas it owns, so
  no central injector needs to ship per-payment messages across shards.

A probe ends when a worker has run to the horizon *and* every incoming
clock has passed it: in-flight cross-shard arrivals beyond the horizon
are then guaranteed received and parked in the local calendar — exactly
the undelivered in-flight state the serial engine holds — which keeps
warm probe chains byte-identical.

Determinism requirements (validated at worker start):

* the latency model must be *pair-decomposable*
  (:attr:`~repro.sim.latency.LatencyModel.pair_decomposable`): each
  (src, dst) pair samples its delays from its own deterministic stream,
  so draws do not depend on the global send interleaving;
* it must draw *continuous* delays
  (:attr:`~repro.sim.latency.LatencyModel.continuous_delays`): exact
  arrival-time ties between distinct sends would be ordered by local
  scheduling seq serially but by the channel merge here, and which pairs
  cross shards depends on the partition — continuous jitter makes such
  ties measure-zero;
* every populated channel's lookahead must be positive (otherwise there
  is no pacing bound);
* all workers must share one interpreter hash seed — signature tokens
  and digests use ``hash()``.  ``fork`` inherits it; under ``spawn``
  the coordinator pins ``PYTHONHASHSEED`` for its workers.

The engine currently supports the Astro systems driven by open-loop
probes (the Fig. 3 peak-search cells this exists for).  BFT cells stay
serial: consensus replicas schedule timeout machinery at construction,
which would fire on non-owned stale state in every worker.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import queue
import threading
from heapq import heappush as _heappush
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SHARDS_ENV",
    "ShardedOpenLoop",
    "ShardingUnsupported",
    "resolve_shards",
    "shard_owner",
    "state_fingerprints",
]

#: Environment variable selecting the shard count for one simulation:
#: unset/"1" = the serial engine (byte-identical to no sharding at all),
#: an integer > 1 = that many worker processes, "auto"/"0" = one per
#: available CPU, capped at _AUTO_SHARD_CAP (see resolve_shards).
SHARDS_ENV = "REPRO_SIM_SHARDS"

#: Ceiling for ``REPRO_SIM_SHARDS=auto``.  Channel-clock pacing scales
#: with cores (each shard exchanges floors with every peer, so per-slice
#: overhead grows with the shard count); past ~8 shards the mesh chatter
#: eats the residual speedup on the N ≤ 100 cells this engine serves.
#: Explicit counts are honored verbatim.
_AUTO_SHARD_CAP = 8

#: Pickle protocol for cross-shard message buffers.  One dumps() per
#: (slice, destination shard): payload objects shared by many arrivals
#: (a broadcast batch) are serialized once per buffer via the pickle memo.
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class ShardingUnsupported(RuntimeError):
    """The scenario cannot run sharded (no lookahead, unsupported system)."""


def resolve_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument, else ``REPRO_SIM_SHARDS``, else 1.

    ``auto`` is one shard per usable CPU, capped at
    :data:`_AUTO_SHARD_CAP`: per-channel clocks keep distant shards
    loosely coupled past one shard per WAN region (regions split into
    sub-shards), but floor chatter is all-to-all, so unbounded counts
    stop paying.  Explicit counts are honored verbatim (an operator may
    know better).
    """
    if shards is None:
        # Lazy import: bench.parallel lazily imports this module in the
        # other direction, so neither import runs at module load.
        from ..bench.parallel import parse_count_env, usable_cpus

        return parse_count_env(
            SHARDS_ENV, lambda: min(usable_cpus(), _AUTO_SHARD_CAP)
        )
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return shards


def shard_owner(node_id: int, shards: int) -> int:
    """The shard owning ``node_id`` (round-robin: balanced for the
    round-robin client→representative assignment of the builders)."""
    return node_id % shards


def state_fingerprints(system: Any) -> Dict[int, str]:
    """SHA-256 fingerprint of every replica's protocol state.

    The byte-identity witness used by the shard-determinism tests: the
    serial engine computes it in-process, the sharded engine merges each
    worker's fingerprints of the replicas it owns.
    """
    return {
        replica.node_id: hashlib.sha256(
            repr(replica.state.snapshot()).encode()
        ).hexdigest()
        for replica in system.replicas
    }


def _settled_counts(system: Any, owned: Optional[frozenset] = None) -> Dict[int, int]:
    return {
        replica.node_id: replica.settled_count
        for replica in system.replicas
        if owned is None or replica.node_id in owned
    }


# ---------------------------------------------------------------------------
# Channel clocks
# ---------------------------------------------------------------------------


class _ChannelClocks:
    """Per-incoming-channel conservative clocks.

    ``floors[peer]`` is the channel lookahead peer → here (how far any
    message lags its send time); ``clock[peer]`` is the peer's last
    advertised floor — a promise that it will not execute, hence not
    send, below that simulated time.  The safe local horizon is the
    minimum over incoming channels of ``clock + lookahead``: every
    not-yet-received cross-shard arrival lands at or beyond it.

    Clocks are monotone: a stale floor (pipes are FIFO, so this only
    happens when a payload ships without a floor advance) is ignored.
    """

    __slots__ = ("floors", "clock")

    def __init__(self, floors: Dict[int, float], start: float) -> None:
        self.floors = dict(floors)
        self.clock: Dict[int, float] = {peer: start for peer in floors}

    def update(self, peer: int, floor: float) -> bool:
        """Refresh one channel from a (null-)message timestamp."""
        if floor > self.clock[peer]:
            self.clock[peer] = floor
            return True
        return False

    def horizon(self) -> float:
        """Largest simulated time safe to execute up to.

        A stalled channel (no floor refresh) pins the horizon at its
        last clock plus its lookahead — the conservative lower bound.
        An unpopulated channel has an infinite lookahead and never
        constrains; with no incoming channels at all the horizon is
        unbounded.
        """
        clock = self.clock
        floors = self.floors
        return min(
            (clock[peer] + floors[peer] for peer in floors),
            default=float("inf"),
        )

    def all_at_least(self, time: float) -> bool:
        """True when every incoming clock has reached ``time``."""
        return all(value >= time for value in self.clock.values())


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _SampleRecorder:
    """Latency recorder that keeps ``(completed_at, latency)`` pairs.

    The cross-shard merge needs completion times to reconstruct the
    serial engine's sample order; a worker only observes confirmations
    of the replicas it owns.  Window attributes are pinned by
    :func:`repro.bench.runner.setup_open_loop`.
    """

    def __init__(self) -> None:
        self.window_start = 0.0
        self.window_end = float("inf")
        self.samples: List[Tuple[float, float]] = []

    def record(self, submitted_at: float, completed_at: float) -> None:
        if self.window_start <= completed_at <= self.window_end:
            self.samples.append((completed_at, completed_at - submitted_at))


class _MeshSender(threading.Thread):
    """Background writer for a worker's outgoing mesh pipes.

    Blocking ``Connection.send`` on a full pipe while the peer blocks
    sending back is the classic two-way-pipe deadlock; routing all
    outgoing traffic through one thread keeps the main loop free to
    drain incoming channels regardless of backpressure.  A single queue
    serialized by one thread preserves per-channel FIFO order, which the
    canonical merge relies on.
    """

    def __init__(self, conns: Dict[int, Any]) -> None:
        super().__init__(daemon=True, name="shard-mesh-sender")
        self._conns = conns
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.error: Optional[BaseException] = None

    def post(self, peer: int, payload: tuple) -> None:
        self._queue.put((peer, payload))

    def stop(self) -> None:
        self._queue.put(None)

    def run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            peer, payload = item
            try:
                self._conns[peer].send(payload)
            except (OSError, ValueError) as exc:
                # Peer (or the whole fleet) is gone; surface to the main
                # loop, which relays a typed error to the coordinator.
                self.error = exc
                return


class _WorkerState:
    """Everything one shard worker holds between commands."""

    def __init__(self, spec: Dict[str, Any], index: int, count: int) -> None:
        self.spec = spec
        self.index = index
        self.count = count
        self.system: Any = None
        self.owned: frozenset = frozenset()
        self.owner_map: Dict[int, int] = {}
        self.outbox: List[tuple] = []
        self.lookahead = 0.0
        #: Incoming channel lookaheads {peer shard: seconds}; inf for
        #: channels no node pair can use (an empty shard on either end).
        self.channel_floors: Dict[int, float] = {}

    def build(self) -> None:
        from ..bench.systems import SYSTEM_BUILDERS

        spec = self.spec
        builder = SYSTEM_BUILDERS[spec["system"]]
        system = builder(
            spec["size"], seed=spec["seed"], **(spec.get("builder_kwargs") or {})
        )
        latency = system.network.latency
        lookahead = latency.min_delay()
        if lookahead <= 0.0:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} provides no "
                f"lookahead (min_delay() == {lookahead}); cannot shard"
            )
        if not latency.pair_decomposable:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} is not "
                "pair-decomposable: per-message draws would depend on the "
                "shard count (build it with pair_streams=True)"
            )
        if not latency.continuous_delays:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} produces exact "
                "arrival-time ties (no continuous jitter), whose order "
                "would depend on the shard partition; cannot shard"
            )
        try:
            node_ids = system.replica_node_ids
        except AttributeError:
            raise ShardingUnsupported(
                f"system {spec['system']!r} does not expose replica_node_ids; "
                "intra-simulation sharding supports the Astro systems"
            ) from None
        count = self.count
        # Topology-aware partition (pure function of the latency model,
        # so every worker computes the identical map).  The scalar
        # lookahead is the tightest cross-shard floor — reporting and
        # sanity only; pacing runs on the per-channel floors below.
        owner, lookahead = latency.shard_partition(node_ids, count)
        if lookahead <= 0.0:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} provides no "
                f"cross-shard lookahead ({lookahead}); cannot shard"
            )
        floors = latency.channel_lookaheads(node_ids, owner)
        channel_floors = {
            peer: floors.get((peer, self.index), float("inf"))
            for peer in range(count)
            if peer != self.index
        }
        for peer, floor in channel_floors.items():
            if floor <= 0.0:
                raise ShardingUnsupported(
                    f"channel {peer}→{self.index} has no lookahead "
                    f"({floor}); cannot pace shards"
                )
        self.owner_map = owner
        owned = frozenset(
            node_id for node_id in node_ids if owner[node_id] == self.index
        )
        self.outbox = []
        system.network.configure_sharding(owned, self.outbox)
        # Replicated drivers call system.submit for *every* generated
        # payment; only the owner of the spender's representative executes
        # it.  Shadow the bound method with the ownership filter.
        original_submit = system.submit
        rep_map = system.directory.rep_map

        def filtered_submit(spender, beneficiary, amount):
            if rep_map[spender] in owned:
                return original_submit(spender, beneficiary, amount)
            return None

        system.submit = filtered_submit
        self.system = system
        self.owned = owned
        self.lookahead = lookahead
        self.channel_floors = channel_floors


def _next_event_time(sim: Any) -> float:
    heap = sim._heap
    return heap[0][0] if heap else float("inf")


def _insert_arrivals(system: Any, blobs: Sequence[bytes]) -> None:
    """Merge one channel's cross-shard arrivals into the local calendar.

    Canonical ``(arrival_time, src, src_seq)`` order per channel batch:
    sequence numbers are unique per source, so the sort never reaches
    the payload, and two same-time arrivals at one destination execute
    in an order that is a pure function of message content — not of
    shard count or batch timing.  FIFO channels deliver earlier batches
    first, so a source's entries always insert in send order.
    """
    if not blobs:
        return
    entries: List[tuple] = []
    for blob in blobs:
        entries.extend(pickle.loads(blob))
    entries.sort(key=lambda entry: entry[:3])
    sim = system.sim
    heap = sim._heap
    arrive = system.network._arrive
    for time, src, _src_seq, dst, payload, recv_cost in entries:
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(heap, (time, seq, arrive, (src, dst, payload, recv_cost)))


def _drain_outbox(state: _WorkerState) -> Dict[int, bytes]:
    """Group buffered cross-shard sends by destination shard.

    Returns ``{shard: pickled entries}`` ready to ship on the mesh,
    in outbox (send) order — the receiver applies the canonical sort.
    """
    outbox = state.outbox
    if not outbox:
        return {}
    owner = state.owner_map
    groups: Dict[int, List[tuple]] = {}
    for entry in outbox:
        groups.setdefault(owner[entry[3]], []).append(entry)
    outbox.clear()
    return {
        shard: pickle.dumps(entries, _PICKLE_PROTOCOL)
        for shard, entries in groups.items()
    }


def _drain_channels(
    recv_conns: Dict[int, Any], clocks: _ChannelClocks, system: Any
) -> bool:
    """Non-blocking drain of every incoming channel.

    Applies each message's payload (entries, canonically merged) and
    null-message timestamp (floor refresh).  Returns True when any
    clock advanced.
    """
    progressed = False
    for peer, conn in recv_conns.items():
        while conn.poll():
            try:
                floor, blob = conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard peer {peer} disconnected mid-probe"
                ) from None
            if blob is not None:
                _insert_arrivals(system, (blob,))
            if clocks.update(peer, floor):
                progressed = True
    return progressed


def _worker_probe(
    conn,
    state: _WorkerState,
    params: Dict[str, Any],
    recv_conns: Dict[int, Any],
    sender: _MeshSender,
) -> None:
    from ..bench.runner import finish_open_loop, setup_open_loop

    if params["fresh"] or state.system is None:
        state.build()
    system = state.system
    sim = system.sim
    recorder = _SampleRecorder()
    driver, meter, recorder, window_start, window_end = setup_open_loop(
        system,
        rate=params["rate"],
        duration=params["duration"],
        warmup=params["warmup"],
        seed=params["seed"],
        recorder=recorder,
    )
    until = window_end + params["drain"]
    conn.send(
        (
            "probe_info",
            window_start,
            window_end,
            until,
            state.lookahead,
            _next_event_time(sim),
        )
    )
    # --- asynchronous conservative loop -------------------------------
    # All workers enter the probe at the same simulated time (fresh
    # build: 0; warm probe: the previous probe's horizon), which is the
    # valid initial lower bound for every channel clock.
    clocks = _ChannelClocks(state.channel_floors, sim.now)
    floor_sent: Dict[int, float] = {
        peer: float("-inf") for peer in state.channel_floors
    }
    published = sim.now
    while True:
        if sender.error is not None:
            raise RuntimeError(f"mesh send failed: {sender.error!r}")
        progressed = _drain_channels(recv_conns, clocks, system)
        horizon = clocks.horizon()
        run_to = min(horizon, until)
        ran = False
        if run_to > sim.now:
            sim.run(until=run_to)
            ran = True
        # Outgoing floor: nothing can execute before the earlier of the
        # next local event and the incoming-channel horizon.  Kept as a
        # running max — a later cross-shard arrival may pull next-event
        # back below an already-published promise, but never below the
        # horizon that promise was derived from, so the promise holds.
        floor = min(_next_event_time(sim), horizon)
        if floor > published:
            published = floor
        groups = _drain_outbox(state) if ran else {}
        for peer in floor_sent:
            blob = groups.get(peer)
            # A floor >= until is the last word a peer needs: it may
            # break right after reading it, so publishing any further
            # refresh would strand the message in the pipe and poison
            # the next probe's channel clocks.
            if blob is not None or (
                published > floor_sent[peer] and floor_sent[peer] < until
            ):
                floor_sent[peer] = published
                sender.post(peer, (published, blob))
        if sim.now >= until and clocks.all_at_least(until):
            break
        if not (ran or progressed):
            # Nothing to do until a peer advances: block on the mesh
            # (and the control pipe, so coordinator teardown wakes us).
            ready = _connection_wait([*recv_conns.values(), conn])
            if conn in ready:
                message = conn.recv()  # EOFError propagates = teardown
                if message[0] == "exit":
                    # Coordinator is tearing the fleet down mid-probe.
                    raise EOFError("coordinator aborted probe")
                raise RuntimeError(
                    f"unexpected mid-probe command {message[0]!r}"
                )
    finish_open_loop(system, driver)
    conn.send(
        (
            "probe_result",
            {
                "bucket_width": meter.bucket_width,
                "buckets": dict(meter._buckets),
                "samples": recorder.samples,
                "injected": driver.injected,
                "confirmed": driver.confirmed,
                "window_start": window_start,
                "window_end": window_end,
            },
        )
    )


def _worker_main(
    conn,
    spec: Dict[str, Any],
    index: int,
    count: int,
    recv_conns: Dict[int, Any],
    send_conns: Dict[int, Any],
) -> None:
    state = _WorkerState(spec, index, count)
    sender = _MeshSender(send_conns)
    sender.start()
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "probe":
                _worker_probe(conn, state, message[1], recv_conns, sender)
            elif kind == "build":
                state.build()
                conn.send(("built", state.lookahead))
            elif kind == "fingerprint":
                system = state.system
                if system is None:
                    conn.send(("fingerprints", {}, {}))
                else:
                    owned = state.owned
                    prints = {
                        node_id: digest
                        for node_id, digest in state_fingerprints(system).items()
                        if node_id in owned
                    }
                    conn.send(
                        ("fingerprints", prints, _settled_counts(system, owned))
                    )
            elif kind == "exit":
                return
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown command {kind!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    except ShardingUnsupported as exc:
        # Typed relay: the coordinator re-raises this as
        # ShardingUnsupported so callers can fall back to the serial
        # engine (repro.bench.jobs does).
        try:
            conn.send(("error", str(exc), "unsupported"))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    except Exception:
        import traceback

        try:
            conn.send(("error", traceback.format_exc(), "crash"))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    finally:
        sender.stop()
        sender.join(timeout=5)
        for peer_conn in (*recv_conns.values(), *send_conns.values()):
            try:
                peer_conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class ShardedOpenLoop:
    """Coordinator for one sharded simulation driven by open-loop probes.

    Workers persist across probes (peak searches reuse warm systems) and
    pace each other directly over a full mesh of FIFO pipes; the
    coordinator only issues commands and merges results.
    :meth:`probe` is a drop-in for the serial build-and-
    :func:`~repro.bench.runner.run_open_loop` cycle and returns a merged
    :class:`~repro.bench.runner.RunResult` that is byte-identical to the
    serial engine's on the same scenario.

    ``spec`` is the picklable scenario description:
    ``{"system": name, "size": N, "seed": int, "builder_kwargs": {...}}``
    against :data:`repro.bench.systems.SYSTEM_BUILDERS`.
    """

    def __init__(
        self,
        spec: Dict[str, Any],
        shards: int,
        drain: float = 0.5,
        start_method: Optional[str] = None,
    ) -> None:
        if shards < 2:
            raise ValueError(
                f"ShardedOpenLoop needs >= 2 shards (got {shards}); "
                "use the serial engine for 1"
            )
        if spec.get("system") not in ("astro1", "astro2"):
            raise ShardingUnsupported(
                f"intra-simulation sharding supports the Astro systems; "
                f"got {spec.get('system')!r}"
            )
        self.spec = dict(spec)
        self.shards = shards
        self.drain = drain
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        # One one-way pipe per ordered shard pair: worker p writes
        # send_maps[p][q], worker q reads recv_maps[q][p].  FIFO order
        # per channel is what lets floors cover earlier payloads.
        recv_maps: List[Dict[int, Any]] = [{} for _ in range(shards)]
        send_maps: List[Dict[int, Any]] = [{} for _ in range(shards)]
        for src in range(shards):
            for dst in range(shards):
                if src == dst:
                    continue
                reader, writer = context.Pipe(duplex=False)
                recv_maps[dst][src] = reader
                send_maps[src][dst] = writer
        # Workers must agree on the interpreter hash seed: signature
        # tokens and digests are hash()-derived, and a message signed in
        # one worker is verified in another.  fork inherits the parent's
        # seed; spawn starts fresh interpreters, so pin the environment
        # (histories themselves are hash-seed-independent, so the pinned
        # value does not matter — only that it is shared).
        pin_applied = False
        previous_value: Optional[str] = None
        if context.get_start_method() != "fork":
            previous_value = os.environ.get("PYTHONHASHSEED")
            # Absent, "" and "random" all randomize per interpreter —
            # every one of them must be pinned for the workers.
            if previous_value is None or previous_value in ("", "random"):
                os.environ["PYTHONHASHSEED"] = "0"
                pin_applied = True
        try:
            for index in range(shards):
                ours, theirs = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        theirs,
                        self.spec,
                        index,
                        shards,
                        recv_maps[index],
                        send_maps[index],
                    ),
                    daemon=True,
                )
                process.start()
                theirs.close()
                self._connections.append(ours)
                self._processes.append(process)
        finally:
            if pin_applied:
                if previous_value is None:
                    del os.environ["PYTHONHASHSEED"]
                else:
                    os.environ["PYTHONHASHSEED"] = previous_value
            # The coordinator is not part of the mesh: drop its copies
            # so worker exits propagate EOF to their peers.
            for maps in (recv_maps, send_maps):
                for per_worker in maps:
                    for connection in per_worker.values():
                        connection.close()

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _raise_error(self, message: tuple) -> None:
        self.close()
        if len(message) > 2 and message[2] == "unsupported":
            raise ShardingUnsupported(message[1])
        raise RuntimeError(f"shard worker failed:\n{message[1]}")

    def _recv(self, connection) -> tuple:
        message = connection.recv()
        if message[0] == "error":
            self._raise_error(message)
        return message

    def _collect(self) -> List[tuple]:
        """One message from every worker, serviced in readiness order.

        Workers pace each other directly, so worker 0 may legitimately
        finish last; a worker that errors (or dies) must be noticed even
        while its peers are still blocked on it — a fixed recv order
        would deadlock behind the stuck pipe.
        """
        pending = {
            connection: index
            for index, connection in enumerate(self._connections)
        }
        messages: List[Optional[tuple]] = [None] * len(pending)
        while pending:
            for connection in _connection_wait(list(pending)):
                index = pending.pop(connection)
                try:
                    message = connection.recv()
                except EOFError:
                    self.close()
                    raise RuntimeError(
                        f"shard worker {index} died without reporting"
                    ) from None
                if message[0] == "error":
                    self._raise_error(message)
                messages[index] = message
        return messages

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def prepare(self) -> float:
        """(Re)build every worker's system now; returns the lookahead.

        Splits construction cost out of the next probe: after
        ``prepare()``, ``probe(fresh=False)`` measures exactly what the
        serial engine's build-then-run cycle measures after ``factory()``
        — the wall-clock comparison the perf tests make.
        """
        for connection in self._connections:
            connection.send(("build",))
        lookaheads = {message[1] for message in self._collect()}
        if len(lookaheads) != 1:
            self.close()
            raise RuntimeError(f"shard lookaheads diverged: {lookaheads}")
        return lookaheads.pop()

    def probe(
        self,
        rate: float,
        duration: float,
        warmup: float,
        fresh: bool = True,
        seed: Optional[int] = None,
    ) -> Any:
        """Run one open-loop measurement across the shard fleet."""
        params = {
            "rate": rate,
            "duration": duration,
            "warmup": warmup,
            "drain": self.drain,
            "seed": self.spec["seed"] if seed is None else seed,
            "fresh": fresh,
        }
        for connection in self._connections:
            connection.send(("probe", params))
        infos = self._collect()
        reference = infos[0][1:5]
        for info in infos[1:]:
            if info[1:5] != reference:
                self.close()
                raise RuntimeError(
                    f"shard clocks diverged at probe start: {infos!r}"
                )
        # Workers now pace each other over the mesh; the coordinator
        # just waits for every merged result.
        parts = [message[1] for message in self._collect()]
        return self._merge(parts, rate, duration)

    @staticmethod
    def _merge(parts: List[Dict[str, Any]], rate: float, duration: float):
        from ..bench.runner import RunResult
        from .metrics import ThroughputMeter, summarize_values

        first = parts[0]
        meter = ThroughputMeter(bucket_width=first["bucket_width"])
        buckets = meter._buckets
        for part in parts:
            for index, count in part["buckets"].items():
                buckets[index] = buckets.get(index, 0) + count
                meter.total += count
        achieved = meter.rate(first["window_start"], first["window_end"])
        # Stable sort on completion time alone: each replica's samples
        # live in exactly one worker, so same-time samples of one replica
        # (a settled batch confirms many payments at one instant) keep
        # their drain order under any shard count — reproducing the
        # serial engine's sample order.
        samples: List[Tuple[float, float]] = []
        for part in parts:
            samples.extend(part["samples"])
        samples.sort(key=lambda sample: sample[0])
        latency = summarize_values([value for _at, value in samples])
        injected = first["injected"]
        for part in parts[1:]:
            if part["injected"] != injected:
                raise RuntimeError(
                    "replicated drivers diverged: injected counts "
                    f"{[p['injected'] for p in parts]}"
                )
        return RunResult(
            offered=rate,
            achieved=achieved,
            latency=latency,
            injected=injected,
            confirmed=sum(part["confirmed"] for part in parts),
            duration=duration,
        )

    def fingerprint(self) -> Dict[str, Any]:
        """Merged per-replica state fingerprints and settled counts."""
        for connection in self._connections:
            connection.send(("fingerprint",))
        prints: Dict[int, str] = {}
        settled: Dict[int, int] = {}
        for message in self._collect():
            _kind, part_prints, part_settled = message
            prints.update(part_prints)
            settled.update(part_settled)
        return {
            "state": dict(sorted(prints.items())),
            "settled": dict(sorted(settled.items())),
        }

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("exit",))
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        for connection in self._connections:
            connection.close()
        self._connections = []
        self._processes = []

    def __enter__(self) -> "ShardedOpenLoop":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
