"""Conservative intra-simulation parallelism (lookahead sharding).

One full-scale Fig. 3 cell (Astro at N=100) is a single O(N²) simulation
pinned to one core — scenario-level parallelism (``repro.bench.parallel``)
cannot help *inside* it.  This module partitions the replicas of ONE
simulation across worker processes and runs them in conservative time
windows, the textbook PDES recipe:

* **Lookahead.**  No message arrives sooner than NIC serialization plus
  the latency model's minimum one-way delay
  (:meth:`~repro.sim.latency.LatencyModel.min_delay`).  All shards can
  therefore execute one lookahead window of simulated time without
  communicating: any cross-shard message generated inside the window
  arrives at or after the next window.
* **Barrier merge.**  Each shard buffers its cross-shard sends (the
  :class:`~repro.sim.network.Network` shard routing) and the coordinator
  redistributes them at the window barrier.  Receivers insert arrivals
  in canonical ``(arrival_time, src, src_seq)`` order, so the
  protocol-visible history is a pure function of scenario + seed —
  independent of shard count, worker scheduling, and start method.
* **Replicated drivers.**  Load generation, fault-free in open-loop
  measurement runs, is a deterministic function of (workload seed,
  tick schedule).  Every worker builds the *full* system and runs the
  same driver; it executes submissions only for replicas it owns, so
  no central injector needs to ship per-payment messages across shards.

Determinism requirements (validated at worker start):

* the latency model must be *pair-decomposable*
  (:attr:`~repro.sim.latency.LatencyModel.pair_decomposable`): each
  (src, dst) pair samples its delays from its own deterministic stream,
  so draws do not depend on the global send interleaving;
* it must draw *continuous* delays
  (:attr:`~repro.sim.latency.LatencyModel.continuous_delays`): exact
  arrival-time ties between distinct sends would be ordered by local
  scheduling seq serially but by the barrier merge here, and which pairs
  cross shards depends on the partition — continuous jitter makes such
  ties measure-zero;
* ``min_delay()`` must be positive (otherwise there is no lookahead);
* all workers must share one interpreter hash seed — signature tokens
  and digests use ``hash()``.  ``fork`` inherits it; under ``spawn``
  the coordinator pins ``PYTHONHASHSEED`` for its workers.

The engine currently supports the Astro systems driven by open-loop
probes (the Fig. 3 peak-search cells this exists for).  BFT cells stay
serial: consensus replicas schedule timeout machinery at construction,
which would fire on non-owned stale state in every worker.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
from heapq import heappush as _heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SHARDS_ENV",
    "ShardedOpenLoop",
    "ShardingUnsupported",
    "resolve_shards",
    "shard_owner",
    "state_fingerprints",
]

#: Environment variable selecting the shard count for one simulation:
#: unset/"1" = the serial engine (byte-identical to no sharding at all),
#: an integer > 1 = that many worker processes, "auto"/"0" = one per
#: available CPU, capped at the WAN region count (see resolve_shards).
SHARDS_ENV = "REPRO_SIM_SHARDS"

#: Pickle protocol for cross-shard message buffers.  One dumps() per
#: (window, destination shard): payload objects shared by many arrivals
#: (a broadcast batch) are serialized once per buffer via the pickle memo.
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class ShardingUnsupported(RuntimeError):
    """The scenario cannot run sharded (no lookahead, unsupported system)."""


def resolve_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument, else ``REPRO_SIM_SHARDS``, else 1.

    ``auto`` is capped at the WAN topology's region count as well as the
    CPU count: beyond one shard per region the partition degrades to
    round-robin with the narrow intra-region lookahead, which measures
    *slower* than the serial engine.  Explicit counts are honored
    verbatim (an operator may know better).
    """
    if shards is None:
        # Lazy import: bench.parallel lazily imports this module in the
        # other direction, so neither import runs at module load.
        from ..bench.parallel import parse_count_env, usable_cpus
        from .latency import EUROPE_REGIONS

        return parse_count_env(
            SHARDS_ENV, lambda: min(usable_cpus(), len(EUROPE_REGIONS))
        )
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return shards


def shard_owner(node_id: int, shards: int) -> int:
    """The shard owning ``node_id`` (round-robin: balanced for the
    round-robin client→representative assignment of the builders)."""
    return node_id % shards


def state_fingerprints(system: Any) -> Dict[int, str]:
    """SHA-256 fingerprint of every replica's protocol state.

    The byte-identity witness used by the shard-determinism tests: the
    serial engine computes it in-process, the sharded engine merges each
    worker's fingerprints of the replicas it owns.
    """
    return {
        replica.node_id: hashlib.sha256(
            repr(replica.state.snapshot()).encode()
        ).hexdigest()
        for replica in system.replicas
    }


def _settled_counts(system: Any, owned: Optional[frozenset] = None) -> Dict[int, int]:
    return {
        replica.node_id: replica.settled_count
        for replica in system.replicas
        if owned is None or replica.node_id in owned
    }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _SampleRecorder:
    """Latency recorder that keeps ``(completed_at, latency)`` pairs.

    The cross-shard merge needs completion times to reconstruct the
    serial engine's sample order; a worker only observes confirmations
    of the replicas it owns.  Window attributes are pinned by
    :func:`repro.bench.runner.setup_open_loop`.
    """

    def __init__(self) -> None:
        self.window_start = 0.0
        self.window_end = float("inf")
        self.samples: List[Tuple[float, float]] = []

    def record(self, submitted_at: float, completed_at: float) -> None:
        if self.window_start <= completed_at <= self.window_end:
            self.samples.append((completed_at, completed_at - submitted_at))


class _WorkerState:
    """Everything one shard worker holds between commands."""

    def __init__(self, spec: Dict[str, Any], index: int, count: int) -> None:
        self.spec = spec
        self.index = index
        self.count = count
        self.system: Any = None
        self.owned: frozenset = frozenset()
        self.owner_map: Dict[int, int] = {}
        self.outbox: List[tuple] = []
        self.lookahead = 0.0

    def build(self) -> None:
        from ..bench.systems import SYSTEM_BUILDERS

        spec = self.spec
        builder = SYSTEM_BUILDERS[spec["system"]]
        system = builder(
            spec["size"], seed=spec["seed"], **(spec.get("builder_kwargs") or {})
        )
        latency = system.network.latency
        lookahead = latency.min_delay()
        if lookahead <= 0.0:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} provides no "
                f"lookahead (min_delay() == {lookahead}); cannot shard"
            )
        if not latency.pair_decomposable:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} is not "
                "pair-decomposable: per-message draws would depend on the "
                "shard count (build it with pair_streams=True)"
            )
        if not latency.continuous_delays:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} produces exact "
                "arrival-time ties (no continuous jitter), whose order "
                "would depend on the shard partition; cannot shard"
            )
        try:
            node_ids = system.replica_node_ids
        except AttributeError:
            raise ShardingUnsupported(
                f"system {spec['system']!r} does not expose replica_node_ids; "
                "intra-simulation sharding supports the Astro systems"
            ) from None
        count = self.count
        # Topology-aware partition (pure function of the latency model,
        # so every worker computes the identical map) and the matching
        # cross-shard lookahead — for the WAN model this keeps whole
        # regions per shard and widens the window to the inter-region
        # delay floor.
        owner, lookahead = latency.shard_partition(node_ids, count)
        if lookahead <= 0.0:
            raise ShardingUnsupported(
                f"latency model {type(latency).__name__} provides no "
                f"cross-shard lookahead ({lookahead}); cannot shard"
            )
        self.owner_map = owner
        owned = frozenset(
            node_id for node_id in node_ids if owner[node_id] == self.index
        )
        self.outbox = []
        system.network.configure_sharding(owned, self.outbox)
        # Replicated drivers call system.submit for *every* generated
        # payment; only the owner of the spender's representative executes
        # it.  Shadow the bound method with the ownership filter.
        original_submit = system.submit
        rep_map = system.directory.rep_map

        def filtered_submit(spender, beneficiary, amount):
            if rep_map[spender] in owned:
                return original_submit(spender, beneficiary, amount)
            return None

        system.submit = filtered_submit
        self.system = system
        self.owned = owned
        self.lookahead = lookahead


def _next_event_time(sim: Any) -> float:
    heap = sim._heap
    return heap[0][0] if heap else float("inf")


def _insert_arrivals(system: Any, blobs: Sequence[bytes]) -> None:
    """Merge cross-shard arrivals into the local calendar.

    Canonical ``(arrival_time, src, src_seq)`` order: sequence numbers
    are unique per source, so the sort never reaches the payload, and
    two same-time arrivals at one destination execute in an order that
    is a pure function of message content — not of shard count.
    """
    if not blobs:
        return
    entries: List[tuple] = []
    for blob in blobs:
        entries.extend(pickle.loads(blob))
    entries.sort(key=lambda entry: entry[:3])
    sim = system.sim
    heap = sim._heap
    arrive = system.network._arrive
    for time, src, _src_seq, dst, payload, recv_cost in entries:
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(heap, (time, seq, arrive, (src, dst, payload, recv_cost)))


def _drain_outbox(state: _WorkerState) -> Dict[int, Tuple[bytes, float]]:
    """Group buffered cross-shard sends by destination shard.

    Returns ``{shard: (pickled entries, min arrival time)}`` — the
    coordinator needs the minimum to compute the next window without
    unpickling payloads.
    """
    outbox = state.outbox
    if not outbox:
        return {}
    owner = state.owner_map
    groups: Dict[int, List[tuple]] = {}
    for entry in outbox:
        groups.setdefault(owner[entry[3]], []).append(entry)
    outbox.clear()
    return {
        shard: (
            pickle.dumps(entries, _PICKLE_PROTOCOL),
            min(entry[0] for entry in entries),
        )
        for shard, entries in groups.items()
    }


def _worker_probe(conn, state: _WorkerState, params: Dict[str, Any]) -> None:
    from ..bench.runner import finish_open_loop, setup_open_loop

    if params["fresh"] or state.system is None:
        state.build()
    system = state.system
    sim = system.sim
    recorder = _SampleRecorder()
    driver, meter, recorder, window_start, window_end = setup_open_loop(
        system,
        rate=params["rate"],
        duration=params["duration"],
        warmup=params["warmup"],
        seed=params["seed"],
        recorder=recorder,
    )
    until = window_end + params["drain"]
    conn.send(
        (
            "probe_info",
            window_start,
            window_end,
            until,
            state.lookahead,
            _next_event_time(sim),
        )
    )
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "window":
            _insert_arrivals(system, message[2])
            sim.run(until=message[1])
            conn.send(("window_done", _drain_outbox(state), _next_event_time(sim)))
        elif kind == "finish":
            _insert_arrivals(system, message[2])
            sim.run(until=message[1])
            finish_open_loop(system, driver)
            # Cross-shard sends of post-horizon events are dropped, like
            # the serial engine's undelivered in-flight arrivals.
            state.outbox.clear()
            conn.send(
                (
                    "probe_result",
                    {
                        "bucket_width": meter.bucket_width,
                        "buckets": dict(meter._buckets),
                        "samples": recorder.samples,
                        "injected": driver.injected,
                        "confirmed": driver.confirmed,
                        "window_start": window_start,
                        "window_end": window_end,
                    },
                )
            )
            return
        else:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"unexpected mid-probe command {kind!r}")


def _worker_main(conn, spec: Dict[str, Any], index: int, count: int) -> None:
    state = _WorkerState(spec, index, count)
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "probe":
                _worker_probe(conn, state, message[1])
            elif kind == "build":
                state.build()
                conn.send(("built", state.lookahead))
            elif kind == "fingerprint":
                system = state.system
                if system is None:
                    conn.send(("fingerprints", {}, {}))
                else:
                    owned = state.owned
                    prints = {
                        node_id: digest
                        for node_id, digest in state_fingerprints(system).items()
                        if node_id in owned
                    }
                    conn.send(
                        ("fingerprints", prints, _settled_counts(system, owned))
                    )
            elif kind == "exit":
                return
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown command {kind!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    except ShardingUnsupported as exc:
        # Typed relay: the coordinator re-raises this as
        # ShardingUnsupported so callers can fall back to the serial
        # engine (repro.bench.jobs does).
        try:
            conn.send(("error", str(exc), "unsupported"))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    except Exception:
        import traceback

        try:
            conn.send(("error", traceback.format_exc(), "crash"))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class ShardedOpenLoop:
    """Coordinator for one sharded simulation driven by open-loop probes.

    Workers persist across probes (peak searches reuse warm systems);
    :meth:`probe` is a drop-in for the serial build-and-
    :func:`~repro.bench.runner.run_open_loop` cycle and returns a merged
    :class:`~repro.bench.runner.RunResult` that is byte-identical to the
    serial engine's on the same scenario.

    ``spec`` is the picklable scenario description:
    ``{"system": name, "size": N, "seed": int, "builder_kwargs": {...}}``
    against :data:`repro.bench.systems.SYSTEM_BUILDERS`.
    """

    def __init__(
        self,
        spec: Dict[str, Any],
        shards: int,
        drain: float = 0.5,
        start_method: Optional[str] = None,
    ) -> None:
        if shards < 2:
            raise ValueError(
                f"ShardedOpenLoop needs >= 2 shards (got {shards}); "
                "use the serial engine for 1"
            )
        if spec.get("system") not in ("astro1", "astro2"):
            raise ShardingUnsupported(
                f"intra-simulation sharding supports the Astro systems; "
                f"got {spec.get('system')!r}"
            )
        self.spec = dict(spec)
        self.shards = shards
        self.drain = drain
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        # Workers must agree on the interpreter hash seed: signature
        # tokens and digests are hash()-derived, and a message signed in
        # one worker is verified in another.  fork inherits the parent's
        # seed; spawn starts fresh interpreters, so pin the environment
        # (histories themselves are hash-seed-independent, so the pinned
        # value does not matter — only that it is shared).
        pin_applied = False
        previous_value: Optional[str] = None
        if context.get_start_method() != "fork":
            previous_value = os.environ.get("PYTHONHASHSEED")
            # Absent, "" and "random" all randomize per interpreter —
            # every one of them must be pinned for the workers.
            if previous_value is None or previous_value in ("", "random"):
                os.environ["PYTHONHASHSEED"] = "0"
                pin_applied = True
        try:
            for index in range(shards):
                ours, theirs = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(theirs, self.spec, index, shards),
                    daemon=True,
                )
                process.start()
                theirs.close()
                self._connections.append(ours)
                self._processes.append(process)
        finally:
            if pin_applied:
                if previous_value is None:
                    del os.environ["PYTHONHASHSEED"]
                else:
                    os.environ["PYTHONHASHSEED"] = previous_value

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _recv(self, connection) -> tuple:
        message = connection.recv()
        if message[0] == "error":
            self.close()
            if len(message) > 2 and message[2] == "unsupported":
                raise ShardingUnsupported(message[1])
            raise RuntimeError(f"shard worker failed:\n{message[1]}")
        return message

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def prepare(self) -> float:
        """(Re)build every worker's system now; returns the lookahead.

        Splits construction cost out of the next probe: after
        ``prepare()``, ``probe(fresh=False)`` measures exactly what the
        serial engine's build-then-run cycle measures after ``factory()``
        — the wall-clock comparison the perf tests make.
        """
        for connection in self._connections:
            connection.send(("build",))
        lookaheads = {self._recv(connection)[1] for connection in self._connections}
        if len(lookaheads) != 1:
            self.close()
            raise RuntimeError(f"shard lookaheads diverged: {lookaheads}")
        return lookaheads.pop()

    def probe(
        self,
        rate: float,
        duration: float,
        warmup: float,
        fresh: bool = True,
        seed: Optional[int] = None,
    ) -> Any:
        """Run one open-loop measurement across the shard fleet."""
        params = {
            "rate": rate,
            "duration": duration,
            "warmup": warmup,
            "drain": self.drain,
            "seed": self.spec["seed"] if seed is None else seed,
            "fresh": fresh,
        }
        connections = self._connections
        for connection in connections:
            connection.send(("probe", params))
        infos = [self._recv(connection) for connection in connections]
        window_start, window_end, until, lookahead = infos[0][1:5]
        for info in infos[1:]:
            if info[1:5] != (window_start, window_end, until, lookahead):
                self.close()
                raise RuntimeError(
                    f"shard clocks diverged at probe start: {infos!r}"
                )
        next_times = [info[5] for info in infos]
        shards = self.shards
        inbox: List[List[bytes]] = [[] for _ in range(shards)]
        inbox_min = [float("inf")] * shards
        while True:
            global_next = min(min(next_times), min(inbox_min))
            if global_next >= until:
                break
            end = min(until, global_next + lookahead)
            for index, connection in enumerate(connections):
                connection.send(("window", end, inbox[index]))
                inbox[index] = []
                inbox_min[index] = float("inf")
            for index, connection in enumerate(connections):
                _kind, per_shard, next_time = self._recv(connection)
                next_times[index] = next_time
                for shard, (blob, min_time) in per_shard.items():
                    inbox[shard].append(blob)
                    if min_time < inbox_min[shard]:
                        inbox_min[shard] = min_time
        for index, connection in enumerate(connections):
            connection.send(("finish", until, inbox[index]))
        parts = [self._recv(connection)[1] for connection in connections]
        return self._merge(parts, rate, duration)

    @staticmethod
    def _merge(parts: List[Dict[str, Any]], rate: float, duration: float):
        from ..bench.runner import RunResult
        from .metrics import ThroughputMeter, summarize_values

        first = parts[0]
        meter = ThroughputMeter(bucket_width=first["bucket_width"])
        buckets = meter._buckets
        for part in parts:
            for index, count in part["buckets"].items():
                buckets[index] = buckets.get(index, 0) + count
                meter.total += count
        achieved = meter.rate(first["window_start"], first["window_end"])
        # Stable sort on completion time alone: each replica's samples
        # live in exactly one worker, so same-time samples of one replica
        # (a settled batch confirms many payments at one instant) keep
        # their drain order under any shard count — reproducing the
        # serial engine's sample order.
        samples: List[Tuple[float, float]] = []
        for part in parts:
            samples.extend(part["samples"])
        samples.sort(key=lambda sample: sample[0])
        latency = summarize_values([value for _at, value in samples])
        injected = first["injected"]
        for part in parts[1:]:
            if part["injected"] != injected:
                raise RuntimeError(
                    "replicated drivers diverged: injected counts "
                    f"{[p['injected'] for p in parts]}"
                )
        return RunResult(
            offered=rate,
            achieved=achieved,
            latency=latency,
            injected=injected,
            confirmed=sum(part["confirmed"] for part in parts),
            duration=duration,
        )

    def fingerprint(self) -> Dict[str, Any]:
        """Merged per-replica state fingerprints and settled counts."""
        for connection in self._connections:
            connection.send(("fingerprint",))
        prints: Dict[int, str] = {}
        settled: Dict[int, int] = {}
        for connection in self._connections:
            _kind, part_prints, part_settled = self._recv(connection)
            prints.update(part_prints)
            settled.update(part_settled)
        return {
            "state": dict(sorted(prints.items())),
            "settled": dict(sorted(settled.items())),
        }

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("exit",))
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        for connection in self._connections:
            connection.close()
        self._connections = []
        self._processes = []

    def __enter__(self) -> "ShardedOpenLoop":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
