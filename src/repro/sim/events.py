"""Discrete-event simulation core.

The simulator drives every protocol in this repository.  It is a classic
calendar-queue engine: callbacks are scheduled at absolute simulated times
and executed in timestamp order.  Determinism is guaranteed by breaking
timestamp ties with a monotonically increasing sequence number, so two runs
with the same seed produce identical histories.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled with
    :meth:`cancel`.  A cancelled event stays in the calendar queue but is
    skipped when its time comes (lazy deletion keeps scheduling O(log n)).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} fn={self.fn!r}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one simulated second elapsed")
        sim.run(until=10.0)

    The clock (:attr:`now`) only advances when :meth:`run` executes events;
    callbacks observe a consistent global time.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries are (time, seq, event) tuples: tuple comparison is
        # C-level and never reaches the Event object, which keeps the hot
        # loop an order of magnitude cheaper than comparing rich objects.
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._running: bool = False
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events in order.

        Runs until the queue drains, the clock passes ``until``, or
        ``max_events`` callbacks have executed — whichever comes first.
        Returns the number of events executed by this call.  When ``until``
        is given the clock is advanced to exactly ``until`` on return, so
        subsequent measurements see a consistent window edge.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                time = heap[0][0]
                if until is not None and time > until:
                    break
                event = pop(heap)[2]
                if event.cancelled:
                    continue
                self.now = time
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and self.now < until:
            self.now = until
        return executed

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        executed = self.run(max_events=max_events)
        if self._heap and executed >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self.pending}>"
