"""Discrete-event simulation core.

The simulator drives every protocol in this repository.  It is a classic
calendar-queue engine: callbacks are scheduled at absolute simulated times
and executed in timestamp order.  Determinism is guaranteed by breaking
timestamp ties with a monotonically increasing sequence number, so two runs
with the same seed produce identical histories.

Two scheduling paths share one calendar queue:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle that supports :meth:`Event.cancel` (lazy deletion);
* :meth:`Simulator.call_after` / :meth:`Simulator.call_at` are the **fast
  path** for the dominant schedule-deliver-execute cycle: the callback is
  stored directly in the heap entry, so no per-event ``Event`` object is
  allocated.  Use them wherever cancellation is never needed (network
  deliveries, resource-server completions, driver ticks).

Both paths allocate sequence numbers from the same counter, so mixing them
preserves the global execution order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Effectively-unbounded event budget (used when ``max_events`` is None).
_NO_LIMIT = float("inf")


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and may be cancelled with
    :meth:`cancel`.  A cancelled event stays in the calendar queue but is
    skipped when its time comes (lazy deletion keeps scheduling O(log n));
    the owning simulator compacts the queue when cancelled entries come to
    dominate it (see :meth:`Simulator._compact`).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} fn={self.fn!r}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one simulated second elapsed")
        sim.run(until=10.0)

    The clock (:attr:`now`) only advances when :meth:`run` executes events;
    callbacks observe a consistent global time.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries are (time, seq, fn, args) tuples; cancellable events
        # are stored as (time, seq, None, event).  Tuple comparison is
        # C-level and — because seq is unique — never reaches the third
        # element, which keeps the hot loop an order of magnitude cheaper
        # than comparing rich objects.
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._running: bool = False
        self.events_executed: int = 0
        #: Cancelled-but-not-yet-popped entries currently in the heap.
        self._cancelled_pending: int = 0
        #: Total queue compactions performed (observability / tests).
        self.compactions: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Returns a cancellable :class:`Event` handle; prefer
        :meth:`call_at` when cancellation is never needed.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        _heappush(self._heap, (time, seq, None, event))
        return event

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast path: schedule a non-cancellable ``fn(*args)`` at ``time``.

        No :class:`Event` object is allocated; the callback lives directly
        in the calendar-queue entry.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time, seq, fn, args))

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast path: schedule a non-cancellable ``fn(*args)`` after ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time, seq, fn, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events in order.

        Runs until the queue drains, the clock passes ``until``, or
        ``max_events`` callbacks have executed — whichever comes first.
        Returns the number of events executed by this call.  When ``until``
        is given the clock is advanced to exactly ``until`` on return, so
        subsequent measurements see a consistent window edge.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = _heappop
        # Normalizing the stop conditions to sentinel values keeps the
        # per-event loop free of None checks; the comparisons below have
        # identical semantics (nothing exceeds +inf, nothing reaches
        # maxsize) to the optional parameters.
        horizon = float("inf") if until is None else until
        limit = _NO_LIMIT if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > horizon:
                    break
                pop(heap)
                fn = entry[2]
                if fn is None:
                    event = entry[3]
                    if event.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    # Detach before firing: a cancel() after the event has
                    # left the queue must not be counted as a queued
                    # cancellation (the entry is gone already).
                    event.sim = None
                    self.now = time
                    event.fn(*event.args)
                else:
                    self.now = time
                    fn(*entry[3])
                executed += 1
                if executed >= limit:
                    break
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and self.now < until:
            self.now = until
        return executed

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        executed = self.run(max_events=max_events)
        if self._heap and executed >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed

    # ------------------------------------------------------------------
    # Calendar hygiene
    # ------------------------------------------------------------------
    #: Compaction never triggers below this queue size: tiny queues are
    #: cheap to scan at pop time and rebuilding them buys nothing.
    _COMPACT_MIN_HEAP = 64

    def _note_cancel(self) -> None:
        """Account one lazy cancellation; compact when they dominate.

        Timeout-heavy runs (batch-delay timers cancelled on every full
        batch, BFT request timeouts) otherwise grow the calendar without
        bound: a cancelled entry is only reclaimed when its — possibly
        far-future — timestamp is reached.
        """
        self._cancelled_pending += 1
        heap = self._heap
        if (
            len(heap) >= self._COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: :meth:`run` holds a reference to the heap list
        across callbacks, and a callback may cancel enough events to
        trigger compaction mid-run.
        """
        heap = self._heap
        heap[:] = [
            entry for entry in heap
            if entry[2] is not None or not entry[3].cancelled
        ]
        heapq.heapify(heap)
        self._cancelled_pending = 0
        self.compactions += 1

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def pending_live(self) -> int:
        """Queued events that will actually fire."""
        return len(self._heap) - self._cancelled_pending

    @property
    def pending_cancelled(self) -> int:
        """Queued entries that are lazily cancelled (awaiting reclaim)."""
        return self._cancelled_pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self.now:.6f} pending={self.pending} "
            f"(live={self.pending_live}, cancelled={self.pending_cancelled})>"
        )
