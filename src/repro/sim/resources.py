"""Queueing-theoretic resource servers.

Peak throughput in quorum-based systems is a queueing phenomenon: each
replica's CPU and NIC serve messages one at a time, and saturation of the
bottleneck resource caps system throughput (paper §VI-C).  We model each
resource as a FIFO server with deterministic per-job service times.

The implementation is O(1) per job: because service is FIFO and
non-preemptive, it suffices to track the time the server frees up
(``busy_until``); a job submitted at time *t* completes at
``max(t, busy_until) + service_time``.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Callable, Optional

from .events import Simulator

__all__ = ["FifoServer", "CpuServer", "LinkServer"]


class FifoServer:
    """A single FIFO queueing server with deterministic service times.

    Used for both CPU service (message processing, crypto) and NIC
    serialization.  Tracks busy time for utilization reporting.
    """

    __slots__ = ("sim", "name", "_busy_until", "busy_time", "jobs_served", "rate")

    def __init__(self, sim: Simulator, name: str = "", rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError(f"server rate must be positive, got {rate}")
        self.sim = sim
        self.name = name
        #: Speed factor: a job with nominal service time s occupies the
        #: server for s / rate.  rate=2.0 models e.g. two cores pooled.
        self.rate = rate
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.jobs_served = 0

    def submit(
        self,
        service_time: float,
        fn: Optional[Callable[..., Any]] = None,
        *args: Any,
    ) -> float:
        """Enqueue a job; optionally run ``fn(*args)`` at completion.

        Returns the completion time.  ``service_time`` is the nominal cost;
        the effective occupancy is divided by the server's ``rate``.
        Completion callbacks are never cancelled, so they ride the
        simulator's fast (Event-free) scheduling path.
        """
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        sim = self.sim
        effective = service_time / self.rate
        start = self._busy_until
        now = sim.now
        if start < now:
            start = now
        done = start + effective
        self._busy_until = done
        self.busy_time += effective
        self.jobs_served += 1
        if fn is not None:
            # Inlined sim.call_at: ``done >= now`` holds by construction,
            # so the past-check is redundant on this per-job path.
            seq = sim._seq
            sim._seq = seq + 1
            _heappush(sim._heap, (done, seq, fn, args))
        return done

    def occupy(self, service_time: float) -> float:
        """Charge the server without scheduling a completion callback.

        Used to fold small costs (e.g. send-side syscall overhead) into the
        server occupancy without paying for an extra event.  This is the
        hottest FifoServer entry point, hence the hand-inlined body.
        """
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        effective = service_time / self.rate
        start = self._busy_until
        now = self.sim.now
        if start < now:
            start = now
        done = start + effective
        self._busy_until = done
        self.busy_time += effective
        self.jobs_served += 1
        return done

    @property
    def backlog(self) -> float:
        """Seconds of queued work from the perspective of a new arrival."""
        gap = self._busy_until - self.sim.now
        return gap if gap > 0 else 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def reset_stats(self) -> None:
        self.busy_time = 0.0
        self.jobs_served = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FifoServer {self.name!r} backlog={self.backlog:.6f}s>"


class CpuServer(FifoServer):
    """CPU of a node.  ``cores`` pools capacity (t2.medium has 2 vCores).

    Pooling cores into a single faster server is the standard fluid
    approximation; it preserves saturation points, which is what the
    reproduced figures measure.
    """

    def __init__(self, sim: Simulator, name: str = "cpu", cores: float = 2.0) -> None:
        super().__init__(sim, name=name, rate=cores)


class LinkServer(FifoServer):
    """Outgoing network link of a node.

    ``bandwidth`` is in bytes/second; serializing a message of ``size``
    bytes occupies the link for ``size / bandwidth`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "nic",
        bandwidth: float = 30 * 1024 * 1024,
    ) -> None:
        super().__init__(sim, name=name, rate=1.0)
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth

    def transmit(
        self,
        size_bytes: float,
        fn: Optional[Callable[..., Any]] = None,
        *args: Any,
    ) -> float:
        """Serialize ``size_bytes`` onto the wire; returns completion time."""
        return self.submit(size_bytes / self.bandwidth, fn, *args)
