"""Network latency models.

The paper deploys replicas across four Amazon EC2 regions in Europe
(Frankfurt, Ireland, London, Paris) with ~20 ms inter-region round-trip
time and sub-millisecond intra-region latency (§VI-B).  The models here
produce one-way propagation delays for the simulator's network layer.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "RegionLatency",
    "EUROPE_REGIONS",
    "europe_wan",
]

#: The four EU regions used throughout the paper's evaluation.
EUROPE_REGIONS: Tuple[str, ...] = ("frankfurt", "ireland", "london", "paris")

#: One-way inter-region latency in seconds (≈ half the measured RTT).
#: Values approximate public EC2 inter-region measurements circa 2019.
_EU_ONE_WAY: Dict[Tuple[str, str], float] = {
    ("frankfurt", "ireland"): 0.0125,
    ("frankfurt", "london"): 0.0075,
    ("frankfurt", "paris"): 0.0050,
    ("ireland", "london"): 0.0055,
    ("ireland", "paris"): 0.0090,
    ("london", "paris"): 0.0045,
}

_INTRA_REGION_ONE_WAY = 0.00035  # ~0.7 ms RTT inside one region


class LatencyModel:
    """Base class: maps (src, dst) node ids to a one-way delay sample."""

    def sample(self, src: int, dst: int) -> float:
        raise NotImplementedError

    def expected(self, src: int, dst: int) -> float:
        """Mean one-way delay (used by analytic helpers and tests)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every pair of nodes observes the same fixed one-way delay."""

    def __init__(self, delay: float = 0.01) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.delay = delay

    def sample(self, src: int, dst: int) -> float:
        return self.delay

    def expected(self, src: int, dst: int) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """One-way delay drawn uniformly from [low, high], per message."""

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def sample(self, src: int, dst: int) -> float:
        return self._rng.uniform(self.low, self.high)

    def expected(self, src: int, dst: int) -> float:
        return (self.low + self.high) / 2.0


class RegionLatency(LatencyModel):
    """Region-based WAN latency with multiplicative jitter.

    Nodes are assigned to named regions; pairs in the same region see the
    intra-region delay, others the configured inter-region delay.  Each
    message receives independent jitter of ±``jitter`` (fractional).
    """

    def __init__(
        self,
        assignment: Sequence[str],
        pair_delays: Dict[Tuple[str, str], float],
        intra_delay: float = _INTRA_REGION_ONE_WAY,
        jitter: float = 0.10,
        seed: int = 0,
    ) -> None:
        self.assignment: List[str] = list(assignment)
        self.intra_delay = intra_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: Bound method cached for the per-message sampling hot path.
        self._uniform = self._rng.uniform
        self._delays: Dict[Tuple[str, str], float] = {}
        for (a, b), delay in pair_delays.items():
            self._delays[(a, b)] = delay
            self._delays[(b, a)] = delay

    def region_of(self, node: int) -> str:
        return self.assignment[node % len(self.assignment)]

    def base_delay(self, src: int, dst: int) -> float:
        region_a = self.region_of(src)
        region_b = self.region_of(dst)
        if region_a == region_b:
            return self.intra_delay
        return self._delays[(region_a, region_b)]

    def sample(self, src: int, dst: int) -> float:
        # Inlined region_of/base_delay: one sample per simulated message.
        assignment = self.assignment
        count = len(assignment)
        region_a = assignment[src % count]
        region_b = assignment[dst % count]
        if region_a == region_b:
            base = self.intra_delay
        else:
            base = self._delays[(region_a, region_b)]
        jitter = self.jitter
        if jitter <= 0:
            return base
        return base * (1.0 + self._uniform(-jitter, jitter))

    def expected(self, src: int, dst: int) -> float:
        return self.base_delay(src, dst)


def europe_wan(num_nodes: int, seed: int = 0, jitter: float = 0.10) -> RegionLatency:
    """Latency model matching the paper's deployment (§VI-B).

    Nodes are spread uniformly (round-robin over a seeded shuffle) across
    the four EU regions, as the paper deploys replicas "randomly across the
    corresponding regions".
    """
    rng = random.Random(seed)
    assignment = [EUROPE_REGIONS[i % len(EUROPE_REGIONS)] for i in range(num_nodes)]
    rng.shuffle(assignment)
    return RegionLatency(assignment, _EU_ONE_WAY, jitter=jitter, seed=seed + 1)
