"""Network latency models.

The paper deploys replicas across four Amazon EC2 regions in Europe
(Frankfurt, Ireland, London, Paris) with ~20 ms inter-region round-trip
time and sub-millisecond intra-region latency (§VI-B).  The models here
produce one-way propagation delays for the simulator's network layer.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "RegionLatency",
    "EUROPE_REGIONS",
    "europe_wan",
]

#: The four EU regions used throughout the paper's evaluation.
EUROPE_REGIONS: Tuple[str, ...] = ("frankfurt", "ireland", "london", "paris")

#: One-way inter-region latency in seconds (≈ half the measured RTT).
#: Values approximate public EC2 inter-region measurements circa 2019.
_EU_ONE_WAY: Dict[Tuple[str, str], float] = {
    ("frankfurt", "ireland"): 0.0125,
    ("frankfurt", "london"): 0.0075,
    ("frankfurt", "paris"): 0.0050,
    ("ireland", "london"): 0.0055,
    ("ireland", "paris"): 0.0090,
    ("london", "paris"): 0.0045,
}

_INTRA_REGION_ONE_WAY = 0.00035  # ~0.7 ms RTT inside one region


class LatencyModel:
    """Base class: maps (src, dst) node ids to a one-way delay sample."""

    def sample(self, src: int, dst: int) -> float:
        raise NotImplementedError

    def expected(self, src: int, dst: int) -> float:
        """Mean one-way delay (used by analytic helpers and tests)."""
        raise NotImplementedError

    def min_delay(self) -> float:
        """Smallest one-way delay any :meth:`sample` call can return.

        This is the *lookahead contract* of conservative parallel
        simulation (:mod:`repro.sim.shard`): no message sent at time ``t``
        may arrive before ``t + min_delay()``, so shards can safely
        execute ``min_delay()`` of simulated time between barriers.
        Returning 0.0 (the conservative default) declares "no lookahead
        available" and disables intra-simulation sharding for the model.
        """
        return 0.0

    def pair_min_delay(self, src: int, dst: int) -> float:
        """Smallest delay :meth:`sample` can return *for this pair*.

        The per-channel lookahead contract of asynchronous conservative
        sharding (:mod:`repro.sim.shard`): no message src→dst sent at
        time ``t`` may arrive before ``t + pair_min_delay(src, dst)``.
        Topology-aware models override this with the pair's own floor
        (e.g. the inter-region delay), which is what lets distant shards
        run far ahead of the global :meth:`min_delay`.  The default is
        the global floor — always safe.
        """
        return self.min_delay()

    def channel_lookaheads(
        self, node_ids: Sequence[int], owner: Dict[int, int]
    ) -> Dict[Tuple[int, int], float]:
        """Per-channel lookahead for a shard partition.

        Returns ``{(src_shard, dst_shard): floor}`` for every ordered
        pair of distinct shards, where ``floor`` is the minimum
        :meth:`pair_min_delay` over node pairs crossing that channel.
        Pure function of ``(node_ids, owner)`` so every shard worker
        computes the identical map.  A channel with no crossing node
        pair (an empty shard on either end) gets ``inf`` — nothing can
        ever be sent on it, so it never constrains the receiver.
        """
        shards = sorted(set(owner.values()))
        floors: Dict[Tuple[int, int], float] = {
            (p, q): float("inf") for p in shards for q in shards if p != q
        }
        by_shard: Dict[int, List[int]] = {shard: [] for shard in shards}
        for node in node_ids:
            by_shard[owner[node]].append(node)
        pair_min = self.pair_min_delay
        for p in shards:
            for q in shards:
                if p == q:
                    continue
                floor = floors[(p, q)]
                for src in by_shard[p]:
                    for dst in by_shard[q]:
                        delay = pair_min(src, dst)
                        if delay < floor:
                            floor = delay
                floors[(p, q)] = floor
        return floors

    @property
    def pair_decomposable(self) -> bool:
        """True when sampling for one (src, dst) pair never consumes
        entropy shared with another pair.

        Sharded execution samples each pair's delays in the sending
        shard; with a shared RNG the draw a pair receives would depend on
        the global interleaving of all sends — i.e. on the shard count.
        Only pair-decomposable models produce shard-count-independent
        histories.
        """
        return False

    @property
    def continuous_delays(self) -> bool:
        """True when per-message delays are drawn from a continuous
        distribution, making exact arrival-time ties between distinct
        sends measure-zero.

        Sharded execution requires this: two arrivals at one node at the
        *identical* float timestamp would be ordered by local scheduling
        seq in the serial engine but by the canonical barrier merge in a
        sharded run — and which pairs cross shards depends on the
        partition, so tie order would be shard-count-dependent.  With
        continuous jitter such ties cannot occur (up to float
        coincidence), which is what makes the byte-identity guarantee
        hold.
        """
        return False

    def shard_partition(
        self, node_ids: Sequence[int], shards: int
    ) -> Tuple[Dict[int, int], float]:
        """Assign nodes to shards; return ``(owner map, cross-shard lookahead)``.

        The partition choice is pure performance — histories are
        partition-independent — but the *lookahead* is the minimum delay
        between nodes in **different** shards, which bounds how much
        simulated time shards may run between barriers.  The default is
        topology-blind round-robin with the global :meth:`min_delay`;
        topology-aware models override this to co-locate close nodes so
        every cross-shard pair is a slow pair (e.g.
        :class:`RegionLatency` keeps each region's replicas in one
        shard, widening the window from the intra-region floor to the
        inter-region floor — an order of magnitude fewer barriers).
        """
        return (
            {node_id: node_id % shards for node_id in node_ids},
            self.min_delay(),
        )


class ConstantLatency(LatencyModel):
    """Every pair of nodes observes the same fixed one-way delay."""

    def __init__(self, delay: float = 0.01) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.delay = delay

    def sample(self, src: int, dst: int) -> float:
        return self.delay

    def expected(self, src: int, dst: int) -> float:
        return self.delay

    def min_delay(self) -> float:
        return self.delay

    @property
    def pair_decomposable(self) -> bool:
        return True  # stateless: no entropy consumed at all


class _PairStreams:
    """Per-(src, dst) deterministic RNG streams.

    Each pair draws from its own :class:`random.Random` seeded by a pure
    function of ``(seed, src, dst)``; the n-th message src→dst receives
    the n-th draw of that stream regardless of how sends from *other*
    pairs interleave.  This is what makes a jittered model
    pair-decomposable (and therefore usable under intra-simulation
    sharding): a pair's draw index equals the number of prior src→dst
    messages, which is itself a deterministic function of the protocol
    history.  String seeds go through ``random.Random``'s SHA-512 path,
    so streams are uncorrelated and PYTHONHASHSEED-independent.
    """

    __slots__ = ("_seed", "_streams")

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: Dict[Tuple[int, int], random.Random] = {}

    def uniform(self, src: int, dst: int, a: float, b: float) -> float:
        key = (src, dst)
        rng = self._streams.get(key)
        if rng is None:
            rng = self._streams[key] = random.Random(
                f"pair-latency:{self._seed}:{src}:{dst}"
            )
        return rng.uniform(a, b)


class UniformLatency(LatencyModel):
    """One-way delay drawn uniformly from [low, high], per message.

    ``pair_streams=True`` switches from one shared RNG to a
    deterministic per-(src, dst) stream (see :class:`_PairStreams`),
    making histories independent of global send interleaving — required
    for sharded execution, and harmless otherwise (same distribution,
    different draws).
    """

    def __init__(
        self, low: float, high: float, seed: int = 0, pair_streams: bool = False
    ) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = random.Random(seed)
        self._pairs = _PairStreams(seed) if pair_streams else None

    def sample(self, src: int, dst: int) -> float:
        pairs = self._pairs
        if pairs is not None:
            return pairs.uniform(src, dst, self.low, self.high)
        return self._rng.uniform(self.low, self.high)

    def expected(self, src: int, dst: int) -> float:
        return (self.low + self.high) / 2.0

    def min_delay(self) -> float:
        return self.low

    @property
    def pair_decomposable(self) -> bool:
        return self._pairs is not None

    @property
    def continuous_delays(self) -> bool:
        return self.high > self.low


class RegionLatency(LatencyModel):
    """Region-based WAN latency with multiplicative jitter.

    Nodes are assigned to named regions; pairs in the same region see the
    intra-region delay, others the configured inter-region delay.  Each
    message receives independent jitter of ±``jitter`` (fractional).
    """

    def __init__(
        self,
        assignment: Sequence[str],
        pair_delays: Dict[Tuple[str, str], float],
        intra_delay: float = _INTRA_REGION_ONE_WAY,
        jitter: float = 0.10,
        seed: int = 0,
        pair_streams: bool = False,
    ) -> None:
        self.assignment: List[str] = list(assignment)
        self.intra_delay = intra_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: Bound method cached for the per-message sampling hot path.
        self._uniform = self._rng.uniform
        #: Per-(src, dst) jitter streams (pair-decomposable mode); None
        #: keeps the original shared-RNG sampling.
        self._pairs = _PairStreams(seed) if pair_streams else None
        self._delays: Dict[Tuple[str, str], float] = {}
        for (a, b), delay in pair_delays.items():
            self._delays[(a, b)] = delay
            self._delays[(b, a)] = delay

    def region_of(self, node: int) -> str:
        return self.assignment[node % len(self.assignment)]

    def base_delay(self, src: int, dst: int) -> float:
        region_a = self.region_of(src)
        region_b = self.region_of(dst)
        if region_a == region_b:
            return self.intra_delay
        return self._delays[(region_a, region_b)]

    def sample(self, src: int, dst: int) -> float:
        # Inlined region_of/base_delay: one sample per simulated message.
        assignment = self.assignment
        count = len(assignment)
        region_a = assignment[src % count]
        region_b = assignment[dst % count]
        if region_a == region_b:
            base = self.intra_delay
        else:
            base = self._delays[(region_a, region_b)]
        jitter = self.jitter
        if jitter <= 0:
            return base
        pairs = self._pairs
        if pairs is not None:
            return base * (1.0 + pairs.uniform(src, dst, -jitter, jitter))
        return base * (1.0 + self._uniform(-jitter, jitter))

    def expected(self, src: int, dst: int) -> float:
        return self.base_delay(src, dst)

    def min_delay(self) -> float:
        # ``default``: a single-region mesh has no inter-region pairs.
        smallest = min(
            self.intra_delay, min(self._delays.values(), default=self.intra_delay)
        )
        jitter = self.jitter
        if jitter > 0:
            smallest *= 1.0 - jitter
        return smallest

    def pair_min_delay(self, src: int, dst: int) -> float:
        # Same arithmetic shape as sample(): base * (1 + u) with
        # u >= -jitter, and float rounding is monotone, so
        # base * (1 - jitter) is a true lower bound on any draw.
        base = self.base_delay(src, dst)
        jitter = self.jitter
        if jitter > 0:
            base *= 1.0 - jitter
        return base

    @property
    def pair_decomposable(self) -> bool:
        return self.jitter <= 0 or self._pairs is not None

    @property
    def continuous_delays(self) -> bool:
        return self.jitter > 0

    def shard_partition(
        self, node_ids: Sequence[int], shards: int
    ) -> Tuple[Dict[int, int], float]:
        """Region-aware partition: each region's nodes stay together.

        With whole regions per shard, every cross-shard message is
        inter-region, so the conservative window widens from the
        intra-region floor (~0.35 ms) to the slowest-cut inter-region
        floor (≥ 4 ms on the paper's EU mesh) — over an order of
        magnitude fewer barriers per simulated second.  Among the
        assignments of regions to shards the most node-balanced one wins
        (parallel speedup is bounded by the largest shard), with the
        cross-shard delay floor as tie-break; the search is brute force
        over ``shards^regions ≤ 4^4`` candidates, deterministic by
        enumeration order.

        Beyond one shard per populated region the partition goes
        *hierarchical*: regions are split into sub-shards proportionally
        to population (see :meth:`_split_regions`).  Sibling sub-shards
        of one region face each other over the intra-region floor, so
        the scalar lookahead returned collapses to it — useless for a
        single global window, but the asynchronous engine
        (:mod:`repro.sim.shard`) paces every channel by
        :meth:`channel_lookaheads`, where only the sibling channels are
        narrow and every inter-region channel keeps its wide floor.
        """
        import itertools

        node_ids = list(node_ids)
        count = len(self.assignment)
        regions = sorted({self.assignment[node % count] for node in node_ids})
        if shards > len(regions):
            return self._split_regions(node_ids, shards, regions)
        population: Dict[str, int] = {region: 0 for region in regions}
        for node in node_ids:
            population[self.assignment[node % count]] += 1

        def cross_floor(combo: Tuple[int, ...]) -> float:
            floor = float("inf")
            for i, region_a in enumerate(regions):
                for j, region_b in enumerate(regions):
                    if i < j and combo[i] != combo[j]:
                        floor = min(floor, self._delays[(region_a, region_b)])
            return floor

        best = None
        best_score = None
        for combo in itertools.product(range(shards), repeat=len(regions)):
            if len(set(combo)) != shards:
                continue  # some shard would own no region
            counts = [0] * shards
            for region, shard in zip(regions, combo):
                counts[shard] += population[region]
            if 0 in counts:
                continue
            score = (-(max(counts) - min(counts)), cross_floor(combo))
            if best_score is None or score > best_score:
                best, best_score = combo, score
        if best is None:
            return LatencyModel.shard_partition(self, node_ids, shards)
        shard_of_region = dict(zip(regions, best))
        owner = {
            node: shard_of_region[self.assignment[node % count]]
            for node in node_ids
        }
        lookahead = cross_floor(best)
        if self.jitter > 0:
            lookahead *= 1.0 - self.jitter
        return owner, lookahead

    def _split_regions(
        self, node_ids: List[int], shards: int, regions: List[str]
    ) -> Tuple[Dict[int, int], float]:
        """Hierarchical partition for ``shards > len(regions)``.

        Every region gets at least one sub-shard; the remaining shards
        go one at a time to the region with the highest population per
        sub-shard (deterministic tie-break on region name).  Shard
        indices are dense: regions in sorted order own consecutive index
        blocks, and a region's nodes round-robin over its block in
        ``node_ids`` order.  Sub-shards may end up empty when there are
        more shards than nodes — harmless under per-channel pacing (an
        empty shard never sends, so its outgoing channels are ``inf``).
        """
        count = len(self.assignment)
        population: Dict[str, int] = {region: 0 for region in regions}
        for node in node_ids:
            population[self.assignment[node % count]] += 1
        splits: Dict[str, int] = {region: 1 for region in regions}
        for _ in range(shards - len(regions)):
            region = max(
                regions,
                key=lambda name: (population[name] / splits[name], name),
            )
            splits[region] += 1
        base_index: Dict[str, int] = {}
        next_index = 0
        for region in regions:
            base_index[region] = next_index
            next_index += splits[region]
        owner: Dict[int, int] = {}
        cursor: Dict[str, int] = {region: 0 for region in regions}
        for node in node_ids:
            region = self.assignment[node % count]
            owner[node] = base_index[region] + cursor[region] % splits[region]
            cursor[region] += 1
        # Some region is split, so the tightest cross-shard pair is
        # intra-region (the scalar floor; per-channel floors stay wide).
        lookahead = self.intra_delay
        if self.jitter > 0:
            lookahead *= 1.0 - self.jitter
        return owner, lookahead


def europe_wan(
    num_nodes: int, seed: int = 0, jitter: float = 0.10,
    pair_streams: bool = False,
) -> RegionLatency:
    """Latency model matching the paper's deployment (§VI-B).

    Nodes are spread uniformly (round-robin over a seeded shuffle) across
    the four EU regions, as the paper deploys replicas "randomly across the
    corresponding regions".  ``pair_streams=True`` draws each pair's
    jitter from an independent deterministic stream (required for
    intra-simulation sharding; the benchmark builders enable it).
    """
    rng = random.Random(seed)
    assignment = [EUROPE_REGIONS[i % len(EUROPE_REGIONS)] for i in range(num_nodes)]
    rng.shuffle(assignment)
    return RegionLatency(
        assignment, _EU_ONE_WAY, jitter=jitter, seed=seed + 1,
        pair_streams=pair_streams,
    )
