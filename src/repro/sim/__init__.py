"""Discrete-event simulation substrate.

Provides the deterministic asynchronous network the Astro protocols and the
consensus baseline run on: an event loop, per-node CPU/NIC resource
servers, WAN latency models matching the paper's EC2 deployment, fault
injection (crash-stop / ``tc netem``-style delays / partitions), and
measurement utilities.
"""

from .events import Event, SimulationError, Simulator
from .faults import FaultInjector
from .latency import (
    EUROPE_REGIONS,
    ConstantLatency,
    LatencyModel,
    RegionLatency,
    UniformLatency,
    europe_wan,
)
from .metrics import Counter, LatencyRecorder, LatencySummary, ThroughputMeter
from .network import Network, NetworkStats
from .node import Node
from .resources import CpuServer, FifoServer, LinkServer
from .rng import SeedSequence, derive_rng

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "FaultInjector",
    "ConstantLatency",
    "LatencyModel",
    "RegionLatency",
    "UniformLatency",
    "EUROPE_REGIONS",
    "europe_wan",
    "Counter",
    "LatencyRecorder",
    "LatencySummary",
    "ThroughputMeter",
    "Network",
    "NetworkStats",
    "Node",
    "CpuServer",
    "FifoServer",
    "LinkServer",
    "SeedSequence",
    "derive_rng",
]
