"""Actor base class for simulated processes (replicas, clients).

A :class:`Node` owns a CPU server and an outgoing link server, registers
with a :class:`~repro.sim.network.Network`, and dispatches incoming
payloads to handlers registered per message class.  Protocol code never
touches the event queue directly; it sends messages and sets timers.

``Node`` is the simulator backend of the
:class:`repro.transport.interface.Transport` contract: the same replica
objects that run here also run over real asyncio TCP sockets
(:class:`repro.transport.tcp.TcpTransport`).  The ``clock`` attribute is
the simulator itself, which satisfies
:class:`repro.transport.interface.Clock` structurally.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Type

from .events import Event, Simulator
from .network import Network
from .resources import CpuServer, LinkServer

__all__ = ["Node"]

#: Default NIC bandwidth, matching the ~30 MiB/s the paper measures
#: between EU regions (§VI-B).
DEFAULT_BANDWIDTH = 30 * 1024 * 1024

#: Default CPU core count, matching t2.medium's 2 vCores (§VI-B).
DEFAULT_CORES = 2.0


class Node:
    """A simulated process with CPU/NIC resources and message dispatch."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        network: Network,
        cores: float = DEFAULT_CORES,
        bandwidth: float = DEFAULT_BANDWIDTH,
    ) -> None:
        self.sim = sim
        #: Transport-contract clock: the simulator satisfies
        #: :class:`repro.transport.interface.Clock` directly.
        self.clock = sim
        self.node_id = node_id
        self.network = network
        self.cpu = CpuServer(sim, name=f"cpu[{node_id}]", cores=cores)
        self.link = LinkServer(sim, name=f"nic[{node_id}]", bandwidth=bandwidth)
        #: Modelled local CPU (Transport contract ``charge``); bound once
        #: since no tap ever intercepts it, unlike ``send``/``broadcast``.
        self.charge = self.cpu.occupy
        self._handlers: Dict[Type[Any], Callable[[int, Any], None]] = {}
        # The crashed-node set behind ``crashed_view`` is mutated in
        # place, never replaced, so caching the reference makes ``alive``
        # a single set containment test (consulted per payment on hot
        # paths).
        self._crashed_ref = network.crashed_view()
        network.register(self)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def on(self, message_type: Type[Any], handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src, msg)`` for messages of ``message_type``."""
        self._handlers[message_type] = handler

    def on_message(self, src: int, payload: Any) -> None:
        handler = self._handlers.get(type(payload))
        if handler is None:
            self.handle_unknown(src, payload)
        else:
            handler(src, payload)

    def handle_unknown(self, src: int, payload: Any) -> None:
        """Hook for unregistered message types; default is to ignore them.

        Ignoring (not raising) is deliberate: a Byzantine peer may send
        garbage, and a correct replica must not crash on it.
        """

    def send(
        self,
        dst: int,
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        """Send one message; ``send_cost`` CPU is folded into our server."""
        if send_cost:
            self.cpu.occupy(send_cost)
        self.network.send(self.node_id, dst, payload, size=size, recv_cost=recv_cost)

    def send_all(
        self,
        targets: Iterable[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
        include_self: bool = True,
    ) -> None:
        """Send ``payload`` to every node in ``targets``."""
        for dst in targets:
            if not include_self and dst == self.node_id:
                continue
            self.send(dst, payload, size=size, recv_cost=recv_cost, send_cost=send_cost)

    def broadcast(
        self,
        targets: Sequence[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        """Fan ``payload`` out to ``targets`` (which must exclude us).

        Equivalent to calling :meth:`send` per target, with the per-copy
        overhead hoisted into :meth:`Network.broadcast`.  Send-side CPU is
        still charged one occupancy per copy so completion times stay
        identical to the per-send path.
        """
        if send_cost:
            occupy = self.cpu.occupy
            for _ in targets:
                occupy(send_cost)
        self.network.broadcast(
            self.node_id, targets, payload, size=size, recv_cost=recv_cost
        )

    # ------------------------------------------------------------------
    # Egress taps (Byzantine behaviour injection, repro.adversary)
    # ------------------------------------------------------------------
    def install_egress_tap(self, tap: Any) -> None:
        """Route this node's outgoing traffic through ``tap``.

        ``tap.bind(raw_send, raw_broadcast)`` receives the untapped bound
        methods, then ``tap.send`` / ``tap.broadcast`` shadow this
        instance's :meth:`send` and :meth:`broadcast` (``send_all`` is
        covered too — it calls ``self.send``).  Installation is
        per-instance attribute shadowing, so nodes without a tap pay
        nothing on the hot path, and an installed tap that merely
        forwards reproduces the untapped history byte-for-byte.
        """
        tap.bind(Node.send.__get__(self), Node.broadcast.__get__(self))
        self.send = tap.send            # type: ignore[method-assign]
        self.broadcast = tap.broadcast  # type: ignore[method-assign]

    def remove_egress_tap(self) -> None:
        """Undo :meth:`install_egress_tap` (idempotent)."""
        self.__dict__.pop("send", None)
        self.__dict__.pop("broadcast", None)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a local callback; suppressed if we crash in between."""
        return self.sim.schedule(delay, self._fire_timer, fn, args)

    def _fire_timer(self, fn: Callable[..., Any], args: tuple) -> None:
        if self.alive:
            fn(*args)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.node_id not in self._crashed_ref

    def owns(self, node_id: int) -> bool:
        """Whether this process executes ``node_id``'s events.

        Delegates to :meth:`repro.sim.network.Network.executes`: true in
        an unsharded simulation, restricted to the worker's owned subset
        under intra-simulation sharding.
        """
        return self.network.executes(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id}>"
