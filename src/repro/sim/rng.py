"""Deterministic random-number utilities.

All stochastic behaviour in the simulator (latency jitter, workload
generation, replica placement) flows through seeded :class:`random.Random`
instances derived from a single root seed, so an entire experiment is
reproducible from one integer.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = ["SeedSequence", "derive_rng"]


def derive_rng(seed: int, *names: object) -> random.Random:
    """Return a ``random.Random`` deterministically derived from ``seed``.

    ``names`` qualify the stream (e.g. ``derive_rng(7, "latency", 3)``) so
    independent subsystems draw from independent streams even when they
    share the root seed.
    """
    key = (seed,) + tuple(str(n) for n in names)
    return random.Random(hash(key) & 0xFFFFFFFFFFFF)


class SeedSequence:
    """Hands out child seeds for subsystems, deterministically.

    >>> seq = SeedSequence(42)
    >>> a = seq.next()
    >>> b = seq.next()
    >>> a != b
    True
    """

    def __init__(self, root: int) -> None:
        self.root = root
        self._rng = random.Random(root)

    def next(self) -> int:
        return self._rng.getrandbits(48)

    def spawn(self, count: int) -> Iterator[int]:
        for _ in range(count):
            yield self.next()
