"""Deterministic random-number utilities.

All stochastic behaviour in the simulator (latency jitter, workload
generation, replica placement) flows through seeded :class:`random.Random`
instances derived from a single root seed, so an entire experiment is
reproducible from one integer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["SeedSequence", "derive_rng", "stable_seed", "stable_rng"]


def derive_rng(seed: int, *names: object) -> random.Random:
    """Return a ``random.Random`` deterministically derived from ``seed``.

    ``names`` qualify the stream (e.g. ``derive_rng(7, "latency", 3)``) so
    independent subsystems draw from independent streams even when they
    share the root seed.

    .. warning:: the derivation uses ``hash()``, so with string names the
       stream depends on ``PYTHONHASHSEED``.  Streams whose draws feed
       *protocol behaviour* (anything compared across fresh interpreters)
       must use :func:`stable_rng` instead.
    """
    key = (seed,) + tuple(str(n) for n in names)
    return random.Random(hash(key) & 0xFFFFFFFFFFFF)


def stable_seed(seed: int, *names: object) -> int:
    """Hash-seed-independent child seed from ``(seed, names)``.

    A pure SHA-256 of the stable identity — never ``hash()`` — so the
    value is identical across fresh interpreters with different
    ``PYTHONHASHSEED`` values.  Used wherever derived entropy feeds
    behaviour that golden/byte-identity tests compare (e.g. the Byzantine
    adversary streams in :mod:`repro.adversary`).
    """
    material = repr((int(seed),) + tuple(str(n) for n in names)).encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def stable_rng(seed: int, *names: object) -> random.Random:
    """A ``random.Random`` seeded by :func:`stable_seed` (hashseed-free)."""
    return random.Random(stable_seed(seed, *names))


class SeedSequence:
    """Hands out child seeds for subsystems, deterministically.

    >>> seq = SeedSequence(42)
    >>> a = seq.next()
    >>> b = seq.next()
    >>> a != b
    True
    """

    def __init__(self, root: int) -> None:
        self.root = root
        self._rng = random.Random(root)

    def next(self) -> int:
        return self._rng.getrandbits(48)

    def spawn(self, count: int) -> Iterator[int]:
        for _ in range(count):
            yield self.next()
