"""Simulated message-passing network.

Implements the asynchronous, authenticated point-to-point network assumed
by the paper (§III): messages between correct nodes are eventually
delivered, with no bound on delivery time enforced by the protocols.  The
simulator adds a concrete performance model on top:

* sender NIC serialization (``size / bandwidth``) through a FIFO link,
* one-way propagation latency from a :class:`~repro.sim.latency.LatencyModel`,
* fault-injected extra egress delay (the paper's ``tc netem delay``),
* receiver CPU service time before the protocol handler runs.

Crashed nodes neither send nor receive; partitions drop messages in both
directions.  Dropping (rather than erroring) models an asynchronous network
in which a message to a dead host is simply never delivered.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from .events import Simulator
from .latency import ConstantLatency, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["Network", "NetworkStats"]


class NetworkStats:
    """Aggregate traffic counters, optionally broken down by message kind."""

    def __init__(self, track_kinds: bool = False) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.track_kinds = track_kinds
        self.by_kind: Dict[str, int] = {}

    def record_send(self, payload: Any, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        if self.track_kinds:
            kind = type(payload).__name__
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.by_kind.clear()


class Network:
    """Connects :class:`~repro.sim.node.Node` instances.

    Nodes register with unique integer ids.  ``send`` runs the full
    resource pipeline; ``deliver_direct`` bypasses it (used by test
    harnesses that only care about logical behaviour).
    """

    #: Default per-message receive CPU cost: kernel/network-stack overhead
    #: for one message on a commodity VM (~10 µs).
    DEFAULT_RECV_CPU = 10e-6

    #: Minimum same-broadcast local fan-out that rides a single
    #: *arrival-train* calendar entry instead of one entry per copy.
    #: Below this the per-copy path is just as fast and allocates less.
    TRAIN_MIN = 8

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        track_kinds: bool = False,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.01)
        self.nodes: Dict[int, "Node"] = {}
        self.stats = NetworkStats(track_kinds=track_kinds)
        self._crashed: Set[int] = set()
        self._egress_delay: Dict[int, float] = {}
        self._blocked: Set[Tuple[int, int]] = set()
        #: Intra-simulation sharding (repro.sim.shard): node ids whose
        #: events execute in this process, or None when not sharded.
        self._shard_owned: Optional[frozenset] = None
        #: Cross-shard send buffer: (arrival_time, src, src_seq, dst,
        #: payload, recv_cost) tuples, drained after every conservative
        #: run slice and shipped on the owning shard's channel.
        self._shard_outbox: Optional[List[tuple]] = None

    # ------------------------------------------------------------------
    # Intra-simulation sharding (repro.sim.shard)
    # ------------------------------------------------------------------
    def configure_sharding(
        self, owned: frozenset, outbox: List[tuple]
    ) -> None:
        """Route sends to nodes outside ``owned`` into ``outbox``.

        Installed by a shard worker after system construction: the
        worker holds the full node set but executes only ``owned``;
        messages to other nodes are buffered with their already-computed
        arrival time, shipped on the per-shard-pair channel after the
        current conservative run slice, and merged into the owning
        shard's calendar in canonical ``(arrival_time, src, src_seq)``
        order per channel batch.
        """
        self._shard_owned = owned
        self._shard_outbox = outbox

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    def unregister(self, node_id: int) -> None:
        self.nodes.pop(node_id, None)

    @property
    def node_ids(self) -> List[int]:
        return list(self.nodes)

    # ------------------------------------------------------------------
    # Fault state (driven by repro.sim.faults.FaultInjector)
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def crashed_view(self) -> Set[int]:
        """Live view of the crashed-node set (public liveness accessor).

        The set object is mutated in place by :meth:`crash` /
        :meth:`recover` and never replaced, so holders may cache the
        returned reference and test membership directly — this is what
        makes :attr:`repro.sim.node.Node.alive` a single set containment
        test on hot paths.  Callers must treat it as read-only.
        """
        return self._crashed

    def executes(self, node_id: int) -> bool:
        """Whether this process executes ``node_id``'s events.

        Always true in an unsharded simulation; under intra-simulation
        sharding (:meth:`configure_sharding`) each worker holds the full
        node set but executes only its owned subset.
        """
        return self._shard_owned is None or node_id in self._shard_owned

    def set_egress_delay(self, node_id: int, extra: float) -> None:
        """Add ``extra`` seconds to every message leaving ``node_id``.

        Mirrors the paper's ``tc qdisc ... netem delay 100ms`` injection
        (§VI-D) which delays all outgoing packets of one replica.
        """
        if extra <= 0:
            self._egress_delay.pop(node_id, None)
        else:
            self._egress_delay[node_id] = extra

    def block(self, a: int, b: int) -> None:
        """Partition the (directed) pair: messages a→b are dropped."""
        self._blocked.add((a, b))

    def unblock(self, a: int, b: int) -> None:
        self._blocked.discard((a, b))

    def heal(self) -> None:
        self._blocked.clear()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
    ) -> None:
        """Send ``payload`` from node ``src`` to node ``dst``.

        The message is silently dropped if the source is crashed, the
        destination is unknown/crashed at delivery time, or the pair is
        partitioned — the asynchronous-network abstraction has no failure
        notifications.
        """
        if src in self._crashed:
            return
        self.stats.record_send(payload, size)
        if (src, dst) in self._blocked:
            self.stats.messages_dropped += 1
            return
        src_node = self.nodes.get(src)
        if src_node is None:
            raise ValueError(f"unknown source node {src}")
        if src == dst:
            # Loopback: no NIC serialization or propagation, but the CPU
            # still processes the message like any other.
            self._arrive(src, dst, payload, recv_cost)
            return
        serialized_at = src_node.link.transmit(size)
        delay = self.latency.sample(src, dst)
        extra = self._egress_delay.get(src)
        if extra:
            delay += extra
        owned = self._shard_owned
        if owned is not None and dst not in owned:
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            self._shard_outbox.append(
                (serialized_at + delay, src, seq, dst, payload, recv_cost)
            )
            return
        self.sim.call_at(
            serialized_at + delay, self._arrive, src, dst, payload, recv_cost
        )

    def broadcast(
        self,
        src: int,
        dsts: Sequence[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
    ) -> None:
        """Send one ``payload`` from ``src`` to every node in ``dsts``.

        Exactly equivalent to calling :meth:`send` once per destination in
        order — same per-copy NIC serialization chain, same latency-model
        draws, same event ordering — but with the per-copy bookkeeping
        (stats, fault lookups, link attribute chasing) hoisted out of the
        loop.  This is the hot path of every quorum protocol's all-to-all
        phases.  ``dsts`` must not contain ``src`` (loopback handling
        belongs to :meth:`send`).
        """
        if src in self._crashed:
            return
        src_node = self.nodes.get(src)
        if src_node is None:
            raise ValueError(f"unknown source node {src}")
        stats = self.stats
        copies = len(dsts)
        stats.messages_sent += copies
        stats.bytes_sent += size * copies
        if stats.track_kinds:
            kind = type(payload).__name__
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + copies
        link = src_node.link
        per = (size / link.bandwidth) / link.rate
        busy = link._busy_until
        now = self.sim.now
        if busy < now:
            busy = now
        transmitted = 0
        sample = self.latency.sample
        extra = self._egress_delay.get(src)
        blocked = self._blocked
        sim = self.sim
        heap = sim._heap
        arrive = self._arrive
        owned = self._shard_owned
        outbox = self._shard_outbox
        #: Local (time, seq, dst) arrivals of this broadcast; batched into
        #: one calendar entry when the fan-out is large enough.
        arrivals: List[tuple] = []
        for dst in dsts:
            if blocked and (src, dst) in blocked:
                stats.messages_dropped += 1
                continue
            busy += per
            transmitted += 1
            delay = sample(src, dst)
            if extra:
                delay += extra
            seq = sim._seq
            sim._seq = seq + 1
            if owned is not None and dst not in owned:
                outbox.append((busy + delay, src, seq, dst, payload, recv_cost))
            else:
                arrivals.append((busy + delay, seq, dst))
        if transmitted:
            link._busy_until = busy
            link.busy_time += per * transmitted
            link.jobs_served += transmitted
        if len(arrivals) < self.TRAIN_MIN:
            # Small fan-out: one calendar entry per copy, exactly the
            # per-send path (inlined sim.call_at; never in the past).
            for time, seq, dst in arrivals:
                _heappush(heap, (time, seq, arrive, (src, dst, payload, recv_cost)))
            return
        # Arrival train: the copies' (time, seq) keys are reserved above —
        # identical to the per-copy path — but only the *head* arrival
        # occupies the calendar; delivering it re-pushes the train at the
        # next arrival's reserved key, so the queue holds O(1) entries per
        # in-flight broadcast instead of O(N).  Delivery order is
        # unchanged: the heap pops by the same (time, seq) keys either
        # way.  Sorting is needed because per-destination latency varies,
        # so arrival times are not monotonic in destination order.
        arrivals.sort()
        time, seq, _dst = arrivals[0]
        _heappush(
            heap, (time, seq, self._train_step, ([0, arrivals, src, payload, recv_cost],))
        )

    def _train_step(self, train: list) -> None:
        """Deliver the train's head arrival and reschedule the remainder."""
        index, arrivals, src, payload, recv_cost = train
        dst = arrivals[index][2]
        index += 1
        if index < len(arrivals):
            train[0] = index
            time, seq, _dst = arrivals[index]
            _heappush(self.sim._heap, (time, seq, self._train_step, (train,)))
        self._arrive(src, dst, payload, recv_cost)

    def _arrive(
        self, src: int, dst: int, payload: Any, recv_cost: Optional[float]
    ) -> None:
        node = self.nodes.get(dst)
        if node is None or dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        cost = recv_cost if recv_cost is not None else self.DEFAULT_RECV_CPU
        node.cpu.submit(cost, self._dispatch, src, dst, payload)

    def _dispatch(self, src: int, dst: int, payload: Any) -> None:
        node = self.nodes.get(dst)
        if node is None or dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        # Inlined Node.on_message — one dispatch per delivered message.
        handler = node._handlers.get(payload.__class__)
        if handler is None:
            node.handle_unknown(src, payload)
        else:
            handler(src, payload)

    def deliver_direct(self, src: int, dst: int, payload: Any) -> None:
        """Logical delivery without the resource pipeline (tests only)."""
        node = self.nodes.get(dst)
        if node is None or dst in self._crashed or src in self._crashed:
            return
        self.stats.messages_delivered += 1
        node.on_message(src, payload)
