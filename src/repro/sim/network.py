"""Simulated message-passing network.

Implements the asynchronous, authenticated point-to-point network assumed
by the paper (§III): messages between correct nodes are eventually
delivered, with no bound on delivery time enforced by the protocols.  The
simulator adds a concrete performance model on top:

* sender NIC serialization (``size / bandwidth``) through a FIFO link,
* one-way propagation latency from a :class:`~repro.sim.latency.LatencyModel`,
* fault-injected extra egress delay (the paper's ``tc netem delay``),
* receiver CPU service time before the protocol handler runs.

Crashed nodes neither send nor receive; partitions drop messages in both
directions.  Dropping (rather than erroring) models an asynchronous network
in which a message to a dead host is simply never delivered.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .events import Simulator
from .latency import ConstantLatency, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["Network", "NetworkStats"]


class NetworkStats:
    """Aggregate traffic counters, optionally broken down by message kind."""

    def __init__(self, track_kinds: bool = False) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.track_kinds = track_kinds
        self.by_kind: Dict[str, int] = {}

    def record_send(self, payload: Any, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        if self.track_kinds:
            kind = type(payload).__name__
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.by_kind.clear()


class Network:
    """Connects :class:`~repro.sim.node.Node` instances.

    Nodes register with unique integer ids.  ``send`` runs the full
    resource pipeline; ``deliver_direct`` bypasses it (used by test
    harnesses that only care about logical behaviour).
    """

    #: Default per-message receive CPU cost: kernel/network-stack overhead
    #: for one message on a commodity VM (~10 µs).
    DEFAULT_RECV_CPU = 10e-6

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        track_kinds: bool = False,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.01)
        self.nodes: Dict[int, "Node"] = {}
        self.stats = NetworkStats(track_kinds=track_kinds)
        self._crashed: Set[int] = set()
        self._egress_delay: Dict[int, float] = {}
        self._blocked: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    def unregister(self, node_id: int) -> None:
        self.nodes.pop(node_id, None)

    @property
    def node_ids(self) -> List[int]:
        return list(self.nodes)

    # ------------------------------------------------------------------
    # Fault state (driven by repro.sim.faults.FaultInjector)
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def set_egress_delay(self, node_id: int, extra: float) -> None:
        """Add ``extra`` seconds to every message leaving ``node_id``.

        Mirrors the paper's ``tc qdisc ... netem delay 100ms`` injection
        (§VI-D) which delays all outgoing packets of one replica.
        """
        if extra <= 0:
            self._egress_delay.pop(node_id, None)
        else:
            self._egress_delay[node_id] = extra

    def block(self, a: int, b: int) -> None:
        """Partition the (directed) pair: messages a→b are dropped."""
        self._blocked.add((a, b))

    def unblock(self, a: int, b: int) -> None:
        self._blocked.discard((a, b))

    def heal(self) -> None:
        self._blocked.clear()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
    ) -> None:
        """Send ``payload`` from node ``src`` to node ``dst``.

        The message is silently dropped if the source is crashed, the
        destination is unknown/crashed at delivery time, or the pair is
        partitioned — the asynchronous-network abstraction has no failure
        notifications.
        """
        if src in self._crashed:
            return
        self.stats.record_send(payload, size)
        if (src, dst) in self._blocked:
            self.stats.messages_dropped += 1
            return
        src_node = self.nodes.get(src)
        if src_node is None:
            raise ValueError(f"unknown source node {src}")
        if src == dst:
            # Loopback: no NIC serialization or propagation, but the CPU
            # still processes the message like any other.
            self._arrive(src, dst, payload, recv_cost)
            return
        serialized_at = src_node.link.transmit(size)
        delay = self.latency.sample(src, dst)
        extra = self._egress_delay.get(src)
        if extra:
            delay += extra
        self.sim.call_at(
            serialized_at + delay, self._arrive, src, dst, payload, recv_cost
        )

    def broadcast(
        self,
        src: int,
        dsts: Sequence[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
    ) -> None:
        """Send one ``payload`` from ``src`` to every node in ``dsts``.

        Exactly equivalent to calling :meth:`send` once per destination in
        order — same per-copy NIC serialization chain, same latency-model
        draws, same event ordering — but with the per-copy bookkeeping
        (stats, fault lookups, link attribute chasing) hoisted out of the
        loop.  This is the hot path of every quorum protocol's all-to-all
        phases.  ``dsts`` must not contain ``src`` (loopback handling
        belongs to :meth:`send`).
        """
        if src in self._crashed:
            return
        src_node = self.nodes.get(src)
        if src_node is None:
            raise ValueError(f"unknown source node {src}")
        stats = self.stats
        copies = len(dsts)
        stats.messages_sent += copies
        stats.bytes_sent += size * copies
        if stats.track_kinds:
            kind = type(payload).__name__
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + copies
        link = src_node.link
        per = (size / link.bandwidth) / link.rate
        busy = link._busy_until
        now = self.sim.now
        if busy < now:
            busy = now
        transmitted = 0
        sample = self.latency.sample
        extra = self._egress_delay.get(src)
        blocked = self._blocked
        sim = self.sim
        heap = sim._heap
        arrive = self._arrive
        for dst in dsts:
            if blocked and (src, dst) in blocked:
                stats.messages_dropped += 1
                continue
            busy += per
            transmitted += 1
            delay = sample(src, dst)
            if extra:
                delay += extra
            # Inlined sim.call_at (arrival times are never in the past).
            seq = sim._seq
            sim._seq = seq + 1
            _heappush(
                heap, (busy + delay, seq, arrive, (src, dst, payload, recv_cost))
            )
        if transmitted:
            link._busy_until = busy
            link.busy_time += per * transmitted
            link.jobs_served += transmitted

    def _arrive(
        self, src: int, dst: int, payload: Any, recv_cost: Optional[float]
    ) -> None:
        node = self.nodes.get(dst)
        if node is None or dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        cost = recv_cost if recv_cost is not None else self.DEFAULT_RECV_CPU
        node.cpu.submit(cost, self._dispatch, src, dst, payload)

    def _dispatch(self, src: int, dst: int, payload: Any) -> None:
        node = self.nodes.get(dst)
        if node is None or dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        # Inlined Node.on_message — one dispatch per delivered message.
        handler = node._handlers.get(payload.__class__)
        if handler is None:
            node.handle_unknown(src, payload)
        else:
            handler(src, payload)

    def deliver_direct(self, src: int, dst: int, payload: Any) -> None:
        """Logical delivery without the resource pipeline (tests only)."""
        node = self.nodes.get(dst)
        if node is None or dst in self._crashed or src in self._crashed:
            return
        self.stats.messages_delivered += 1
        node.on_message(src, payload)
