"""Fault injection: crash-stop failures, asynchrony, partitions.

Reproduces the two fault classes of the paper's robustness evaluation
(§VI-D):

* **crash-stop** — a replica halts at a chosen time and never recovers
  (the paper kills the process at t=30 s);
* **asynchrony** — every packet leaving a replica is delayed by a fixed
  amount (the paper runs ``tc qdisc change dev eth0 root netem delay
  100ms`` at t=30 s).

Partitions are additionally provided for adversarial-schedule tests.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .events import Simulator
from .network import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules faults against a :class:`~repro.sim.network.Network`."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.log: List[Tuple[float, str, object]] = []

    # ------------------------------------------------------------------
    # Crash-stop
    # ------------------------------------------------------------------
    def crash(self, node_id: int, at: float = 0.0) -> None:
        """Crash ``node_id`` at absolute time ``at`` (now if in the past)."""
        self.sim.schedule_at(max(at, self.sim.now), self._do_crash, node_id)

    def _do_crash(self, node_id: int) -> None:
        self.network.crash(node_id)
        self.log.append((self.sim.now, "crash", node_id))

    def recover(self, node_id: int, at: float = 0.0) -> None:
        """Un-crash ``node_id`` at absolute time ``at`` (now if in the past).

        The node resumes sending and receiving with whatever protocol
        state it held when it crashed — crash-*recovery*, the fault shape
        the paper's crash-stop timelines (§VI-D) deliberately exclude but
        recovery experiments need.  In-flight messages addressed to the
        node while it was down stay dropped (the asynchronous network
        never redelivers).
        """
        self.sim.schedule_at(max(at, self.sim.now), self._do_recover, node_id)

    def _do_recover(self, node_id: int) -> None:
        self.network.recover(node_id)
        self.log.append((self.sim.now, "recover", node_id))

    # ------------------------------------------------------------------
    # Asynchrony (tc netem)
    # ------------------------------------------------------------------
    def delay_egress(self, node_id: int, extra: float, at: float = 0.0) -> None:
        """From time ``at``, delay all messages leaving ``node_id``."""
        self.sim.schedule_at(
            max(at, self.sim.now), self._do_delay, node_id, extra
        )

    def _do_delay(self, node_id: int, extra: float) -> None:
        self.network.set_egress_delay(node_id, extra)
        self.log.append((self.sim.now, "delay", (node_id, extra)))

    def delay_all(self, node_ids: Iterable[int], extra: float, at: float = 0.0) -> None:
        """Uniform extra delay at several nodes (Table I's +20 ms setup)."""
        for node_id in node_ids:
            self.delay_egress(node_id, extra, at=at)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(
        self, group_a: Iterable[int], group_b: Iterable[int], at: float = 0.0
    ) -> None:
        """Sever connectivity between two disjoint groups (both directions).

        Raises ``ValueError`` on overlapping groups: a shared member would
        generate a self-pair ``(a, a)`` and block a node from its own
        loopback path, which no real partition can do.  Duplicate members
        within one group are tolerated (the pair set is deduplicated).
        """
        set_a = set(group_a)
        set_b = set(group_b)
        overlap = set_a & set_b
        if overlap:
            raise ValueError(
                f"partition groups must be disjoint; both contain "
                f"{sorted(overlap)}"
            )
        pairs = sorted({(a, b) for a in set_a for b in set_b})
        self.sim.schedule_at(max(at, self.sim.now), self._do_partition, pairs)

    def _do_partition(self, pairs: List[Tuple[int, int]]) -> None:
        for a, b in pairs:
            self.network.block(a, b)
            self.network.block(b, a)
        self.log.append((self.sim.now, "partition", tuple(pairs)))

    def heal(self, at: float = 0.0) -> None:
        self.sim.schedule_at(max(at, self.sim.now), self._do_heal)

    def _do_heal(self) -> None:
        self.network.heal()
        self.log.append((self.sim.now, "heal", None))
