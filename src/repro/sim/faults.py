"""Fault injection: crash-stop failures, asynchrony, partitions.

Reproduces the two fault classes of the paper's robustness evaluation
(§VI-D):

* **crash-stop** — a replica halts at a chosen time and never recovers
  (the paper kills the process at t=30 s);
* **asynchrony** — every packet leaving a replica is delayed by a fixed
  amount (the paper runs ``tc qdisc change dev eth0 root netem delay
  100ms`` at t=30 s).

Partitions are additionally provided for adversarial-schedule tests.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .events import Simulator
from .network import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules faults against a :class:`~repro.sim.network.Network`."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.log: List[Tuple[float, str, object]] = []

    # ------------------------------------------------------------------
    # Crash-stop
    # ------------------------------------------------------------------
    def crash(self, node_id: int, at: float = 0.0) -> None:
        """Crash ``node_id`` at absolute time ``at`` (now if in the past)."""
        self.sim.schedule_at(max(at, self.sim.now), self._do_crash, node_id)

    def _do_crash(self, node_id: int) -> None:
        self.network.crash(node_id)
        self.log.append((self.sim.now, "crash", node_id))

    # ------------------------------------------------------------------
    # Asynchrony (tc netem)
    # ------------------------------------------------------------------
    def delay_egress(self, node_id: int, extra: float, at: float = 0.0) -> None:
        """From time ``at``, delay all messages leaving ``node_id``."""
        self.sim.schedule_at(
            max(at, self.sim.now), self._do_delay, node_id, extra
        )

    def _do_delay(self, node_id: int, extra: float) -> None:
        self.network.set_egress_delay(node_id, extra)
        self.log.append((self.sim.now, "delay", (node_id, extra)))

    def delay_all(self, node_ids: Iterable[int], extra: float, at: float = 0.0) -> None:
        """Uniform extra delay at several nodes (Table I's +20 ms setup)."""
        for node_id in node_ids:
            self.delay_egress(node_id, extra, at=at)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(
        self, group_a: Iterable[int], group_b: Iterable[int], at: float = 0.0
    ) -> None:
        """Sever connectivity between two groups (both directions)."""
        pairs = [(a, b) for a in group_a for b in group_b]
        self.sim.schedule_at(max(at, self.sim.now), self._do_partition, pairs)

    def _do_partition(self, pairs: List[Tuple[int, int]]) -> None:
        for a, b in pairs:
            self.network.block(a, b)
            self.network.block(b, a)
        self.log.append((self.sim.now, "partition", tuple(pairs)))

    def heal(self, at: float = 0.0) -> None:
        self.sim.schedule_at(max(at, self.sim.now), self._do_heal)

    def _do_heal(self) -> None:
        self.network.heal()
        self.log.append((self.sim.now, "heal", None))
