"""Asyncio TCP backend for the :class:`~repro.transport.interface.Transport`
contract.

One OS process per node.  Design (exemplar: the lightning bolts
08-transport framing/handshake design referenced from ROADMAP):

* **Length-framed pickle streams** (:mod:`repro.transport.framing`) —
  the same compact ``__reduce__`` wire classes the sharded simulator
  ships cross-process.
* **HMAC-authenticated handshake** — a shared cluster secret and an
  HMAC-SHA256 challenge-response in both directions before any frame is
  accepted, realizing the authenticated point-to-point links the paper
  assumes (§III).  A peer that fails the handshake is disconnected
  before a single payload byte is parsed.
* **One connection per direction** — a node dials every peer for its
  own outbound traffic and accepts inbound connections for theirs, so
  stream ownership is unambiguous and reconnects never race.
* **Per-peer outbound queues with reconnect/backoff** — ``send`` is
  fire-and-forget: it enqueues a frame and returns.  A per-peer sender
  task drains the queue; on connection failure it retries with
  exponential backoff, and frames in flight during a drop are lost —
  exactly the asynchronous-network semantics the protocols are built
  for (the simulator drops sends to crashed nodes the same way).

Everything runs on one asyncio loop per process; protocol handlers are
synchronous callbacks invoked from receiver tasks, so replica code needs
no locking — the same single-threaded execution model as the simulator.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import os
import random
import struct
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple, Type

from .clock import RealTimeClock
from .framing import MAX_FRAME_BYTES, FrameDecoder, FrameError, encode_frame

__all__ = ["TcpTransport", "HandshakeError", "TransportStats"]

#: Protocol magic: rejects accidental cross-protocol connections early.
_MAGIC = b"AST1"
_NONCE_BYTES = 16
_TAG_BYTES = hashlib.sha256().digest_size
_ID = struct.Struct(">I")

#: Reconnect backoff: first retry after INITIAL, doubling to CAP.
RECONNECT_INITIAL = 0.05
RECONNECT_CAP = 2.0

#: Per-peer outbound queue bound, in frames.  A permanently dead peer
#: must not grow memory without limit; on overflow the *oldest* frame is
#: dropped (the protocols tolerate loss to faulty peers, and newer
#: frames are the ones a recovering peer can still use).
OUTBOUND_QUEUE_FRAMES = 4096

#: Receiver read chunk.
_READ_CHUNK = 1 << 16


class HandshakeError(ConnectionError):
    """Peer failed mutual authentication (wrong secret, bad magic, ...)."""


def _tag(secret: bytes, role: bytes, nonce: bytes, node_id: int) -> bytes:
    return hmac.new(
        secret, role + nonce + _ID.pack(node_id), hashlib.sha256
    ).digest()


class TransportStats:
    """Counters for tests and the cluster runner's report."""

    def __init__(self) -> None:
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.connects = 0
        self.reconnects = 0
        self.connect_failures = 0
        self.stream_errors = 0
        self.handshake_failures = 0
        self.handler_errors = 0
        #: Frames evicted from full per-peer outbound queues.
        self.queue_dropped = 0
        #: Frames discarded by injected link faults (chaos harness).
        self.fault_dropped = 0


class TcpTransport:
    """Real-socket transport for one node (see module docstring)."""

    def __init__(
        self,
        node_id: int,
        secret: bytes,
        clock: Optional[RealTimeClock] = None,
        host: str = "127.0.0.1",
        max_frame: int = MAX_FRAME_BYTES,
        max_queue: int = OUTBOUND_QUEUE_FRAMES,
        reconnect_initial: float = RECONNECT_INITIAL,
        reconnect_cap: float = RECONNECT_CAP,
    ) -> None:
        self.node_id = node_id
        self.secret = secret
        self.clock = clock if clock is not None else RealTimeClock()
        self.host = host
        self.port: Optional[int] = None
        self.max_frame = max_frame
        self.max_queue = max_queue
        self.reconnect_initial = reconnect_initial
        self.reconnect_cap = reconnect_cap
        self.stats = TransportStats()
        self._handlers: Dict[Type[Any], Callable[[int, Any], None]] = {}
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._queues: Dict[int, asyncio.Queue] = {}
        self._sender_tasks: Dict[int, asyncio.Task] = {}
        self._receiver_tasks: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = False
        #: Per-peer frames evicted on queue overflow (observability).
        self.dropped_by_peer: Dict[int, int] = {}
        #: Per-peer current reconnect backoff (tests/observability).
        self.backoff_by_peer: Dict[int, float] = {}
        #: Injected egress shaping per destination (chaos harness):
        #: dst -> (block, drop_probability, extra_delay_seconds).
        self._link_faults: Dict[int, Tuple[bool, float, float]] = {}
        #: Deterministic per-node RNG for probabilistic frame drops, so a
        #: chaos run's drop pattern is reproducible for a given topology.
        self._fault_rng = random.Random(node_id * 7919 + 17)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, port: int = 0) -> int:
        """Bind the acceptor; returns the actual listening port."""
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def connect(self, peers: Dict[int, Tuple[str, int]]) -> None:
        """Learn peer addresses and start one sender task per peer.

        May be called again to add peers; existing peers are untouched.
        """
        loop = self.clock.loop
        for dst, address in peers.items():
            if dst == self.node_id or dst in self._queues:
                self._peers.setdefault(dst, address)
                continue
            self._peers[dst] = address
            self._queues[dst] = asyncio.Queue(maxsize=self.max_queue)
            self._sender_tasks[dst] = loop.create_task(self._sender(dst))

    async def close(self) -> None:
        """Stop accepting, drop every connection, cancel all tasks."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._sender_tasks.values()):
            task.cancel()
        for task in list(self._receiver_tasks):
            task.cancel()
        pending = [
            *self._sender_tasks.values(),
            *self._receiver_tasks,
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._sender_tasks.clear()
        self._receiver_tasks.clear()

    # ------------------------------------------------------------------
    # Transport contract
    # ------------------------------------------------------------------
    def on(
        self, message_type: Type[Any], handler: Callable[[int, Any], None]
    ) -> None:
        self._handlers[message_type] = handler

    def send(
        self,
        dst: int,
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        """Fire-and-forget: frame now, ship from the sender task.

        The modelled ``size``/``recv_cost``/``send_cost`` are ignored —
        real bytes and cycles are spent for real.
        """
        if self._closed:
            return
        if dst == self.node_id:
            # Loopback stays asynchronous (like the simulator's loopback
            # path): the handler runs on a fresh loop iteration, never
            # reentrantly inside the caller.
            self.clock.loop.call_soon(self._dispatch, dst, payload)
            return
        queue = self._queues.get(dst)
        if queue is None:
            # Unknown destination: silently dropped, the asynchronous
            # network has no failure notifications.
            self.stats.frames_dropped += 1
            return
        try:
            frame = encode_frame(payload, self.max_frame)
        except FrameError:
            self.stats.frames_dropped += 1
            return
        try:
            queue.put_nowait(frame)
        except asyncio.QueueFull:
            # Bounded backlog: evict the oldest frame (message loss the
            # protocols already tolerate) rather than grow without limit
            # against a dead peer.
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - racing sender
                pass
            self.stats.queue_dropped += 1
            self.dropped_by_peer[dst] = self.dropped_by_peer.get(dst, 0) + 1
            queue.put_nowait(frame)

    def send_all(
        self,
        targets: Iterable[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
        include_self: bool = True,
    ) -> None:
        for dst in targets:
            if not include_self and dst == self.node_id:
                continue
            self.send(dst, payload, size=size, recv_cost=recv_cost)

    def broadcast(
        self,
        targets: Sequence[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        # Class-level send on purpose: like Node.broadcast (which goes
        # straight to Network.broadcast), a raw broadcast must not
        # re-enter an installed egress tap via the shadowed self.send.
        for dst in targets:
            TcpTransport.send(self, dst, payload, size=size, recv_cost=recv_cost)

    def charge(self, cost: float) -> None:
        """Modelled CPU is a no-op here: the work burned real cycles."""

    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self.clock.schedule(delay, self._fire_timer, fn, args)

    def _fire_timer(self, fn: Callable[..., Any], args: tuple) -> None:
        if self.alive:
            fn(*args)

    @property
    def alive(self) -> bool:
        return not self._closed

    def owns(self, node_id: int) -> bool:
        """A real transport executes exactly its own node."""
        return node_id == self.node_id

    # ------------------------------------------------------------------
    # Egress taps (same shadowing contract as the simulator Node)
    # ------------------------------------------------------------------
    def install_egress_tap(self, tap: Any) -> None:
        tap.bind(
            TcpTransport.send.__get__(self),
            TcpTransport.broadcast.__get__(self),
        )
        self.send = tap.send            # type: ignore[method-assign]
        self.broadcast = tap.broadcast  # type: ignore[method-assign]

    def remove_egress_tap(self) -> None:
        self.__dict__.pop("send", None)
        self.__dict__.pop("broadcast", None)

    # ------------------------------------------------------------------
    # Outbound: per-peer sender with reconnect/backoff
    # ------------------------------------------------------------------
    async def _dial(self, dst: int) -> asyncio.StreamWriter:
        host, port = self._peers[dst]
        reader, writer = await asyncio.open_connection(host, port)
        try:
            nonce_d = os.urandom(_NONCE_BYTES)
            writer.write(_MAGIC + _ID.pack(self.node_id) + nonce_d)
            await writer.drain()
            reply = await reader.readexactly(
                len(_MAGIC) + _ID.size + _NONCE_BYTES + _TAG_BYTES
            )
            if reply[: len(_MAGIC)] != _MAGIC:
                raise HandshakeError(f"peer {dst}: bad magic")
            offset = len(_MAGIC)
            (acceptor_id,) = _ID.unpack_from(reply, offset)
            offset += _ID.size
            nonce_a = reply[offset : offset + _NONCE_BYTES]
            tag_a = reply[offset + _NONCE_BYTES :]
            expected = _tag(self.secret, b"accept", nonce_d, acceptor_id)
            if acceptor_id != dst or not hmac.compare_digest(tag_a, expected):
                raise HandshakeError(f"peer {dst}: acceptor failed auth")
            writer.write(_tag(self.secret, b"dial", nonce_a, self.node_id))
            await writer.drain()
        except BaseException:
            writer.close()
            raise
        return writer

    async def _sender(self, dst: int) -> None:
        queue = self._queues[dst]
        backoff = self.reconnect_initial
        self.backoff_by_peer[dst] = backoff
        writer: Optional[asyncio.StreamWriter] = None
        connected_once = False
        try:
            while not self._closed:
                if writer is None:
                    try:
                        writer = await self._dial(dst)
                    except (OSError, asyncio.IncompleteReadError) as exc:
                        if isinstance(exc, HandshakeError):
                            self.stats.handshake_failures += 1
                        self.stats.connect_failures += 1
                        await asyncio.sleep(backoff)
                        backoff = min(backoff * 2, self.reconnect_cap)
                        self.backoff_by_peer[dst] = backoff
                        continue
                    self.stats.connects += 1
                    if connected_once:
                        self.stats.reconnects += 1
                    connected_once = True
                    backoff = self.reconnect_initial
                    self.backoff_by_peer[dst] = backoff
                frame = await queue.get()
                fault = self._link_faults.get(dst)
                if fault is not None:
                    block, drop, delay = fault
                    if block or (drop > 0.0 and self._fault_rng.random() < drop):
                        # Partition / probabilistic loss: discard like the
                        # simulator Network drops partitioned messages.
                        self.stats.fault_dropped += 1
                        continue
                    if delay > 0.0:
                        await asyncio.sleep(delay)
                try:
                    writer.write(frame)
                    await writer.drain()
                except (OSError, ConnectionError):
                    # The frame is lost — asynchronous-network semantics;
                    # the protocols tolerate message loss to faulty peers
                    # and the next frame triggers a reconnect.
                    self.stats.stream_errors += 1
                    writer.close()
                    writer = None
                    continue
                self.stats.frames_sent += 1
                self.stats.bytes_sent += len(frame)
        finally:
            if writer is not None:
                writer.close()

    # ------------------------------------------------------------------
    # Link-fault injection (chaos harness)
    # ------------------------------------------------------------------
    def set_link_fault(
        self, dst: int, block: bool = False, drop: float = 0.0, delay: float = 0.0
    ) -> None:
        """Shape egress toward ``dst``: drop all (partition), drop a
        fraction, or add fixed delay — applied at the sender task, after
        queueing, so ordering within the surviving frames is preserved."""
        self._link_faults[dst] = (block, drop, delay)

    def clear_link_fault(self, dst: int) -> None:
        self._link_faults.pop(dst, None)

    def clear_link_faults(self) -> None:
        self._link_faults.clear()

    def queue_depth(self, dst: int) -> int:
        queue = self._queues.get(dst)
        return 0 if queue is None else queue.qsize()

    # ------------------------------------------------------------------
    # Inbound: acceptor, handshake, frame pump
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._receiver_tasks.add(task)
            task.add_done_callback(self._receiver_tasks.discard)
        try:
            src = await self._accept_handshake(reader, writer)
        except asyncio.CancelledError:
            # Shutdown mid-handshake: exit cleanly (asyncio.streams
            # inspects the client task with ``task.exception()``, which
            # would re-raise an escaping cancellation into the loop's
            # exception handler).
            writer.close()
            return
        except (
            HandshakeError,
            OSError,
            asyncio.IncompleteReadError,
        ):
            self.stats.handshake_failures += 1
            writer.close()
            return
        decoder = FrameDecoder(self.max_frame)
        try:
            while not self._closed:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for payload in decoder.feed(data):
                    self._dispatch(src, payload)
        except FrameError:
            # Oversized/corrupt frame: the stream cannot resynchronize,
            # drop the connection (the peer's sender will redial).
            self.stats.stream_errors += 1
        except (OSError, ConnectionError):
            self.stats.stream_errors += 1
        except asyncio.CancelledError:
            pass  # close() cancelled us; same rationale as above
        finally:
            writer.close()

    async def _accept_handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> int:
        hello = await reader.readexactly(
            len(_MAGIC) + _ID.size + _NONCE_BYTES
        )
        if hello[: len(_MAGIC)] != _MAGIC:
            raise HandshakeError("bad magic")
        (dialer_id,) = _ID.unpack_from(hello, len(_MAGIC))
        nonce_d = hello[len(_MAGIC) + _ID.size :]
        nonce_a = os.urandom(_NONCE_BYTES)
        writer.write(
            _MAGIC
            + _ID.pack(self.node_id)
            + nonce_a
            + _tag(self.secret, b"accept", nonce_d, self.node_id)
        )
        await writer.drain()
        tag_d = await reader.readexactly(_TAG_BYTES)
        expected = _tag(self.secret, b"dial", nonce_a, dialer_id)
        if not hmac.compare_digest(tag_d, expected):
            raise HandshakeError(f"dialer {dialer_id} failed auth")
        return dialer_id

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, src: int, payload: Any) -> None:
        if self._closed:
            return
        self.stats.frames_received += 1
        handler = self._handlers.get(payload.__class__)
        if handler is None:
            return  # unregistered type: ignored, like Node.handle_unknown
        try:
            handler(src, payload)
        except Exception:
            # A handler bug must not kill the receiver task (and with it
            # every future frame on the stream); count it and continue.
            self.stats.handler_errors += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpTransport id={self.node_id} {self.host}:{self.port} "
            f"peers={sorted(self._peers)}>"
        )
