"""Length-framed pickle streams for the TCP backend.

One frame is a 4-byte big-endian payload length followed by the pickled
payload.  The payloads are the same compact ``__reduce__`` wire classes
the sharded simulator ships through its cross-shard outbox
(Payment, Batch, CreditMessage/CreditBundle, Sb*/Brb*, ...), so one
serialization format covers both parallelism inside a simulation and
real sockets between processes.

Pickle between mutually authenticated replicas matches the paper's
trust model: the handshake (:mod:`repro.transport.tcp`) ensures frames
only ever come from holders of the cluster secret, exactly like the
MAC-authenticated links the simulator assumes.  The length prefix is
still validated defensively — a truncated or corrupt stream must kill
the connection, not the process.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional

__all__ = [
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME_BYTES",
    "HEADER_BYTES",
    "encode_frame",
]

#: Frames above this are rejected and the connection dropped.  The
#: largest legitimate payload is a full batch of 256 payments with
#: attached certificates — well under a megabyte; 16 MiB leaves room for
#: future payloads while bounding a malicious length prefix.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Length prefix: one unsigned 32-bit big-endian integer.
HEADER_BYTES = 4

_pack_header = struct.Struct(">I").pack
_unpack_header = struct.Struct(">I").unpack_from


class FrameError(ValueError):
    """A malformed frame (oversized, zero-length, or undecodable)."""


def encode_frame(payload: Any, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Pickle ``payload`` and prepend the length header."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > max_frame:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte cap"
        )
    return _pack_header(len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed bytes, harvest complete payloads.

    Raises :class:`FrameError` on a length prefix that is zero or above
    ``max_frame`` — the caller must drop the connection, since stream
    framing cannot resynchronize after a bad header.  A partial frame is
    simply retained until more bytes arrive (:attr:`truncated` reports
    whether unconsumed bytes are pending, e.g. at EOF).
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self.frames_decoded = 0

    def feed(self, data: bytes) -> List[Any]:
        """Append ``data`` and return every now-complete payload in order."""
        buffer = self._buffer
        buffer.extend(data)
        out: List[Any] = []
        offset = 0
        while len(buffer) - offset >= HEADER_BYTES:
            (length,) = _unpack_header(buffer, offset)
            if length == 0 or length > self.max_frame:
                raise FrameError(
                    f"bad frame length {length} (cap {self.max_frame})"
                )
            if len(buffer) - offset - HEADER_BYTES < length:
                break
            start = offset + HEADER_BYTES
            end = start + length
            try:
                payload = pickle.loads(bytes(buffer[start:end]))
            except Exception as exc:
                raise FrameError(f"undecodable frame: {exc!r}") from exc
            out.append(payload)
            self.frames_decoded += 1
            offset = end
        if offset:
            del buffer[:offset]
        return out

    @property
    def truncated(self) -> bool:
        """Whether a partial frame is buffered (data loss if at EOF)."""
        return len(self._buffer) > 0

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def decode_exactly_one(
    data: bytes, max_frame: int = MAX_FRAME_BYTES
) -> Optional[Any]:
    """Decode ``data`` as exactly one complete frame, else raise.

    Test/diagnostic helper: rejects trailing bytes and truncation.
    """
    decoder = FrameDecoder(max_frame=max_frame)
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.truncated:
        raise FrameError(
            f"expected exactly one frame, got {len(frames)} "
            f"(+{decoder.pending_bytes} trailing bytes)"
        )
    return frames[0]
