"""Wall-clock :class:`~repro.transport.interface.Clock` over asyncio.

Mirrors the :class:`~repro.sim.events.Simulator` scheduling surface
(``now`` / ``schedule`` / ``schedule_at`` / ``call_after`` / ``call_at``)
on a real event loop, so :class:`~repro.brb.batching.Batcher` timers and
replica timeouts run unmodified against wall time.  ``now`` is the
loop's monotonic time — like simulated time, its epoch is arbitrary but
differences are seconds.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional

__all__ = ["RealTimeClock"]


class _LoopTimer:
    """Cancellable handle matching :class:`repro.sim.events.Event`'s shape."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._handle.cancel()


class RealTimeClock:
    """Schedules callbacks on an asyncio loop; ``now`` is loop time."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        # Bind lazily: a transport is often constructed synchronously
        # (before asyncio.run), so the loop is resolved on first use
        # inside the running loop rather than at construction time.
        self._loop = loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    @property
    def now(self) -> float:
        # The default asyncio clock is time.monotonic, so reading the
        # time before a loop is bound (e.g. during synchronous
        # construction) can fall back to it consistently.
        if self._loop is None:
            try:
                self._loop = asyncio.get_running_loop()
            except RuntimeError:
                return time.monotonic()
        return self._loop.time()

    # ------------------------------------------------------------------
    # Scheduling (Simulator-shaped)
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> _LoopTimer:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return _LoopTimer(self.loop.call_later(delay, fn, *args))

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> _LoopTimer:
        return _LoopTimer(self.loop.call_at(time, fn, *args))

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        self.schedule(delay, fn, *args)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        self.loop.call_at(time, fn, *args)
