"""Transport abstraction: protocol objects over sim or real sockets.

The protocol layers (``core/``, ``brb/``, ``consensus/``) are written
against the :class:`~repro.transport.interface.Transport` /
:class:`~repro.transport.interface.Clock` contracts.  Two backends
implement them:

* :class:`repro.sim.node.Node` — the discrete-event simulator backend
  (byte-identical histories, the golden-test substrate);
* :class:`repro.transport.tcp.TcpTransport` — real asyncio TCP sockets
  with length-framed, HMAC-authenticated streams and a wall-clock timer
  (:class:`repro.transport.clock.RealTimeClock`).

``python -m repro.transport.cluster`` boots a localhost N-replica
cluster (one OS process per replica) behind an open-loop load generator
and measures wall-clock throughput.
"""

from .interface import Clock, Transport, TimerHandle
from .endpoint import ProtocolEndpoint
from .framing import FrameDecoder, FrameError, MAX_FRAME_BYTES, encode_frame

__all__ = [
    "Clock",
    "Transport",
    "TimerHandle",
    "ProtocolEndpoint",
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
]
