"""The Transport/Clock contracts the protocol layers are written against.

Every replica (``core/``, ``consensus/``) and broadcast endpoint
(``brb/``) talks to its environment exclusively through a *transport*
object and the transport's *clock*.  The contracts are structural
(:class:`typing.Protocol`) — backends do not inherit from them; the
simulator's :class:`repro.sim.node.Node` and the asyncio backend's
:class:`repro.transport.tcp.TcpTransport` both satisfy them by shape.
This module imports nothing from ``repro.sim`` so a real deployment
never loads the simulator.

Contract notes (the parts a new backend must get right):

* **send/broadcast are fire-and-forget.**  The asynchronous network
  abstraction of the paper (§III) has no failure notifications: a send
  to a dead or unreachable peer is silently dropped.  ``size``,
  ``recv_cost`` and ``send_cost`` describe the *modelled* wire size and
  CPU of the message; the simulator charges them, a real backend may
  ignore them (real wire bytes and CPU are spent for real).
* **``charge(cost)`` is modelled local CPU.**  Protocol code calls it
  for work that happens outside a message send (signing its own ACK,
  settling a batch).  The simulator occupies the node's CPU server;
  real backends make it a no-op — the work itself already burned the
  cycles.
* **Timers fire only while the node is alive.**  ``set_timer`` wraps
  the clock's ``schedule`` with a liveness gate so a crashed (sim) or
  closed (real) node never observes its own callbacks.
* **Liveness is public.**  ``alive`` must not reach into backend
  internals; the simulator exposes the network's crashed set through
  :meth:`repro.sim.network.Network.crashed_view`.
* **Egress taps** (``install_egress_tap`` / ``remove_egress_tap``)
  shadow the instance's ``send``/``broadcast`` with the tap's, binding
  the raw bound methods via ``tap.bind(raw_send, raw_broadcast)``.
  Protocol code must therefore always call ``transport.send(...)``
  dynamically — never cache the bound method — so a tap armed mid-run
  (``repro.adversary``) sees every message.
* **``owns(node_id)``** says whether this process executes that node's
  events: the sharded simulator replicates builds across workers and
  owns a subset (:meth:`repro.sim.network.Network.executes`); a real
  transport owns exactly its own node.  Behaviours that start their own
  timers consult it to avoid double-arming on replicated builds.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Type,
    runtime_checkable,
)

__all__ = ["Clock", "Transport", "TimerHandle"]


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled callback that can be cancelled (idempotently)."""

    def cancel(self) -> None:
        ...


@runtime_checkable
class Clock(Protocol):
    """Time source and scheduler.

    The simulator's :class:`~repro.sim.events.Simulator` satisfies this
    directly (simulated seconds); :class:`repro.transport.clock.RealTimeClock`
    maps it onto an asyncio event loop (wall-clock seconds).  ``now`` is
    monotonic within one run; its epoch is backend-defined.
    """

    now: float

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` seconds; cancellable."""
        ...

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Run ``fn(*args)`` at absolute ``time``; cancellable."""
        ...

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule` (no handle, never cancelled)."""
        ...

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        ...


@runtime_checkable
class Transport(Protocol):
    """One node's messaging endpoint (see the module docstring contract)."""

    node_id: int
    clock: Clock

    def send(
        self,
        dst: int,
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        ...

    def send_all(
        self,
        targets: Iterable[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
        include_self: bool = True,
    ) -> None:
        ...

    def broadcast(
        self,
        targets: Sequence[int],
        payload: Any,
        size: int = 256,
        recv_cost: Optional[float] = None,
        send_cost: float = 0.0,
    ) -> None:
        ...

    def on(
        self, message_type: Type[Any], handler: Callable[[int, Any], None]
    ) -> None:
        """Register ``handler(src, msg)`` for payloads of ``message_type``."""
        ...

    def charge(self, cost: float) -> None:
        """Account modelled local CPU (no-op on real backends)."""
        ...

    def set_timer(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule a local callback, suppressed if the node dies first."""
        ...

    @property
    def alive(self) -> bool:
        ...

    def owns(self, node_id: int) -> bool:
        """Whether this process executes ``node_id``'s events."""
        ...

    def install_egress_tap(self, tap: Any) -> None:
        ...

    def remove_egress_tap(self) -> None:
        ...
