"""Localhost live cluster: one OS process per replica, real TCP sockets.

``python -m repro.transport.cluster --n 4 --system astro2`` boots an
N-replica deployment in which every replica is the *same protocol
object* the simulator runs (:class:`~repro.core.astro2.Astro2Replica` /
:class:`~repro.core.astro1.Astro1Replica`), bound to a
:class:`~repro.transport.tcp.TcpTransport` instead of a simulator
:class:`~repro.sim.node.Node`.  The parent process runs an open-loop
load generator (a paced client population, like
:class:`repro.workloads.drivers.OpenLoopDriver` but against wall time),
measures settled wall-clock throughput over a steady-state window, and
writes the result to ``BENCH_live.json``.

Determinism note: the simulated crypto derives digests and signature
tokens from Python's ``hash``, which is per-interpreter randomized.
All replica processes must therefore share one hash seed.  With the
``fork`` start method (Linux) children inherit the parent's seed; with
``spawn`` this module pins ``PYTHONHASHSEED`` in the children's
environment before launching them.  The parent itself never computes a
protocol digest, so its own seed is irrelevant.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from .clock import RealTimeClock
from .tcp import TcpTransport

__all__ = [
    "build_replica",
    "default_genesis",
    "run_cluster",
    "StatsRequest",
    "StatsReply",
    "Shutdown",
]

#: Default shared cluster secret for localhost runs (override with
#: ``--secret`` for anything that leaves the loopback interface).
DEFAULT_SECRET = b"astro-localhost-cluster"

#: Clients per replica in the default genesis, matching the bench lane.
CLIENTS_PER_REPLICA = 4

#: Genesis balance per client: effectively unlimited for short runs.
GENESIS_BALANCE = 1_000_000_000


# ---------------------------------------------------------------------------
# Control-plane messages (loadgen <-> replicas)
# ---------------------------------------------------------------------------
class StatsRequest:
    __slots__ = ("tag",)

    def __init__(self, tag: int) -> None:
        self.tag = tag


class StatsReply:
    __slots__ = ("node_id", "tag", "settled", "rejected")

    def __init__(self, node_id: int, tag: int, settled: int, rejected: int) -> None:
        self.node_id = node_id
        self.tag = tag
        self.settled = settled
        self.rejected = rejected


class Shutdown:
    __slots__ = ()


# ---------------------------------------------------------------------------
# Deterministic assembly (mirrors Astro1System / Astro2System exactly)
# ---------------------------------------------------------------------------
def default_genesis(n: int) -> Dict[str, int]:
    """The cluster's client population: ``4·n`` richly funded clients."""
    return {
        f"c{i:04d}": GENESIS_BALANCE for i in range(CLIENTS_PER_REPLICA * n)
    }


def _build_directory(n: int, clients: List[str]):
    """One shard of ``n`` replicas; clients round-robin by sorted order.

    Replicates the single-shard assignment rule of
    :class:`~repro.core.system.Astro2System` (which, with one shard,
    coincides with :class:`~repro.core.system.Astro1System`'s), so every
    process — replicas and load generator alike — derives the same
    client → representative map independently.
    """
    from ..core.directory import Directory

    directory = Directory()
    members = tuple(range(n))
    directory.register_shard(0, members)
    for position, client in enumerate(sorted(clients, key=repr)):
        directory.register_client(client, members[position % n])
    return directory


def build_replica(
    system: str,
    n: int,
    transport: Any,
    genesis: Dict[str, int],
    seed: int = 0,
    loadgen_node: Optional[int] = None,
):
    """Construct one live replica over ``transport``.

    Pure function of ``(system, n, genesis, seed, node_id)`` so each OS
    process assembles a replica consistent with every other process —
    the same trick :mod:`repro.sim.shard` uses to replicate builds
    across shard workers.  ``loadgen_node`` registers every represented
    client as living at that node id, so settlement confirmations flow
    back to the load generator.
    """
    from ..core.astro1 import Astro1Replica
    from ..core.astro2 import Astro2Replica
    from ..core.config import AstroConfig
    from ..crypto.keys import Keychain, replica_owner

    config = AstroConfig(num_replicas=n)
    directory = _build_directory(n, list(genesis))
    node_id = transport.node_id
    if system == "astro1":
        replica = Astro1Replica(
            transport, config, dict(genesis), directory, list(range(n))
        )
    elif system == "astro2":
        # Every process generates all replica keys in node-id order (the
        # keychain is RNG-sequential), keeping its own — identical key
        # material everywhere, like Astro2System's construction loop.
        keychain = Keychain(seed=seed + 17)
        key = None
        for member in range(n):
            generated = keychain.generate(replica_owner(member))
            if member == node_id:
                key = generated
        replica = Astro2Replica(
            transport, config, dict(genesis), directory, keychain, key
        )
    else:
        raise ValueError(f"unknown system {system!r} (astro1|astro2)")
    if loadgen_node is not None:
        for client, rep in directory.rep_map.items():
            if rep == node_id:
                replica.client_nodes[client] = loadgen_node
    return replica


# ---------------------------------------------------------------------------
# Replica child process
# ---------------------------------------------------------------------------
def _replica_main(
    system: str, n: int, node_id: int, conn, secret: bytes, seed: int
) -> None:
    asyncio.run(_replica_async(system, n, node_id, conn, secret, seed))


async def _replica_async(
    system: str, n: int, node_id: int, conn, secret: bytes, seed: int
) -> None:
    loop = asyncio.get_running_loop()
    transport = TcpTransport(node_id, secret, clock=RealTimeClock(loop))
    await transport.start()
    replica = build_replica(
        system, n, transport, default_genesis(n), seed=seed, loadgen_node=n
    )
    stop = asyncio.Event()
    transport.on(Shutdown, lambda src, msg: stop.set())

    def _on_stats(src: int, message: StatsRequest) -> None:
        transport.send(
            src,
            StatsReply(
                node_id,
                message.tag,
                replica.settled_count,
                len(replica.rejected),
            ),
        )

    transport.on(StatsRequest, _on_stats)
    conn.send(("port", node_id, transport.port))
    peers = await loop.run_in_executor(None, conn.recv)
    transport.connect(peers)
    conn.send(("ready", node_id))
    await stop.wait()
    await transport.close()


# ---------------------------------------------------------------------------
# Load generator (parent process)
# ---------------------------------------------------------------------------
class _LoadGen:
    """Open-loop client population over one TcpTransport."""

    #: Pacing tick for the open-loop schedule.
    TICK = 0.01

    def __init__(
        self,
        transport: TcpTransport,
        system: str,
        n: int,
        genesis: Dict[str, int],
    ) -> None:
        from ..core.messages import ClientConfirm

        self.transport = transport
        self.n = n
        self.clients = sorted(genesis, key=repr)
        self.rep_map = _build_directory(n, list(genesis)).rep_map
        self._next_seq: Dict[str, int] = {}
        self._sent_at: Dict[tuple, float] = {}
        self.submitted = 0
        self.confirmed = 0
        self.latencies: List[float] = []
        self._stats_waiters: Dict[int, Tuple[asyncio.Event, Dict[int, StatsReply]]] = {}
        self._stats_tag = 0
        transport.on(ClientConfirm, self._on_confirm)
        transport.on(StatsReply, self._on_stats_reply)

    def _on_confirm(self, src: int, message) -> None:
        self.confirmed += 1
        sent = self._sent_at.pop(message.payment.identifier, None)
        if sent is not None:
            self.latencies.append(self.transport.clock.now - sent)

    def _on_stats_reply(self, src: int, message: StatsReply) -> None:
        waiter = self._stats_waiters.get(message.tag)
        if waiter is None:
            return
        event, replies = waiter
        replies[message.node_id] = message
        if len(replies) == self.n:
            event.set()

    async def collect_stats(self, timeout: float = 5.0) -> Dict[int, StatsReply]:
        """Snapshot every replica's settled counter (waits for all N)."""
        from ..core.messages import ClientSubmit  # noqa: F401  (keep import local)

        self._stats_tag += 1
        tag = self._stats_tag
        event = asyncio.Event()
        replies: Dict[int, StatsReply] = {}
        self._stats_waiters[tag] = (event, replies)
        for node_id in range(self.n):
            self.transport.send(node_id, StatsRequest(tag))
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        self._stats_waiters.pop(tag, None)
        return replies

    async def run(self, rate: float, duration: float) -> None:
        """Submit ``rate`` payments/s for ``duration`` seconds."""
        from ..core.messages import ClientSubmit
        from ..core.payment import Payment

        clients = self.clients
        num = len(clients)
        rep_map = self.rep_map
        clock = self.transport.clock
        deadline = clock.now + duration
        carry = 0.0
        index = 0
        while clock.now < deadline:
            carry += rate * self.TICK
            burst = int(carry)
            carry -= burst
            for _ in range(burst):
                spender = clients[index % num]
                beneficiary = clients[(index + 1) % num]
                index += 1
                seq = self._next_seq.get(spender, 0) + 1
                self._next_seq[spender] = seq
                payment = Payment(spender, seq, beneficiary, 1)
                self._sent_at[payment.identifier] = clock.now
                self.transport.send(
                    rep_map[spender], ClientSubmit(payment)
                )
                self.submitted += 1
            await asyncio.sleep(self.TICK)


def _percentile(values: List[float], fraction: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------
async def _orchestrate(
    args, procs: List, conns: List, secret: bytes
) -> Dict[str, Any]:
    loop = asyncio.get_running_loop()
    transport = TcpTransport(args.n, secret, clock=RealTimeClock(loop))
    await transport.start()
    genesis = default_genesis(args.n)
    loadgen = _LoadGen(transport, args.system, args.n, genesis)

    ports: Dict[int, int] = {}
    for conn in conns:
        kind, node_id, port = await loop.run_in_executor(None, conn.recv)
        assert kind == "port"
        ports[node_id] = port
    peer_map = {
        node_id: ("127.0.0.1", port) for node_id, port in ports.items()
    }
    peer_map[args.n] = ("127.0.0.1", transport.port)
    for conn in conns:
        conn.send(peer_map)
    for conn in conns:
        kind, _node_id = await loop.run_in_executor(None, conn.recv)
        assert kind == "ready"
    transport.connect(peer_map)

    print(
        f"[cluster] {args.system} n={args.n}: replicas on ports "
        f"{[ports[i] for i in sorted(ports)]}, loadgen on {transport.port}"
    )

    wall_start = time.monotonic()
    # Warmup: bring connections up and fill the batching pipeline.
    await loadgen.run(args.rate, args.warmup)
    before = await loadgen.collect_stats()
    measure_start = transport.clock.now
    await loadgen.run(args.rate, args.duration)
    measure_elapsed = transport.clock.now - measure_start
    after = await loadgen.collect_stats()
    # Grace: let in-flight batches/credits settle before the final count.
    await asyncio.sleep(args.grace)
    final = await loadgen.collect_stats()

    for node_id in range(args.n):
        transport.send(node_id, Shutdown())
    await asyncio.sleep(0.2)
    await transport.close()
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)

    deltas = {
        node_id: after[node_id].settled - before[node_id].settled
        for node_id in after
        if node_id in before
    }
    # A payment counts as live throughput once settled at *every*
    # replica (the conservative reading; per-replica deltas are reported
    # alongside).
    measured_pps = (
        min(deltas.values()) / measure_elapsed if deltas else 0.0
    )
    return {
        "system": args.system,
        "n": args.n,
        "transport": "tcp-localhost",
        "offered_pps": args.rate,
        "warmup_s": args.warmup,
        "duration_s": args.duration,
        "measured_pps": round(measured_pps, 1),
        "measure_elapsed_s": round(measure_elapsed, 3),
        "submitted": loadgen.submitted,
        "confirmed": loadgen.confirmed,
        "settled_delta_by_replica": {
            str(k): v for k, v in sorted(deltas.items())
        },
        "settled_final_by_replica": {
            str(k): final[k].settled for k in sorted(final)
        },
        "rejected_final": {
            str(k): final[k].rejected for k in sorted(final)
        },
        "confirm_latency_ms": {
            "p50": _ms(_percentile(loadgen.latencies, 0.50)),
            "p95": _ms(_percentile(loadgen.latencies, 0.95)),
        },
        "loadgen_frames_sent": transport.stats.frames_sent,
        "loadgen_frames_received": transport.stats.frames_received,
        "wall_elapsed_s": round(time.monotonic() - wall_start, 3),
    }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 2)


def run_cluster(args) -> Dict[str, Any]:
    """Spawn the replica processes, drive load, return the report."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-fork platforms
        # Children must share a hash seed (module docstring); the parent
        # re-execs them, so pin the seed through the environment.
        os.environ.setdefault("PYTHONHASHSEED", "0")
        ctx = multiprocessing.get_context("spawn")
    secret = args.secret.encode() if isinstance(args.secret, str) else args.secret
    procs = []
    conns = []
    for node_id in range(args.n):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_replica_main,
            args=(args.system, args.n, node_id, child_conn, secret, args.seed),
            daemon=True,
        )
        proc.start()
        procs.append(proc)
        conns.append(parent_conn)
    try:
        return asyncio.run(_orchestrate(args, procs, conns, secret))
    finally:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.cluster",
        description="Run an Astro replica cluster on localhost TCP.",
    )
    parser.add_argument("--n", type=int, default=4, help="replica count")
    parser.add_argument(
        "--system", choices=("astro1", "astro2"), default="astro2"
    )
    parser.add_argument(
        "--rate", type=float, default=1000.0, help="offered payments/s"
    )
    parser.add_argument(
        "--warmup", type=float, default=2.0, help="warmup seconds"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="measurement seconds"
    )
    parser.add_argument(
        "--grace", type=float, default=1.5,
        help="post-load drain before the final settled count",
    )
    parser.add_argument("--seed", type=int, default=0, help="keychain seed")
    parser.add_argument(
        "--secret", default=DEFAULT_SECRET.decode(),
        help="shared cluster secret for the transport handshake",
    )
    parser.add_argument(
        "--out", default="BENCH_live.json", help="report output path"
    )
    args = parser.parse_args(argv)
    report = run_cluster(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[cluster] wrote {args.out}")
    print(json.dumps(report, indent=2))
    return 0 if report["measured_pps"] > 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI live-smoke
    raise SystemExit(main())
