"""Localhost live cluster: one OS process per replica, real TCP sockets.

``python -m repro.transport.cluster --n 4 --system astro2`` boots an
N-replica deployment in which every replica is the *same protocol
object* the simulator runs (:class:`~repro.core.astro2.Astro2Replica` /
:class:`~repro.core.astro1.Astro1Replica`), bound to a
:class:`~repro.transport.tcp.TcpTransport` instead of a simulator
:class:`~repro.sim.node.Node`.  The parent process runs an open-loop
load generator (a paced client population, like
:class:`repro.workloads.drivers.OpenLoopDriver` but against wall time),
measures settled wall-clock throughput over a steady-state window, and
writes the result to ``BENCH_live.json``.

With ``--wal-dir`` every replica binds a
:class:`~repro.core.persistence.ReplicaStore` (append-only WAL +
periodic snapshots) before its transport starts, and ``--chaos`` drives
a fault timeline (:mod:`repro.transport.chaos`) against the running
cluster: SIGKILL/restart of replica processes, partitions, frame
delay/drop.  A restarted replica rebinds its old port, replays its log
to the pre-crash state fingerprint, pulls missed batches from a peer
(bounded catch-up), and rejoins; meanwhile the parent samples every
replica's state over a control channel and feeds the
:class:`~repro.adversary.monitor.InvariantMonitor` — the same five
safety invariants checked under simulated attacks, now on the real
cluster.  The chaos verdict, per-replica recovery latency, and final
cross-replica fingerprints land in ``BENCH_chaos.json``.

Determinism note: the simulated crypto derives digests and signature
tokens from Python's ``hash``, which is per-interpreter randomized.
All replica processes must therefore share one hash seed.  With the
``fork`` start method (Linux) children inherit the parent's seed — a
*restarted* child forks from the same parent, so recovery replays
against identical digests; with ``spawn`` this module pins
``PYTHONHASHSEED`` in the children's environment before launching them.
The parent itself never computes a protocol digest, so its own seed is
irrelevant.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import tempfile
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .clock import RealTimeClock
from .tcp import TcpTransport

__all__ = [
    "build_replica",
    "default_genesis",
    "payment_stream",
    "run_cluster",
    "ReplicaProcessError",
    "StatsRequest",
    "StatsReply",
    "Shutdown",
]

#: Default shared cluster secret for localhost runs (override with
#: ``--secret`` for anything that leaves the loopback interface).
DEFAULT_SECRET = b"astro-localhost-cluster"

#: Clients per replica in the default genesis, matching the bench lane.
CLIENTS_PER_REPLICA = 4

#: Genesis balance per client: effectively unlimited for short runs.
GENESIS_BALANCE = 1_000_000_000

#: Bind retries for a restarted replica reclaiming its old port.
_BIND_RETRIES = 50
_BIND_RETRY_DELAY = 0.1


class ReplicaProcessError(RuntimeError):
    """A replica process died although no fault was scheduled for it."""


# ---------------------------------------------------------------------------
# Control-plane messages (loadgen <-> replicas)
# ---------------------------------------------------------------------------
class StatsRequest:
    __slots__ = ("tag",)

    def __init__(self, tag: int) -> None:
        self.tag = tag


class StatsReply:
    __slots__ = ("node_id", "tag", "settled", "rejected")

    def __init__(self, node_id: int, tag: int, settled: int, rejected: int) -> None:
        self.node_id = node_id
        self.tag = tag
        self.settled = settled
        self.rejected = rejected


class Shutdown:
    __slots__ = ()


# ---------------------------------------------------------------------------
# Deterministic assembly (mirrors Astro1System / Astro2System exactly)
# ---------------------------------------------------------------------------
def default_genesis(n: int, workload: Optional[str] = None) -> Dict[str, int]:
    """The cluster's client population: ``4·n`` funded clients.

    Balances follow the resolved ``REPRO_WORKLOAD`` regime: richly
    funded everywhere except under ``merchant``, where the merchant
    slice of the (repr-sorted) population starts tight so live payouts
    exercise credit-funded settlement.  Every process — parent and
    replica children alike — resolves the same environment knob, so all
    derive an identical genesis independently.
    """
    from ..workloads.base import resolve_workload_name

    clients = [f"c{i:04d}" for i in range(CLIENTS_PER_REPLICA * n)]
    genesis = {client: GENESIS_BALANCE for client in clients}
    if resolve_workload_name(workload) == "merchant":
        from ..workloads.merchant import MERCHANT_BALANCE, merchant_split

        _, merchants = merchant_split(sorted(clients, key=repr))
        for client in merchants:
            genesis[client] = MERCHANT_BALANCE
    return genesis


def payment_stream(
    clients: Sequence[str], workload: Optional[Any] = None
) -> Iterator[Any]:
    """The deterministic payment sequence the load generator emits.

    Without a workload: round-robin spender, next client as beneficiary,
    amount 1, per-client sequence numbers dense from 1.  Exposed so the
    sim-parity tests can feed the *same* workload to a simulated system
    and compare settled sets after an identical fault timeline.

    With a :class:`~repro.workloads.base.Workload`, triples come from
    ``workload.next()`` (read-only ``None`` operations are skipped) and
    this generator only adds the dense per-spender sequence numbers.
    """
    from ..core.payment import Payment

    next_seq: Dict[str, int] = {}
    if workload is not None:
        while True:
            operation = workload.next()
            if operation is None:
                continue
            spender, beneficiary, amount = operation
            seq = next_seq.get(spender, 0) + 1
            next_seq[spender] = seq
            yield Payment(spender, seq, beneficiary, amount)
    num = len(clients)
    index = 0
    while True:
        spender = clients[index % num]
        beneficiary = clients[(index + 1) % num]
        index += 1
        seq = next_seq.get(spender, 0) + 1
        next_seq[spender] = seq
        yield Payment(spender, seq, beneficiary, 1)


def _build_directory(n: int, clients: List[str]):
    """One shard of ``n`` replicas; clients round-robin by sorted order.

    Replicates the single-shard assignment rule of
    :class:`~repro.core.system.Astro2System` (which, with one shard,
    coincides with :class:`~repro.core.system.Astro1System`'s), so every
    process — replicas and load generator alike — derives the same
    client → representative map independently.
    """
    from ..core.directory import Directory

    directory = Directory()
    members = tuple(range(n))
    directory.register_shard(0, members)
    for position, client in enumerate(sorted(clients, key=repr)):
        directory.register_client(client, members[position % n])
    return directory


def build_replica(
    system: str,
    n: int,
    transport: Any,
    genesis: Dict[str, int],
    seed: int = 0,
    loadgen_node: Optional[int] = None,
    resend_acks: bool = False,
):
    """Construct one live replica over ``transport``.

    Pure function of ``(system, n, genesis, seed, node_id)`` so each OS
    process assembles a replica consistent with every other process —
    the same trick :mod:`repro.sim.shard` uses to replicate builds
    across shard workers.  ``loadgen_node`` registers every represented
    client as living at that node id, so settlement confirmations flow
    back to the load generator.  ``resend_acks`` turns on the signed
    BRB's duplicate-PREPARE re-ACK path (needed for crash recovery, off
    for byte-identity with the simulator).
    """
    from ..core.astro1 import Astro1Replica
    from ..core.astro2 import Astro2Replica
    from ..core.config import AstroConfig
    from ..crypto.keys import Keychain, replica_owner

    config = AstroConfig(num_replicas=n, brb_resend_acks=resend_acks)
    directory = _build_directory(n, list(genesis))
    node_id = transport.node_id
    if system == "astro1":
        replica = Astro1Replica(
            transport, config, dict(genesis), directory, list(range(n))
        )
    elif system == "astro2":
        # Every process generates all replica keys in node-id order (the
        # keychain is RNG-sequential), keeping its own — identical key
        # material everywhere, like Astro2System's construction loop.
        keychain = Keychain(seed=seed + 17)
        key = None
        for member in range(n):
            generated = keychain.generate(replica_owner(member))
            if member == node_id:
                key = generated
        replica = Astro2Replica(
            transport, config, dict(genesis), directory, keychain, key
        )
    else:
        raise ValueError(f"unknown system {system!r} (astro1|astro2)")
    if loadgen_node is not None:
        for client, rep in directory.rep_map.items():
            if rep == node_id:
                replica.client_nodes[client] = loadgen_node
    return replica


# ---------------------------------------------------------------------------
# Replica child process
# ---------------------------------------------------------------------------
def _replica_main(
    system: str,
    n: int,
    node_id: int,
    conn,
    secret: bytes,
    seed: int,
    port: int = 0,
    wal_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    fingerprint_every: Optional[int] = None,
) -> None:
    asyncio.run(
        _replica_async(
            system, n, node_id, conn, secret, seed,
            port, wal_dir, snapshot_every, fingerprint_every,
        )
    )


async def _run_catch_up(
    replica: Any,
    transport: TcpTransport,
    replies: "asyncio.Queue",
    peer_ids: Sequence[int],
    timeout: float = 2.0,
    max_rounds: int = 1000,
) -> int:
    """Pull missed batches from peers until one reports nothing further.

    Round-robins the peers; a timed-out round (peer down or slow) backs
    off and moves to the next peer.  Live traffic keeps arriving during
    catch-up through the normal delivery path — the frontier advances
    from both directions and the loop converges when a full round
    imports nothing new and the serving peer saw nothing missing.
    """
    from ..core.persistence import CatchUpRequest

    loop = asyncio.get_running_loop()
    imported = 0
    tag = 0
    backoff = 0.1
    for round_no in range(max_rounds):
        peer = peer_ids[round_no % len(peer_ids)]
        tag += 1
        transport.send(
            peer,
            CatchUpRequest(
                tag, replica.delivered_frontier, replica.delivered_extra
            ),
        )
        deadline = loop.time() + timeout
        reply = None
        try:
            while True:
                remaining = deadline - loop.time()
                candidate = await asyncio.wait_for(
                    replies.get(), max(0.01, remaining)
                )
                if candidate.tag == tag:
                    reply = candidate
                    break
        except asyncio.TimeoutError:
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
            continue
        backoff = 0.1
        new = 0
        for origin, seq, batch in reply.batches:
            if replica.import_batch(origin, seq, batch):
                new += 1
        imported += new
        if reply.complete and new == 0:
            break
    return imported


async def _replica_async(
    system: str,
    n: int,
    node_id: int,
    conn,
    secret: bytes,
    seed: int,
    port: int = 0,
    wal_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    fingerprint_every: Optional[int] = None,
) -> None:
    from ..core.persistence import (
        FINGERPRINT_INTERVAL,
        SNAPSHOT_INTERVAL,
        CatchUpReply,
        CatchUpRequest,
        ReplicaStore,
        WalCorruption,
        serve_catch_up,
    )
    from .chaos import (
        LinkFault,
        StateSnapshotReply,
        StateSnapshotRequest,
        apply_link_fault,
        replica_state_view,
    )

    loop = asyncio.get_running_loop()
    transport = TcpTransport(node_id, secret, clock=RealTimeClock(loop))
    replica = build_replica(
        system, n, transport, default_genesis(n), seed=seed, loadgen_node=n,
        resend_acks=wal_dir is not None,
    )
    store = None
    report = None
    if wal_dir is not None:
        store = ReplicaStore(
            wal_dir,
            node_id,
            snapshot_interval=snapshot_every or SNAPSHOT_INTERVAL,
            fingerprint_interval=fingerprint_every or FINGERPRINT_INTERVAL,
        )
        try:
            # Replay must precede transport start: replayed sends
            # (confirms, CREDITs) fall on the floor instead of reaching
            # the network.
            report = replica.bind_persistence(store)
        except WalCorruption as exc:
            conn.send(("failed", node_id, str(exc)))
            return
    # A restarted replica reclaims its previous port so peers (which
    # never learn of the restart) reconnect to the same address.  The
    # predecessor was SIGKILLed, so the kernel may hold the socket for
    # a moment.
    for attempt in range(_BIND_RETRIES):
        try:
            await transport.start(port)
            break
        except OSError:
            if attempt == _BIND_RETRIES - 1:
                conn.send(("failed", node_id, f"cannot bind port {port}"))
                return
            await asyncio.sleep(_BIND_RETRY_DELAY)

    stop = asyncio.Event()
    transport.on(Shutdown, lambda src, msg: stop.set())

    def _on_stats(src: int, message: StatsRequest) -> None:
        transport.send(
            src,
            StatsReply(
                node_id,
                message.tag,
                replica.settled_count,
                len(replica.rejected),
            ),
        )

    transport.on(StatsRequest, _on_stats)
    transport.on(LinkFault, lambda src, msg: apply_link_fault(transport, msg))
    transport.on(
        StateSnapshotRequest,
        lambda src, msg: transport.send(
            src, StateSnapshotReply(msg.tag, node_id, replica_state_view(replica))
        ),
    )
    catch_up_replies: asyncio.Queue = asyncio.Queue()
    if store is not None:
        transport.on(
            CatchUpRequest,
            lambda src, msg: transport.send(src, serve_catch_up(store, msg)),
        )
        transport.on(
            CatchUpReply, lambda src, msg: catch_up_replies.put_nowait(msg)
        )

    conn.send(
        ("port", node_id, transport.port, report.as_dict() if report else None)
    )
    peers = await loop.run_in_executor(None, conn.recv)
    transport.connect(peers)
    conn.send(("ready", node_id))

    if store is not None:
        recovered = report is not None and (
            report.had_snapshot or report.replayed > 0
        )
        imported = 0
        if recovered and n > 1:
            imported = await _run_catch_up(
                replica,
                transport,
                catch_up_replies,
                [peer for peer in range(n) if peer != node_id],
            )
        # Relaunch *after* catch-up: batches that did complete at the
        # peers arrived via import (popping them from the pending set),
        # so only genuinely undelivered batches are rebroadcast.
        relaunched = replica.relaunch_pending()
        conn.send(
            (
                "caught_up",
                node_id,
                {
                    "recovery": report.as_dict(),
                    "imported": imported,
                    "relaunched": len(relaunched),
                },
            )
        )

    await stop.wait()
    await transport.close()
    if store is not None:
        store.close()


# ---------------------------------------------------------------------------
# Replica process management (parent)
# ---------------------------------------------------------------------------
class _ClusterProcs:
    """Spawns, SIGKILLs, and restarts the replica processes."""

    def __init__(self, ctx, args, secret: bytes, wal_dir: Optional[str]) -> None:
        self.ctx = ctx
        self.args = args
        self.secret = secret
        self.wal_dir = wal_dir
        self.procs: Dict[int, Any] = {}
        self.conns: Dict[int, Any] = {}
        self.ports: Dict[int, int] = {}
        self.peer_map: Dict[int, Tuple[str, int]] = {}
        #: Replicas deliberately killed by the fault schedule: exempt
        #: from the watchdog until restarted.
        self.down: set = set()

    def spawn(self, node_id: int, port: int = 0):
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_replica_main,
            args=(
                self.args.system,
                self.args.n,
                node_id,
                child_conn,
                self.secret,
                self.args.seed,
                port,
                self.wal_dir,
                getattr(self.args, "snapshot_every", None),
                getattr(self.args, "fingerprint_every", None),
            ),
            daemon=True,
        )
        proc.start()
        self.procs[node_id] = proc
        self.conns[node_id] = parent_conn
        return parent_conn

    def spawn_all(self) -> None:
        for node_id in range(self.args.n):
            self.spawn(node_id)

    async def handshake(self, node_id: int, loop) -> Optional[Dict[str, Any]]:
        """Read the child's port announcement; returns its recovery report."""
        conn = self.conns[node_id]
        message = await loop.run_in_executor(None, conn.recv)
        if message[0] == "failed":
            raise ReplicaProcessError(
                f"replica {node_id} failed to start: {message[2]}"
            )
        assert message[0] == "port"
        self.ports[node_id] = message[2]
        return message[3]

    async def finish_boot(self, node_id: int, loop) -> None:
        conn = self.conns[node_id]
        conn.send(self.peer_map)
        message = await loop.run_in_executor(None, conn.recv)
        assert message[0] == "ready"

    async def wait_caught_up(self, node_id: int, loop) -> Dict[str, Any]:
        conn = self.conns[node_id]
        message = await loop.run_in_executor(None, conn.recv)
        assert message[0] == "caught_up"
        return message[2]

    def kill(self, node_id: int) -> None:
        """SIGKILL — no flush, no goodbye; recovery must come from the WAL."""
        self.down.add(node_id)
        self.procs[node_id].kill()

    async def restart(self, node_id: int, loop) -> Optional[Dict[str, Any]]:
        """Respawn on the same port; returns the child's recovery report."""
        self.spawn(node_id, port=self.ports[node_id])
        self.down.discard(node_id)
        recovery = await self.handshake(node_id, loop)
        await self.finish_boot(node_id, loop)
        return recovery

    def poll_unexpected(self) -> None:
        """Fail fast when a replica process dies outside the fault plan."""
        for node_id, proc in self.procs.items():
            if node_id in self.down:
                continue
            if proc.exitcode is not None:
                raise ReplicaProcessError(
                    f"replica {node_id} exited unexpectedly "
                    f"(exitcode {proc.exitcode})"
                )

    def shutdown(self) -> None:
        for proc in self.procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)

    def terminate(self) -> None:
        for proc in self.procs.values():
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()


# ---------------------------------------------------------------------------
# Load generator (parent process)
# ---------------------------------------------------------------------------
class _LoadGen:
    """Open-loop client population over one TcpTransport."""

    #: Pacing tick for the open-loop schedule.
    TICK = 0.01

    def __init__(
        self,
        transport: TcpTransport,
        system: str,
        n: int,
        genesis: Dict[str, int],
        workload: Optional[Any] = None,
    ) -> None:
        from ..core.messages import ClientConfirm
        from .chaos import StateSnapshotReply

        self.transport = transport
        self.n = n
        self.clients = sorted(genesis, key=repr)
        self.rep_map = _build_directory(n, list(genesis)).rep_map
        self._stream = payment_stream(self.clients, workload)
        self._sent_at: Dict[tuple, float] = {}
        #: identifier -> Payment, for every submitted-but-unconfirmed
        #: payment (retried during chaos drains).
        self._pending: Dict[tuple, Any] = {}
        self.submitted = 0
        self.confirmed = 0
        self.retries = 0
        #: Confirms for already-confirmed identifiers (a recovered
        #: replica re-settling relaunched batches produces these).
        self.duplicate_confirms = 0
        self.latencies: List[float] = []
        self._stats_waiters: Dict[int, Tuple[asyncio.Event, Dict[int, StatsReply]]] = {}
        self._stats_tag = 0
        self._snap_waiters: Dict[int, Tuple[asyncio.Event, Dict[int, Any]]] = {}
        self._snap_tag = 0
        transport.on(ClientConfirm, self._on_confirm)
        transport.on(StatsReply, self._on_stats_reply)
        transport.on(StateSnapshotReply, self._on_snapshot_reply)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _on_confirm(self, src: int, message) -> None:
        identifier = message.payment.identifier
        if self._pending.pop(identifier, None) is None:
            self.duplicate_confirms += 1
            return
        self.confirmed += 1
        sent = self._sent_at.pop(identifier, None)
        if sent is not None:
            self.latencies.append(self.transport.clock.now - sent)

    def _on_stats_reply(self, src: int, message: StatsReply) -> None:
        waiter = self._stats_waiters.get(message.tag)
        if waiter is None:
            return
        event, replies = waiter
        replies[message.node_id] = message
        if len(replies) == self.n:
            event.set()

    def _on_snapshot_reply(self, src: int, message) -> None:
        waiter = self._snap_waiters.get(message.tag)
        if waiter is None:
            return
        event, replies = waiter
        replies[message.node_id] = message
        if len(replies) == self.n:
            event.set()

    async def collect_stats(self, timeout: float = 5.0) -> Dict[int, StatsReply]:
        """Snapshot every replica's settled counter (waits for all N)."""
        self._stats_tag += 1
        tag = self._stats_tag
        event = asyncio.Event()
        replies: Dict[int, StatsReply] = {}
        self._stats_waiters[tag] = (event, replies)
        for node_id in range(self.n):
            self.transport.send(node_id, StatsRequest(tag))
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        self._stats_waiters.pop(tag, None)
        return replies

    async def collect_snapshots(self, timeout: float = 2.0) -> Dict[int, Any]:
        """Ask every replica for a state view; returns whoever answered.

        A crashed replica simply does not answer — its monitor view
        stays frozen, which is exactly the invariant contract for
        crashed-but-correct replicas.
        """
        from .chaos import StateSnapshotRequest

        self._snap_tag += 1
        tag = self._snap_tag
        event = asyncio.Event()
        replies: Dict[int, Any] = {}
        self._snap_waiters[tag] = (event, replies)
        for node_id in range(self.n):
            self.transport.send(node_id, StateSnapshotRequest(tag))
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        self._snap_waiters.pop(tag, None)
        return replies

    def retry_pending(self) -> int:
        """Resubmit every unconfirmed payment to its representative.

        Safe against duplicates: a representative that already accepted
        (or already settled) the same ``(spender, seq)`` drops the
        resubmission via its accepted-sequence guard, which crash
        recovery rebuilds conservatively.
        """
        from ..core.messages import ClientSubmit

        for payment in list(self._pending.values()):
            self.transport.send(
                self.rep_map[payment.spender], ClientSubmit(payment)
            )
            self.retries += 1
        return len(self._pending)

    async def drain(self, timeout: float, retry_interval: float) -> bool:
        """Wait (with periodic retries) until every payment confirmed."""
        clock = self.transport.clock
        deadline = clock.now + timeout
        next_retry = clock.now + retry_interval
        while self._pending and clock.now < deadline:
            await asyncio.sleep(0.05)
            if self._pending and clock.now >= next_retry:
                self.retry_pending()
                next_retry = clock.now + retry_interval
        return not self._pending

    async def run(self, rate: float, duration: float) -> None:
        """Submit ``rate`` payments/s for ``duration`` seconds."""
        from ..core.messages import ClientSubmit

        rep_map = self.rep_map
        clock = self.transport.clock
        deadline = clock.now + duration
        carry = 0.0
        while clock.now < deadline:
            carry += rate * self.TICK
            burst = int(carry)
            carry -= burst
            for _ in range(burst):
                payment = next(self._stream)
                self._sent_at[payment.identifier] = clock.now
                self._pending[payment.identifier] = payment
                self.transport.send(
                    rep_map[payment.spender], ClientSubmit(payment)
                )
                self.submitted += 1
            await asyncio.sleep(self.TICK)


def _percentile(values: List[float], fraction: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 2)


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------
async def _run_bench(args, cluster, transport, loadgen, loop) -> Dict[str, Any]:
    """The steady-state throughput measurement (``BENCH_live.json``)."""
    wall_start = time.monotonic()
    # Warmup: bring connections up and fill the batching pipeline.
    await loadgen.run(args.rate, args.warmup)
    before = await loadgen.collect_stats()
    measure_start = transport.clock.now
    await loadgen.run(args.rate, args.duration)
    measure_elapsed = transport.clock.now - measure_start
    after = await loadgen.collect_stats()
    # Grace: let in-flight batches/credits settle before the final count.
    await asyncio.sleep(args.grace)
    final = await loadgen.collect_stats()

    deltas = {
        node_id: after[node_id].settled - before[node_id].settled
        for node_id in after
        if node_id in before
    }
    # A payment counts as live throughput once settled at *every*
    # replica (the conservative reading; per-replica deltas are reported
    # alongside).
    measured_pps = (
        min(deltas.values()) / measure_elapsed if deltas else 0.0
    )
    return {
        "system": args.system,
        "n": args.n,
        "transport": "tcp-localhost",
        "offered_pps": args.rate,
        "warmup_s": args.warmup,
        "duration_s": args.duration,
        "measured_pps": round(measured_pps, 1),
        "measure_elapsed_s": round(measure_elapsed, 3),
        "submitted": loadgen.submitted,
        "confirmed": loadgen.confirmed,
        "settled_delta_by_replica": {
            str(k): v for k, v in sorted(deltas.items())
        },
        "settled_final_by_replica": {
            str(k): final[k].settled for k in sorted(final)
        },
        "rejected_final": {
            str(k): final[k].rejected for k in sorted(final)
        },
        "confirm_latency_ms": {
            "p50": _ms(_percentile(loadgen.latencies, 0.50)),
            "p95": _ms(_percentile(loadgen.latencies, 0.95)),
        },
        "loadgen_frames_sent": transport.stats.frames_sent,
        "loadgen_frames_received": transport.stats.frames_received,
        "wall_elapsed_s": round(time.monotonic() - wall_start, 3),
    }


async def _run_chaos(args, cluster, transport, loadgen, loop) -> Dict[str, Any]:
    """Drive the fault timeline against the live cluster
    (``BENCH_chaos.json``)."""
    from ..adversary.monitor import InvariantMonitor
    from .chaos import (
        LiveFaultInjector,
        LiveMonitorFeed,
        apply_timeline,
        parse_timeline,
    )

    events = parse_timeline(args.chaos)
    genesis = default_genesis(args.n, getattr(args, "workload", None))
    directory = _build_directory(args.n, list(genesis))
    feed = LiveMonitorFeed(
        range(args.n), genesis, directory, deps=args.system == "astro2"
    )
    # dep_grace=1: live views are captured milliseconds apart, so a
    # freshly materialized dependency may precede its crediting payment
    # in a settler's view by one sample.
    monitor = InvariantMonitor(
        feed, interval=args.monitor_interval, autostart=False, dep_grace=1
    )

    recoveries: Dict[int, Dict[str, Any]] = {}
    recovery_tasks: List[asyncio.Task] = []
    t0 = loop.time()  # rebound after warmup, before the injector runs

    def crash_fn(node_id: int) -> None:
        print(f"[chaos] t={loop.time() - t0:.2f}s SIGKILL replica {node_id}")
        cluster.kill(node_id)

    async def recover_fn(node_id: int) -> None:
        started = loop.time()
        print(f"[chaos] t={started - t0:.2f}s restarting replica {node_id}")
        recovery = await cluster.restart(node_id, loop)
        entry = recoveries.setdefault(node_id, {})
        entry["recovery"] = recovery
        entry["restart_s"] = round(loop.time() - started, 3)

        async def _await_catch_up() -> None:
            info = await cluster.wait_caught_up(node_id, loop)
            entry.update(info)
            entry["recovery_latency_s"] = round(loop.time() - started, 3)
            print(
                f"[chaos] replica {node_id} caught up in "
                f"{entry['recovery_latency_s']}s "
                f"(replayed {info['recovery']['replayed']}, "
                f"imported {info['imported']}, "
                f"relaunched {info['relaunched']})"
            )

        recovery_tasks.append(asyncio.ensure_future(_await_catch_up()))

    def link_fn(node_id: int, fault) -> None:
        transport.send(node_id, fault)

    injector = LiveFaultInjector(crash_fn, recover_fn, link_fn, range(args.n))
    apply_timeline(injector, events)

    wall_start = time.monotonic()
    await loadgen.run(args.rate, args.warmup)
    t0 = loop.time()
    chaos_task = asyncio.ensure_future(injector.run(t0))

    monitor_stop = asyncio.Event()

    async def monitor_loop() -> None:
        while not monitor_stop.is_set():
            replies = await loadgen.collect_snapshots(
                timeout=args.monitor_interval * 0.5
            )
            now = loop.time() - t0
            for reply in replies.values():
                feed.update(reply, now)
            monitor.sample(now=now)
            await asyncio.sleep(args.monitor_interval)

    monitor_task = asyncio.ensure_future(monitor_loop())

    await loadgen.run(args.rate, args.duration)
    await chaos_task  # the full fault schedule has executed
    if recovery_tasks:
        await asyncio.wait(recovery_tasks, timeout=args.drain_timeout)
    drained = await loadgen.drain(args.drain_timeout, args.retry_interval)

    monitor_stop.set()
    await monitor_task

    # Final verdict round: settled counters, state fingerprints on every
    # replica (the recovered one must match the never-crashed controls),
    # one last invariant sample over the final views.
    final_stats = await loadgen.collect_stats()
    final_snaps = await loadgen.collect_snapshots(timeout=5.0)
    now = loop.time() - t0
    for reply in final_snaps.values():
        feed.update(reply, now)
    monitor.sample(now=now)
    fingerprints = {
        node_id: reply.view["fingerprint"]
        for node_id, reply in sorted(final_snaps.items())
    }
    fingerprints_equal = (
        len(fingerprints) == args.n and len(set(fingerprints.values())) == 1
    )
    verdict = monitor.verdict()
    ok = drained and verdict["ok"] and fingerprints_equal
    return {
        "system": args.system,
        "n": args.n,
        "transport": "tcp-localhost",
        "mode": "chaos",
        "timeline": args.chaos,
        "wal_dir": cluster.wal_dir,
        "offered_pps": args.rate,
        "warmup_s": args.warmup,
        "duration_s": args.duration,
        "submitted": loadgen.submitted,
        "confirmed": loadgen.confirmed,
        "retries": loadgen.retries,
        "duplicate_confirms": loadgen.duplicate_confirms,
        "unconfirmed": loadgen.pending,
        "drained": drained,
        "settled_final_by_replica": {
            str(k): final_stats[k].settled for k in sorted(final_stats)
        },
        "rejected_final": {
            str(k): final_stats[k].rejected for k in sorted(final_stats)
        },
        "fingerprints": {str(k): v for k, v in fingerprints.items()},
        "fingerprints_equal": fingerprints_equal,
        "monitor": verdict,
        "recoveries": {str(k): v for k, v in sorted(recoveries.items())},
        "injected": [
            [round(t, 3), action, payload]
            for t, action, payload in injector.log
        ],
        "confirm_latency_ms": {
            "p50": _ms(_percentile(loadgen.latencies, 0.50)),
            "p95": _ms(_percentile(loadgen.latencies, 0.95)),
        },
        "ok": ok,
        "wall_elapsed_s": round(time.monotonic() - wall_start, 3),
    }


def _resolve_loadgen_workload(args, genesis: Dict[str, int]) -> Optional[Any]:
    """Workload object for the load generator, or ``None`` for legacy.

    ``uniform`` (the unset-knob resolution) keeps the original
    round-robin/amount-1 ``payment_stream`` — the shape every live and
    chaos golden expectation was calibrated against; ``zipf`` and
    ``merchant`` switch the stream to workload-drawn triples.
    """
    from ..workloads.base import make_workload, resolve_workload_name

    name = resolve_workload_name(getattr(args, "workload", None))
    if name == "uniform":
        return None
    return make_workload(
        name, sorted(genesis, key=repr), seed=getattr(args, "seed", 0)
    )


async def _orchestrate(args, cluster: _ClusterProcs) -> Dict[str, Any]:
    loop = asyncio.get_running_loop()
    transport = TcpTransport(args.n, cluster.secret, clock=RealTimeClock(loop))
    await transport.start()
    genesis = default_genesis(args.n, getattr(args, "workload", None))
    loadgen = _LoadGen(
        transport,
        args.system,
        args.n,
        genesis,
        workload=_resolve_loadgen_workload(args, genesis),
    )

    for node_id in range(args.n):
        await cluster.handshake(node_id, loop)
    cluster.peer_map = {
        node_id: ("127.0.0.1", port) for node_id, port in cluster.ports.items()
    }
    cluster.peer_map[args.n] = ("127.0.0.1", transport.port)
    for node_id in range(args.n):
        await cluster.finish_boot(node_id, loop)
    if cluster.wal_dir is not None:
        # First boot with persistence: every child reports an (empty)
        # recovery before load starts.
        for node_id in range(args.n):
            await cluster.wait_caught_up(node_id, loop)
    transport.connect(cluster.peer_map)

    print(
        f"[cluster] {args.system} n={args.n}: replicas on ports "
        f"{[cluster.ports[i] for i in sorted(cluster.ports)]}, "
        f"loadgen on {transport.port}"
        + (f", wal in {cluster.wal_dir}" if cluster.wal_dir else "")
    )

    async def watchdog() -> None:
        while True:
            cluster.poll_unexpected()
            await asyncio.sleep(0.25)

    chaos = bool(getattr(args, "chaos", None))
    runner = _run_chaos if chaos else _run_bench
    main_task = asyncio.ensure_future(
        runner(args, cluster, transport, loadgen, loop)
    )
    watchdog_task = asyncio.ensure_future(watchdog())
    done, _pending = await asyncio.wait(
        {main_task, watchdog_task}, return_when=asyncio.FIRST_COMPLETED
    )
    if watchdog_task in done:
        # Only an unexpected replica death completes the watchdog.
        main_task.cancel()
        await asyncio.gather(main_task, return_exceptions=True)
        await transport.close()
        raise watchdog_task.exception()
    watchdog_task.cancel()
    await asyncio.gather(watchdog_task, return_exceptions=True)
    report = main_task.result()

    for node_id in range(args.n):
        if node_id not in cluster.down:
            transport.send(node_id, Shutdown())
    await asyncio.sleep(0.2)
    await transport.close()
    cluster.shutdown()
    return report


def run_cluster(args) -> Dict[str, Any]:
    """Spawn the replica processes, drive load, return the report."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-fork platforms
        # Children must share a hash seed (module docstring); the parent
        # re-execs them, so pin the seed through the environment.
        os.environ.setdefault("PYTHONHASHSEED", "0")
        ctx = multiprocessing.get_context("spawn")
    secret = args.secret.encode() if isinstance(args.secret, str) else args.secret
    # Replica children rebuild genesis themselves via default_genesis's
    # REPRO_WORKLOAD resolution, so an explicit --workload must reach
    # them through the environment (inherited under fork and spawn).
    workload = getattr(args, "workload", None)
    if workload:
        os.environ["REPRO_WORKLOAD"] = workload
    wal_dir = getattr(args, "wal_dir", None)
    if getattr(args, "chaos", None) and wal_dir is None:
        wal_dir = tempfile.mkdtemp(prefix="astro-wal-")
    if wal_dir is not None:
        os.makedirs(wal_dir, exist_ok=True)
    cluster = _ClusterProcs(ctx, args, secret, wal_dir)
    cluster.spawn_all()
    try:
        return asyncio.run(_orchestrate(args, cluster))
    finally:
        cluster.terminate()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.cluster",
        description="Run an Astro replica cluster on localhost TCP.",
    )
    parser.add_argument("--n", type=int, default=4, help="replica count")
    parser.add_argument(
        "--system", choices=("astro1", "astro2"), default="astro2"
    )
    parser.add_argument(
        "--rate", type=float, default=1000.0, help="offered payments/s"
    )
    parser.add_argument(
        "--warmup", type=float, default=2.0, help="warmup seconds"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="measurement seconds"
    )
    parser.add_argument(
        "--grace", type=float, default=1.5,
        help="post-load drain before the final settled count",
    )
    parser.add_argument("--seed", type=int, default=0, help="keychain seed")
    parser.add_argument(
        "--workload", choices=("uniform", "zipf", "merchant"), default=None,
        help="payment demand distribution (default: the REPRO_WORKLOAD "
             "environment knob, else uniform)",
    )
    parser.add_argument(
        "--secret", default=DEFAULT_SECRET.decode(),
        help="shared cluster secret for the transport handshake",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="TIMELINE",
        help="fault timeline, e.g. 'crash:1@5;recover:1@10' "
             "(see repro.transport.chaos)",
    )
    parser.add_argument(
        "--wal-dir", default=None,
        help="directory for per-replica WALs/snapshots (enables durable "
             "state; defaults to a temp dir when --chaos is given)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None,
        help="WAL records between snapshots (default: persistence module)",
    )
    parser.add_argument(
        "--fingerprint-every", type=int, default=None,
        help="WAL records between fingerprint self-checks",
    )
    parser.add_argument(
        "--monitor-interval", type=float, default=1.0,
        help="seconds between invariant-monitor samples (chaos mode)",
    )
    parser.add_argument(
        "--retry-interval", type=float, default=1.0,
        help="seconds between resubmissions of unconfirmed payments",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="max seconds to wait for full settlement after the load",
    )
    parser.add_argument(
        "--out", default=None, help="report output path "
        "(default: BENCH_chaos.json with --chaos, else BENCH_live.json)",
    )
    args = parser.parse_args(argv)
    out = args.out or ("BENCH_chaos.json" if args.chaos else "BENCH_live.json")
    report = run_cluster(args)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[cluster] wrote {out}")
    print(json.dumps(report, indent=2))
    if args.chaos:
        return 0 if report["ok"] else 1
    return 0 if report["measured_pps"] > 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI live-smoke
    raise SystemExit(main())
