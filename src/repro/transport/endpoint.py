"""Protocol endpoint: a state machine composed over a Transport.

Replicas used to *be* simulator nodes (subclasses of
:class:`repro.sim.node.Node`); they are now plain objects holding a
:class:`~repro.transport.interface.Transport`, so the same replica runs
on the simulator or on real asyncio TCP sockets.  This base class keeps
the familiar ``self.send(...)`` / ``self.set_timer(...)`` surface as
thin delegators.

Delegation rules encoded here (and relied on by ``repro.adversary``):

* ``send`` / ``send_all`` / ``broadcast`` / ``charge`` are *cached
  bound methods* of the transport — they sit on per-payment hot paths
  and a delegating def would add a Python frame to every message.  An
  egress tap shadows the transport instance's ``send``/``broadcast``,
  so :meth:`install_egress_tap` / :meth:`remove_egress_tap` re-resolve
  the cache; taps MUST be installed through the endpoint, never
  directly on the transport, or replica-originated sends bypass them.
  (``send_all`` needs no refresh: both backends implement it over the
  transport's own ``self.send``, which is what the tap shadows.)
* ``cpu`` / ``link`` / ``sim`` / ``network`` resolve through the
  transport and therefore only exist on the simulator backend; protocol
  logic must not touch them (instrumentation and tests may).
"""

from __future__ import annotations

from typing import Any, Callable, Type

from .interface import TimerHandle, Transport

__all__ = ["ProtocolEndpoint"]


class ProtocolEndpoint:
    """Base for replica/client state machines bound to a transport."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.node_id = transport.node_id
        self.clock = transport.clock
        self.charge = transport.charge
        self.send_all = transport.send_all
        self._sync_egress()

    def _sync_egress(self) -> None:
        """(Re-)cache the transport's current send/broadcast.

        Called at construction and around tap install/removal — the
        cached bound methods are the hot-path fast path; the tap
        machinery is the only thing that changes what they resolve to.
        """
        self.send = self.transport.send
        self.broadcast = self.transport.broadcast

    def on(
        self, message_type: Type[Any], handler: Callable[[int, Any], None]
    ) -> None:
        self.transport.on(message_type, handler)

    # ------------------------------------------------------------------
    # Timers / liveness / placement
    # ------------------------------------------------------------------
    def set_timer(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        return self.transport.set_timer(delay, fn, *args)

    @property
    def alive(self) -> bool:
        return self.transport.alive

    def owns(self, node_id: int) -> bool:
        return self.transport.owns(node_id)

    # ------------------------------------------------------------------
    # Egress taps (repro.adversary)
    # ------------------------------------------------------------------
    def install_egress_tap(self, tap: Any) -> None:
        self.transport.install_egress_tap(tap)
        self._sync_egress()

    def remove_egress_tap(self) -> None:
        self.transport.remove_egress_tap()
        self._sync_egress()

    # ------------------------------------------------------------------
    # Simulator-backend accessors (instrumentation/tests only)
    # ------------------------------------------------------------------
    @property
    def cpu(self):
        return self.transport.cpu

    @property
    def link(self):
        return self.transport.link

    @property
    def sim(self):
        return self.transport.sim

    @property
    def network(self):
        return self.transport.network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id}>"
